"""Unit tests for packets, flits and input buffers."""

import pytest

from repro.sim.buffer import FlitBuffer
from repro.sim.flit import Flit, FlitType, Packet


class TestPacket:
    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            Packet(source=0, destination=1, length=0, creation_cycle=0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Packet(source=1, destination=1, length=5, creation_cycle=0)

    def test_unique_ids(self):
        a = Packet(source=0, destination=1, length=5, creation_cycle=0)
        b = Packet(source=0, destination=1, length=5, creation_cycle=0)
        assert a.packet_id != b.packet_id

    def test_make_flits_multi(self):
        packet = Packet(source=0, destination=1, length=4, creation_cycle=0)
        flits = packet.make_flits()
        assert [f.flit_type for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert [f.sequence for f in flits] == [0, 1, 2, 3]
        assert all(f.packet is packet for f in flits)

    def test_make_flits_single(self):
        packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
        flits = packet.make_flits()
        assert len(flits) == 1
        assert flits[0].flit_type == FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_latency_none_until_delivered(self):
        packet = Packet(source=0, destination=1, length=3, creation_cycle=10)
        assert packet.latency is None
        packet.delivery_cycle = 42
        assert packet.latency == 32

    def test_network_latency(self):
        packet = Packet(source=0, destination=1, length=3, creation_cycle=10)
        packet.injection_cycle = 12
        packet.delivery_cycle = 30
        assert packet.network_latency == 18

    def test_source_serialization_latency_eq6(self):
        # Eq. 6: T = (t_tail - t_head - lp) / lp.
        packet = Packet(source=0, destination=1, length=10, creation_cycle=0)
        assert packet.source_serialization_latency() is None
        packet.head_exit_cycle = 5
        packet.tail_exit_cycle = 25
        assert packet.source_serialization_latency() == pytest.approx(1.0)

    def test_unblocked_packet_has_negative_metric(self):
        packet = Packet(source=0, destination=1, length=10, creation_cycle=0)
        packet.head_exit_cycle = 0
        packet.tail_exit_cycle = 9
        assert packet.source_serialization_latency() == pytest.approx(-0.1)


class TestFlitType:
    def test_head_tail_flags(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail

    def test_flit_destination_proxies_packet(self):
        packet = Packet(source=0, destination=7, length=2, creation_cycle=0)
        flit = packet.make_flits()[0]
        assert flit.destination == 7


class TestFlitBuffer:
    def _flit(self) -> Flit:
        packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
        return packet.make_flits()[0]

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_stage_not_visible_until_commit(self):
        buf = FlitBuffer(2)
        buf.stage(self._flit())
        assert buf.is_empty()
        assert buf.occupancy == 0
        assert buf.total_occupancy == 1
        buf.commit()
        assert buf.occupancy == 1
        assert not buf.is_empty()

    def test_free_slots_account_for_staged(self):
        buf = FlitBuffer(2)
        buf.stage(self._flit())
        assert buf.free_slots == 1
        buf.stage(self._flit())
        assert buf.free_slots == 0
        assert buf.is_full()

    def test_overflow_raises(self):
        buf = FlitBuffer(1)
        buf.stage(self._flit())
        with pytest.raises(OverflowError):
            buf.stage(self._flit())

    def test_fifo_order_preserved(self):
        buf = FlitBuffer(4)
        flits = [self._flit() for _ in range(3)]
        for flit in flits:
            buf.stage(flit)
        buf.commit()
        assert buf.front() is flits[0]
        assert buf.pop() is flits[0]
        assert buf.pop() is flits[1]
        assert buf.pop() is flits[2]

    def test_pop_empty_raises(self):
        buf = FlitBuffer(1)
        with pytest.raises(IndexError):
            buf.pop()

    def test_front_none_when_empty(self):
        assert FlitBuffer(1).front() is None

    def test_commit_preserves_arrival_order_across_cycles(self):
        buf = FlitBuffer(4)
        first = self._flit()
        second = self._flit()
        buf.stage(first)
        buf.commit()
        buf.stage(second)
        buf.commit()
        assert buf.flits() == [first, second]

    def test_clear(self):
        buf = FlitBuffer(2)
        buf.stage(self._flit())
        buf.commit()
        buf.stage(self._flit())
        buf.clear()
        assert buf.occupancy == 0
        assert buf.total_occupancy == 0

    def test_len_matches_occupancy(self):
        buf = FlitBuffer(3)
        buf.stage(self._flit())
        buf.commit()
        assert len(buf) == 1
