"""Regression tests for the parallel experiment engine's determinism.

The engine's contract: an identical configuration + seed produces a
*bit-identical* ``SimulationResult.summary()`` row whether the batch runs
serially (``workers=1``), fanned out over worker processes, or replayed from
a warm disk cache -- and a warm cache performs zero new simulations.
"""

from __future__ import annotations

import pytest

from repro.analysis import runner
from repro.analysis.runner import ExperimentConfig
from repro.core.amosa import AmosaConfig
from repro.exec.batch import ExperimentBatch, run_batch
from repro.exec.cache import DiskDesignCache, ResultCache, config_key, derive_seed
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D

TINY_AMOSA = AmosaConfig(
    initial_temperature=5.0,
    final_temperature=0.5,
    cooling_rate=0.6,
    iterations_per_temperature=10,
    hard_limit=6,
    soft_limit=12,
    initial_solutions=3,
    seed=2,
)


def _tiny_placement() -> ElevatorPlacement:
    return ElevatorPlacement(Mesh3D(2, 2, 2), [(0, 0), (1, 1)], name="exec-tiny")


def _base_config(**overrides) -> ExperimentConfig:
    placement = _tiny_placement()
    defaults = dict(
        placement="exec-tiny",
        placement_obj=placement,
        traffic="uniform",
        injection_rate=0.05,
        warmup_cycles=20,
        measurement_cycles=120,
        drain_cycles=150,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture
def grid():
    """A small Fig. 4-style grid: 2 policies x 2 injection rates."""
    base = _base_config()
    return [
        base.with_(policy=policy, injection_rate=rate)
        for policy in ("elevator_first", "cda")
        for rate in (0.02, 0.05)
    ]


class TestSerialParallelCacheIdentity:
    def test_serial_matches_four_workers(self, grid):
        serial = run_batch(grid, workers=1)
        parallel = run_batch(grid, workers=4)
        assert [o.config for o in serial] == [o.config for o in parallel]
        # Bit-identical rows, not approximate equality.
        assert [o.summary for o in serial] == [o.summary for o in parallel]
        assert not any(o.from_cache for o in serial + parallel)

    def test_warm_disk_cache_is_bit_identical_and_runs_nothing(self, grid, tmp_path):
        cold = ExperimentBatch(grid, workers=1, result_cache=ResultCache(str(tmp_path)))
        cold_outcomes = cold.run()
        assert cold.last_executed == len(grid)

        # A fresh cache object over the same directory: everything must come
        # off disk, with zero new simulations.
        warm = ExperimentBatch(grid, workers=1, result_cache=ResultCache(str(tmp_path)))
        warm_outcomes = warm.run()
        assert warm.last_executed == 0
        assert all(o.from_cache for o in warm_outcomes)
        assert [o.summary for o in cold_outcomes] == [o.summary for o in warm_outcomes]

    def test_parallel_run_against_warm_cache(self, grid, tmp_path):
        run_batch(grid, workers=1, result_cache=ResultCache(str(tmp_path)))
        warm = ExperimentBatch(grid, workers=4, result_cache=ResultCache(str(tmp_path)))
        outcomes = warm.run()
        assert warm.last_executed == 0
        assert all(o.from_cache for o in outcomes)

    def test_duplicate_configs_simulate_once(self, grid):
        batch = ExperimentBatch(grid + grid, workers=1)
        outcomes = batch.run()
        assert len(outcomes) == 2 * len(grid)
        assert batch.last_executed == len(grid)
        first, second = outcomes[: len(grid)], outcomes[len(grid):]
        assert [o.summary for o in first] == [o.summary for o in second]


class TestAdEleDeterminism:
    """AdEle's offline design is resolved once in the parent and shipped to
    workers as subsets, so parallel runs match serial runs bit for bit."""

    @pytest.fixture(autouse=True)
    def _tiny_offline(self, monkeypatch):
        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)

    def test_adele_serial_matches_workers_and_cache(self, tmp_path):
        base = _base_config(policy="adele", adele_max_subset_size=2)
        configs = [base.with_(injection_rate=rate) for rate in (0.02, 0.05)]
        design_cache = DiskDesignCache(str(tmp_path))

        serial = run_batch(configs, workers=1, design_cache=design_cache)
        parallel = run_batch(configs, workers=4, design_cache=design_cache)
        assert [o.summary for o in serial] == [o.summary for o in parallel]

        # Warm result cache on top: identical rows, zero new simulations.
        result_cache = ResultCache(str(tmp_path))
        cold = ExperimentBatch(
            configs, workers=1, result_cache=result_cache, design_cache=design_cache
        )
        cold_rows = [o.summary for o in cold.run()]
        warm = ExperimentBatch(
            configs,
            workers=4,
            result_cache=ResultCache(str(tmp_path)),
            design_cache=DiskDesignCache(str(tmp_path)),
        )
        warm_outcomes = warm.run()
        assert warm.last_executed == 0
        assert cold_rows == [o.summary for o in warm_outcomes]
        assert cold_rows == [o.summary for o in serial]


class TestCrossBackendDeterminism:
    """reference == optimized == warm cache, bit for bit, through the
    batch engine -- and backend spelling never splits the cache."""

    def test_backend_matrix_is_bit_identical(self, grid):
        specs = [c.to_spec() for c in grid]
        reference = run_batch([s.with_(backend="reference") for s in specs])
        optimized = run_batch([s.with_(backend="optimized") for s in specs])
        default = run_batch(specs)
        assert [o.summary for o in reference] == [o.summary for o in optimized]
        assert [o.summary for o in optimized] == [o.summary for o in default]

    def test_warm_cache_matches_both_backends(self, grid, tmp_path):
        specs = [c.to_spec() for c in grid]
        cold = run_batch(
            [s.with_(backend="reference") for s in specs],
            result_cache=ResultCache(str(tmp_path)),
        )
        warm_batch = ExperimentBatch(
            [s.with_(backend="reference") for s in specs],
            result_cache=ResultCache(str(tmp_path)),
        )
        warm = warm_batch.run()
        assert warm_batch.last_executed == 0
        assert [o.summary for o in cold] == [o.summary for o in warm]
        # The optimized runs reproduce the cached reference rows exactly.
        live = run_batch(specs)
        assert [o.summary for o in live] == [o.summary for o in warm]

    def test_default_backend_spelling_shares_cache_keys(self, grid):
        spec = grid[0].to_spec()
        assert config_key(spec) == config_key(spec.with_(backend="optimized"))
        assert config_key(spec) == config_key(spec.with_(backend="ACTIVE-SET"))
        assert config_key(spec) != config_key(spec.with_(backend="reference"))

    def test_derived_seed_ignores_backend(self, grid):
        spec = grid[0].to_spec()
        assert derive_seed(spec.with_(backend="reference"), 7) == derive_seed(
            spec.with_(backend="optimized"), 7
        )

    def test_base_seeded_batches_agree_across_backends(self, grid):
        specs = [c.to_spec() for c in grid]
        ref = run_batch([s.with_(backend="reference") for s in specs], base_seed=9)
        opt = run_batch([s.with_(backend="optimized") for s in specs], base_seed=9)
        assert [o.summary for o in ref] == [o.summary for o in opt]


class TestBaseSeedDerivation:
    def test_base_seed_replaces_config_seeds_deterministically(self, grid):
        batch_a = ExperimentBatch(grid, base_seed=7)
        batch_b = ExperimentBatch(grid, base_seed=7)
        seeds_a = [c.seed for c in batch_a.effective_configs()]
        seeds_b = [c.seed for c in batch_b.effective_configs()]
        assert seeds_a == seeds_b
        assert seeds_a == [derive_seed(c, 7) for c in grid]
        # Distinct tasks get distinct seeds on this grid.
        assert len(set(seeds_a)) == len(grid)

    def test_different_base_seeds_give_different_tasks(self, grid):
        seeds_7 = [c.seed for c in ExperimentBatch(grid, base_seed=7).effective_configs()]
        seeds_8 = [c.seed for c in ExperimentBatch(grid, base_seed=8).effective_configs()]
        assert seeds_7 != seeds_8

    def test_derived_seed_ignores_the_configs_own_seed(self, grid):
        config = grid[0]
        assert derive_seed(config, 7) == derive_seed(config.with_(seed=999), 7)

    def test_cache_keys_follow_the_derived_seed(self, grid):
        batch = ExperimentBatch(grid, base_seed=7)
        effective = batch.effective_configs()
        assert [config_key(c) for c in effective] != [config_key(c) for c in grid]
