"""Unit tests for statistics collection and the simulation driver."""

import pytest

from repro.energy.model import EnergyModel
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.sim.engine import Simulator, run_simulation
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.stats import SimulationStats
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.generator import BernoulliPacketSource, TracePacketSource
from repro.traffic.patterns import UniformTraffic
from repro.traffic.trace import TraceEvent, TrafficTrace


def make_network(shape=(2, 2, 2)):
    mesh = Mesh3D(*shape)
    placement = ElevatorPlacement(mesh, [(0, 0)])
    return Network(placement, ElevatorFirstPolicy(placement))


class TestSimulationStats:
    def _packet(self, creation=0, **kwargs):
        packet = Packet(source=0, destination=1, length=4, creation_cycle=creation)
        for key, value in kwargs.items():
            setattr(packet, key, value)
        return packet

    def test_measurement_window_filters_creation(self):
        stats = SimulationStats(measurement_start=100)
        early = self._packet(creation=50)
        late = self._packet(creation=150)
        stats.record_packet_created(early, cycle=50)
        stats.record_packet_created(late, cycle=150)
        assert stats.packets_created == 1

    def test_latency_accounting(self):
        stats = SimulationStats()
        packet = self._packet(creation=10, injection_cycle=12, delivery_cycle=40, hops=5)
        stats.record_packet_delivered(packet, cycle=40)
        assert stats.packets_delivered == 1
        assert stats.average_latency == 30
        assert stats.average_network_latency == 28
        assert stats.average_hops == 5

    def test_average_latency_inf_when_nothing_delivered(self):
        stats = SimulationStats()
        assert stats.average_latency == float("inf")

    def test_delivery_ratio(self):
        stats = SimulationStats()
        packet = self._packet(delivery_cycle=5)
        stats.record_packet_created(packet, cycle=0)
        assert stats.delivery_ratio == 0.0
        stats.record_packet_delivered(packet, cycle=5)
        assert stats.delivery_ratio == 1.0

    def test_delivery_ratio_defaults_to_one(self):
        assert SimulationStats().delivery_ratio == 1.0

    def test_latency_percentile(self):
        stats = SimulationStats()
        for latency in [10, 20, 30, 40]:
            packet = self._packet(creation=0, delivery_cycle=latency)
            stats.record_packet_delivered(packet, cycle=latency)
        assert stats.latency_percentile(0) == 10
        assert stats.latency_percentile(100) == 40
        with pytest.raises(ValueError):
            stats.latency_percentile(120)

    def test_latency_percentile_nearest_rank_even_length(self):
        # Regression: the old round()-based index banker's-rounded the p50
        # of an even-length sample up to the higher order statistic (30
        # here); nearest-rank (ceil) picks the n/2-th sample.
        stats = SimulationStats()
        for latency in [10, 20, 30, 40]:
            packet = self._packet(creation=0, delivery_cycle=latency)
            stats.record_packet_delivered(packet, cycle=latency)
        assert stats.latency_percentile(25) == 10
        assert stats.latency_percentile(50) == 20
        assert stats.latency_percentile(75) == 30
        assert stats.latency_percentile(99) == 40

    def test_latency_percentile_monotone(self):
        stats = SimulationStats()
        for latency in [3, 1, 4, 1, 5, 9]:
            packet = self._packet(creation=0, delivery_cycle=latency)
            stats.record_packet_delivered(packet, cycle=latency)
        values = [stats.latency_percentile(p) for p in range(0, 101, 5)]
        assert values == sorted(values)
        assert values[0] == 1
        assert values[-1] == 9

    def test_router_and_link_counters(self):
        stats = SimulationStats()
        packet = self._packet()
        stats.record_router_traversal(3, packet, cycle=0)
        stats.record_router_traversal(3, packet, cycle=1)
        stats.record_link_traversal(vertical=False, packet=packet, cycle=0)
        stats.record_link_traversal(vertical=True, packet=packet, cycle=0)
        assert stats.router_load(3) == 2
        assert stats.router_load(4) == 0
        assert stats.horizontal_link_traversals == 1
        assert stats.vertical_link_traversals == 1

    def test_throughput(self):
        stats = SimulationStats()
        packet = self._packet()
        for _ in range(8):
            stats.record_flit_delivered(packet, cycle=0)
        assert stats.throughput(measurement_cycles=4, num_nodes=2) == 1.0
        assert stats.throughput(0, 2) == 0.0

    def test_normalized_elevator_load(self):
        stats = SimulationStats()
        packet = self._packet()
        # Elevator column nodes 0 and 2 with load 6 each; plain nodes 1, 3
        # with load 2 and 4 (baseline mean 3).
        for node, count in [(0, 6), (2, 6), (1, 2), (3, 4)]:
            for _ in range(count):
                stats.record_router_traversal(node, packet, cycle=0)
        loads = stats.normalized_elevator_load({0: [0, 2]})
        assert loads[0] == pytest.approx(2.0)

    def test_merge(self):
        a = SimulationStats()
        b = SimulationStats()
        packet = self._packet(delivery_cycle=10)
        a.record_packet_created(packet, 0)
        b.record_packet_created(packet, 0)
        b.record_packet_delivered(packet, 10)
        a.merge(b)
        assert a.packets_created == 2
        assert a.packets_delivered == 1

    def test_merge_clamps_undercounted_sample_counter(self):
        # Regression: merging a reservoir whose samples_seen undercounts its
        # stored samples (hand-built or deserialized stats) used to compute
        # a negative per-sample share and walk latency_samples_seen
        # backwards; the counter is clamped so every stored sample stands
        # for at least one observation.
        a = SimulationStats()
        b = SimulationStats()
        b.latencies.extend([5.0, 6.0, 7.0])
        b.latency_samples_seen = 1  # inconsistent: three stored samples
        a.merge(b)
        assert a.latency_samples_seen == 3
        assert sorted(a.latencies) == [5.0, 6.0, 7.0]

    def test_merge_weights_downsampled_reservoir(self):
        # A consistent down-sampled input (seen > stored) still advances the
        # counter by the full observation count.
        a = SimulationStats()
        b = SimulationStats()
        b.latencies.extend([5.0, 6.0, 7.0])
        b.latency_samples_seen = 9  # each survivor stands for 3 observations
        a.merge(b)
        assert a.latency_samples_seen == 9
        assert sorted(a.latencies) == [5.0, 6.0, 7.0]


class TestSimulator:
    def test_invalid_configuration(self):
        network = make_network()
        source = BernoulliPacketSource(UniformTraffic(network.mesh), 0.0)
        with pytest.raises(ValueError):
            Simulator(network, source, warmup_cycles=-1)
        with pytest.raises(ValueError):
            Simulator(network, source, measurement_cycles=0)

    def test_zero_traffic_run(self):
        network = make_network()
        source = BernoulliPacketSource(UniformTraffic(network.mesh), 0.0)
        result = Simulator(network, source, 10, 50, 10).run()
        assert result.delivered_packets == 0
        assert result.throughput == 0.0
        assert result.average_latency == float("inf")

    def test_trace_driven_run_delivers_all(self):
        network = make_network()
        mesh = network.mesh
        events = [
            TraceEvent(cycle=0, source=mesh.node_id_xyz(0, 0, 0),
                       destination=mesh.node_id_xyz(1, 1, 1), length=4),
            TraceEvent(cycle=5, source=mesh.node_id_xyz(1, 1, 0),
                       destination=mesh.node_id_xyz(0, 0, 1), length=6),
        ]
        source = TracePacketSource(TrafficTrace(events, mesh=mesh))
        result = Simulator(network, source, 0, 20, 200).run()
        assert result.delivered_packets == 2
        assert result.stats.delivery_ratio == 1.0
        assert result.average_latency > 0

    def test_energy_metrics_attached(self):
        network = make_network()
        mesh = network.mesh
        events = [
            TraceEvent(cycle=0, source=mesh.node_id_xyz(0, 0, 0),
                       destination=mesh.node_id_xyz(1, 1, 1), length=4),
        ]
        source = TracePacketSource(TrafficTrace(events, mesh=mesh))
        result = Simulator(network, source, 0, 10, 100, energy_model=EnergyModel()).run()
        assert result.energy_per_flit is not None and result.energy_per_flit > 0
        assert result.total_energy is not None and result.total_energy > 0

    def test_warmup_packets_not_measured(self):
        network = make_network()
        mesh = network.mesh
        events = [
            TraceEvent(cycle=0, source=mesh.node_id_xyz(0, 0, 0),
                       destination=mesh.node_id_xyz(1, 0, 0), length=2),
            TraceEvent(cycle=30, source=mesh.node_id_xyz(0, 0, 0),
                       destination=mesh.node_id_xyz(1, 0, 0), length=2),
        ]
        source = TracePacketSource(TrafficTrace(events, mesh=mesh))
        result = Simulator(network, source, warmup_cycles=20, measurement_cycles=30,
                           drain_cycles=100).run()
        assert result.stats.packets_created == 1
        assert result.delivered_packets == 1

    def test_summary_contains_headline_metrics(self):
        network = make_network()
        source = BernoulliPacketSource(UniformTraffic(network.mesh, seed=1), 0.05, seed=1)
        result = Simulator(network, source, 10, 100, 200, energy_model=EnergyModel()).run()
        summary = result.summary()
        for key in ("average_latency", "throughput", "delivery_ratio", "energy_per_flit"):
            assert key in summary

    def test_run_simulation_wrapper(self):
        network = make_network()
        source = BernoulliPacketSource(UniformTraffic(network.mesh, seed=2), 0.02, seed=2)
        result = run_simulation(network, source, warmup_cycles=10,
                                measurement_cycles=100, drain_cycles=200)
        assert result.num_nodes == network.mesh.num_nodes
        assert result.policy_name == "elevator_first"

    def test_saturated_flag(self):
        result_stats = SimulationStats()
        from repro.sim.engine import SimulationResult

        result = SimulationResult(
            stats=result_stats, warmup_cycles=0, measurement_cycles=10,
            drain_cycles_used=0, num_nodes=4, average_latency=float("inf"),
            throughput=0.0,
        )
        packet = Packet(source=0, destination=1, length=2, creation_cycle=0)
        result_stats.record_packet_created(packet, 0)
        assert result.saturated
