"""Property tests: stats merging is order-independent (hypothesis).

``SimulationStats.merge`` / ``PhaseStats.merge`` are the streaming
aggregation primitives -- shards fold their rows in whatever order they
finish, so the fold must be a pure function of the *multiset* of inputs.
That holds exactly while reservoirs are under capacity (every test here
stays under; past capacity only the bounded sample set is order-sensitive,
never the exact totals -- pinned separately at the end).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.stats import PhaseStats, SimulationStats

# Integer-valued floats: exact under addition in any order, so scalar
# totals compare with == rather than approx.
latency_lists = st.lists(
    st.integers(min_value=0, max_value=200).map(float), max_size=20
)
small_counts = st.integers(min_value=0, max_value=50)


@st.composite
def phase_runs(draw):
    """A batch of PhaseStats windows of one timeline index."""
    runs = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        latencies = draw(latency_lists)
        phase = PhaseStats(
            label="window",
            start_cycle=draw(st.integers(min_value=0, max_value=100)),
            end_cycle=draw(st.integers(min_value=100, max_value=200)),
            packets_created=draw(small_counts),
            packets_delivered=len(latencies),
            flits_injected=draw(small_counts),
            total_latency=sum(latencies),
            total_hops=draw(small_counts),
            router_traversals=draw(small_counts),
        )
        for value in latencies:
            phase._observe_latency(value)
        runs.append(phase)
    return runs


@st.composite
def sim_runs(draw):
    """A batch of SimulationStats as repeated runs of one spec."""
    runs = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        latencies = draw(latency_lists)
        stats = SimulationStats(
            packets_created=draw(small_counts),
            packets_delivered=len(latencies),
            flits_injected=draw(small_counts),
            flits_delivered=draw(small_counts),
            total_latency=sum(latencies),
            total_hops=draw(small_counts),
            total_vertical_hops=draw(small_counts),
            horizontal_link_traversals=draw(small_counts),
            vertical_link_traversals=draw(small_counts),
        )
        for node in draw(st.lists(
            st.integers(min_value=0, max_value=7), max_size=6
        )):
            stats.router_traversals[node] = (
                stats.router_traversals.get(node, 0) + 1
            )
        for index in draw(st.lists(
            st.integers(min_value=0, max_value=3), max_size=6
        )):
            stats.elevator_assignments[index] = (
                stats.elevator_assignments.get(index, 0) + 1
            )
        for value in latencies:
            stats._observe_latency(value)
        runs.append(stats)
    return runs


def _fold_phases(runs, order):
    total = PhaseStats(label="window", start_cycle=10**9, end_cycle=0)
    for index in order:
        total.merge(runs[index])
    return total


def _fold_sims(runs, order):
    total = SimulationStats()
    for index in order:
        total.merge(runs[index])
    return total


def _phase_signature(phase: PhaseStats):
    return (
        phase.packets_created,
        phase.packets_delivered,
        phase.flits_injected,
        phase.total_latency,
        phase.total_hops,
        phase.router_traversals,
        phase.latency_samples_seen,
        sorted(phase.latencies),
        phase.start_cycle,
        phase.end_cycle,
    )


def _sim_signature(stats: SimulationStats):
    return (
        stats.packets_created,
        stats.packets_delivered,
        stats.flits_injected,
        stats.flits_delivered,
        stats.total_latency,
        stats.total_hops,
        stats.total_vertical_hops,
        stats.horizontal_link_traversals,
        stats.vertical_link_traversals,
        dict(stats.router_traversals),
        dict(stats.elevator_assignments),
        stats.latency_samples_seen,
        sorted(stats.latencies),
    )


@settings(max_examples=60, deadline=None)
@given(runs=phase_runs(), data=st.data())
def test_phase_merge_is_order_independent(runs, data):
    order = data.draw(st.permutations(range(len(runs))))
    forward = _fold_phases(runs, range(len(runs)))
    shuffled = _fold_phases(runs, order)
    assert _phase_signature(forward) == _phase_signature(shuffled)
    if forward.packets_delivered:
        assert forward.latency_percentile(50) == shuffled.latency_percentile(50)
        assert forward.average_latency == shuffled.average_latency


@settings(max_examples=60, deadline=None)
@given(runs=sim_runs(), data=st.data())
def test_sim_merge_is_order_independent(runs, data):
    order = data.draw(st.permutations(range(len(runs))))
    forward = _fold_sims(runs, range(len(runs)))
    shuffled = _fold_sims(runs, order)
    assert _sim_signature(forward) == _sim_signature(shuffled)


@settings(max_examples=40, deadline=None)
@given(runs=sim_runs(), data=st.data())
def test_sim_merge_is_associative(runs, data):
    """(a+b)+c == a+(b+c): fold left-to-right vs merge-of-merges."""
    split = data.draw(st.integers(min_value=0, max_value=len(runs)))
    left = _fold_sims(runs, range(split))
    right = _fold_sims(runs, range(split, len(runs)))
    left.merge(right)
    flat = _fold_sims(runs, range(len(runs)))
    assert _sim_signature(left) == _sim_signature(flat)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(
    st.integers(min_value=0, max_value=10**6).map(float),
    min_size=1, max_size=300,
), data=st.data())
def test_exact_totals_survive_reservoir_overflow(values, data):
    """Past capacity the sample *set* is bounded, but the exact totals and
    sample counts must still be order-independent."""
    a = SimulationStats(latency_reservoir_size=16)
    b = SimulationStats(latency_reservoir_size=16)
    order = data.draw(st.permutations(values))
    for value in values:
        a._observe_latency(value)
        a.packets_delivered += 1
        a.total_latency += value
    for value in order:
        b._observe_latency(value)
        b.packets_delivered += 1
        b.total_latency += value
    assert a.latency_samples_seen == b.latency_samples_seen == len(values)
    assert len(a.latencies) <= 16 and len(b.latencies) <= 16
    assert a.total_latency == b.total_latency
    assert a.average_latency == b.average_latency
