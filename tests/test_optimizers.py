"""The pluggable optimizer registry and the three built-in optimizers."""

import random

import pytest

from repro.core.amosa import AmosaConfig
from repro.core.optimizers import (
    DEFAULT_OFFLINE_AMOSA,
    OPTIMIZER_REGISTRY,
    AmosaSearch,
    GreedySwap,
    RandomSearch,
    available_optimizers,
    canonical_optimizer_options,
    make_optimizer,
)
from repro.core.pareto import dominates
from repro.core.pipeline import OfflineConfig, optimize_elevator_subsets
from repro.core.subset_search import ElevatorSubsetProblem
from repro.registry import UnknownComponentError
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


@pytest.fixture
def placement():
    mesh = Mesh3D(3, 3, 2)
    return ElevatorPlacement(mesh, [(0, 0), (2, 2), (1, 1)], name="three")


@pytest.fixture
def problem(placement):
    traffic = UniformTraffic(placement.mesh).traffic_matrix()
    return ElevatorSubsetProblem(placement, traffic, max_subset_size=2)


SMALL_AMOSA = dict(
    initial_temperature=5.0,
    final_temperature=0.2,
    cooling_rate=0.7,
    iterations_per_temperature=15,
    hard_limit=8,
    soft_limit=16,
    initial_solutions=4,
    seed=5,
)


def _assert_valid_front(problem, result):
    assert result.archive, "empty archive"
    vectors = [entry.objectives for entry in result.archive]
    assert not any(
        dominates(a, b) for a in vectors for b in vectors if a != b
    ), "archive contains dominated points"
    for entry in result.archive:
        assert problem.is_feasible(entry.solution)


class TestRegistry:
    def test_builtin_optimizers_registered(self):
        names = available_optimizers()
        assert names == ["amosa", "greedy-swap", "random-search"]

    def test_aliases_resolve(self):
        assert OPTIMIZER_REGISTRY.entry("random").name == "random-search"
        assert OPTIMIZER_REGISTRY.entry("greedy_swap").name == "greedy-swap"
        assert OPTIMIZER_REGISTRY.entry("AMOSA").name == "amosa"

    def test_unknown_name_raises_did_you_mean(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'amosa'"):
            make_optimizer("amosaa")
        with pytest.raises(ValueError):
            make_optimizer("no-such-optimizer")

    def test_canonical_options_apply_defaults(self):
        options = canonical_optimizer_options("amosa", {"seed": 9})
        assert options["seed"] == 9
        assert options["cooling_rate"] == DEFAULT_OFFLINE_AMOSA.cooling_rate
        # Equal effective configurations canonicalize identically.
        assert canonical_optimizer_options("amosa", {}) == canonical_optimizer_options(
            "amosa", {"seed": DEFAULT_OFFLINE_AMOSA.seed}
        )
        assert canonical_optimizer_options("random-search", {})["evaluations"] == 1500

    def test_unknown_option_names_raise(self):
        with pytest.raises(ValueError, match="unknown"):
            make_optimizer("amosa", {"temperature": 3})
        with pytest.raises(ValueError, match="unknown"):
            make_optimizer("random-search", {"iters": 10})

    def test_invalid_option_values_raise(self):
        with pytest.raises(ValueError):
            make_optimizer("random-search", {"evaluations": 0})
        with pytest.raises(ValueError):
            make_optimizer("greedy-swap", {"restarts": 0})
        with pytest.raises(ValueError):
            make_optimizer("amosa", {"cooling_rate": 2.0})


class TestOptimizers:
    def test_amosa_search_runs(self, problem):
        optimizer = AmosaSearch(**SMALL_AMOSA)
        result = optimizer.search(
            problem, seeds=[problem.nearest_elevator_solution()]
        )
        _assert_valid_front(problem, result)
        assert result.evaluations > 0

    def test_random_search_front_and_budget(self, problem):
        optimizer = RandomSearch(evaluations=120, seed=3)
        result = optimizer.search(
            problem, seeds=[problem.nearest_elevator_solution()]
        )
        _assert_valid_front(problem, result)
        assert result.evaluations == 120

    def test_greedy_swap_front(self, problem):
        optimizer = GreedySwap(restarts=3, passes=2, seed=1)
        result = optimizer.search(
            problem, seeds=[problem.nearest_elevator_solution()]
        )
        _assert_valid_front(problem, result)
        # Hill climbing must not end worse than its seeds on the
        # scalarization extremes: the archive holds a point at least as
        # good as the seed in each single objective.
        seed_objectives = problem.evaluate(problem.nearest_elevator_solution())
        best_variance = min(e.objectives[0] for e in result.archive)
        best_distance = min(e.objectives[1] for e in result.archive)
        assert best_variance <= seed_objectives[0]
        assert best_distance <= seed_objectives[1]

    @pytest.mark.parametrize(
        "name,options",
        [
            ("random-search", {"evaluations": 100, "seed": 4}),
            ("greedy-swap", {"restarts": 2, "passes": 1, "seed": 4}),
        ],
    )
    def test_determinism(self, problem, name, options):
        seeds = [problem.nearest_elevator_solution()]
        first = make_optimizer(name, options).search(problem, seeds=seeds)
        second = make_optimizer(name, options).search(problem, seeds=seeds)
        assert first.pareto_objectives() == second.pareto_objectives()
        assert first.evaluations == second.evaluations

    def test_respects_max_subset_size(self, placement):
        traffic = UniformTraffic(placement.mesh).traffic_matrix()
        problem = ElevatorSubsetProblem(placement, traffic, max_subset_size=1)
        for name, options in (
            ("random-search", {"evaluations": 60, "seed": 2}),
            ("greedy-swap", {"restarts": 2, "passes": 1}),
        ):
            result = make_optimizer(name, options).search(
                problem, seeds=[problem.nearest_elevator_solution()]
            )
            for entry in result.archive:
                assert all(len(s) == 1 for s in entry.solution.assignment.values())

    def test_progress_callbacks(self, problem):
        calls = []

        def on_iteration(stage, archive_size, best):
            calls.append((stage, archive_size, best))

        AmosaSearch(**SMALL_AMOSA).search(
            problem,
            seeds=[problem.nearest_elevator_solution()],
            on_iteration=on_iteration,
        )
        config = AmosaConfig(**SMALL_AMOSA)
        assert len(calls) == config.temperature_levels()
        temperatures = [call[0] for call in calls]
        assert temperatures == sorted(temperatures, reverse=True)
        assert all(isinstance(call[1], int) and call[1] >= 1 for call in calls)
        assert all(len(call[2]) == 2 for call in calls)

        for name, options in (
            ("random-search", {"evaluations": 100}),
            ("greedy-swap", {"restarts": 2, "passes": 1}),
        ):
            calls.clear()
            make_optimizer(name, options).search(
                problem,
                seeds=[problem.nearest_elevator_solution()],
                on_iteration=on_iteration,
            )
            assert calls, f"{name} never reported progress"


class TestPipelineIntegration:
    def test_offline_config_optimizer_dispatch(self, placement):
        config = OfflineConfig(
            optimizer="random-search",
            optimizer_options={"evaluations": 80, "seed": 2},
            max_subset_size=2,
        )
        design = optimize_elevator_subsets(placement, config=config)
        assert design.result.evaluations == 80
        assert design.pareto_points()

    def test_offline_config_amosa_options_override(self, placement):
        config = OfflineConfig(
            amosa=AmosaConfig(**SMALL_AMOSA),
            optimizer_options={"seed": 11},
            max_subset_size=2,
        )
        design = optimize_elevator_subsets(placement, config=config)
        assert design.pareto_points()

    def test_unknown_optimizer_raises(self, placement):
        config = OfflineConfig(optimizer="amosaa", max_subset_size=2)
        with pytest.raises(ValueError, match="did you mean"):
            optimize_elevator_subsets(placement, config=config)

    def test_selection_strategies(self, placement):
        base = dict(
            optimizer="random-search",
            optimizer_options={"evaluations": 150, "seed": 6},
            max_subset_size=2,
        )
        latency = optimize_elevator_subsets(
            placement, config=OfflineConfig(selection="latency", **base)
        )
        energy = optimize_elevator_subsets(
            placement, config=OfflineConfig(selection="energy", **base)
        )
        archive = latency.result.archive
        assert latency.selected.objectives == min(
            (e.objectives for e in archive), key=lambda o: (o[0], o[-1])
        )
        assert energy.selected.objectives == min(
            (e.objectives for e in archive), key=lambda o: (o[-1], o[0])
        )

    def test_invalid_selection_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            OfflineConfig(selection="balanced")

    def test_greedy_never_beaten_by_random_at_equal_budget(self, placement):
        """Sanity: structure beats chance on this tiny analytic problem."""
        traffic = UniformTraffic(placement.mesh).traffic_matrix()
        problem = ElevatorSubsetProblem(placement, traffic, max_subset_size=2)
        seeds = [problem.nearest_elevator_solution()]
        greedy = make_optimizer("greedy-swap", {"restarts": 2, "passes": 2}).search(
            problem, seeds=seeds
        )
        rng_budget = greedy.evaluations
        rand = make_optimizer(
            "random-search", {"evaluations": rng_budget, "seed": 0}
        ).search(problem, seeds=seeds)
        best_greedy = min(e.objectives[0] for e in greedy.archive)
        best_random = min(e.objectives[0] for e in rand.archive)
        assert best_greedy <= best_random + 1e-12


def test_amosa_on_iteration_direct():
    """AmosaOptimizer.run exposes the progress callback directly."""
    from repro.core.amosa import AmosaOptimizer

    class _Toy:
        def random_solution(self, rng):
            return rng.uniform(0.0, 1.0)

        def perturb(self, solution, rng):
            return min(1.0, max(0.0, solution + rng.uniform(-0.1, 0.1)))

        def evaluate(self, solution):
            return (solution, (1.0 - solution) ** 2)

    config = AmosaConfig(
        initial_temperature=2.0,
        final_temperature=0.1,
        cooling_rate=0.6,
        iterations_per_temperature=10,
        hard_limit=6,
        soft_limit=12,
        initial_solutions=3,
        seed=1,
    )
    calls = []
    AmosaOptimizer(_Toy(), config=config).run(
        on_iteration=lambda t, n, b: calls.append((t, n, b))
    )
    assert len(calls) == config.temperature_levels()
