"""Merge determinism of the metrics registry (property-based).

The service merges registries from workers, shards and scrape-time
snapshots in whatever order threads happen to finish, so the fold must be
a pure function of the multiset of recorded events: associative,
order-independent, and identical to recording everything into one
registry directly.  Same approach as ``test_stats_merge_property.py``
pins for the stats fold; events use integer values so float addition is
exact and comparisons can be equality.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)

#: Small fixed bucket set: merges only need bound equality, not realism.
BUCKETS = (1.0, 5.0, 25.0)

#: Every event kind writes to a name of its own kind (a registry rejects
#: kind conflicts by design, tested separately below).
_COUNTERS = ("jobs_total", "tasks_total")
_GAUGES = ("queue_depth", "workers")
_HISTOGRAMS = ("task_seconds",)
_LABELS = (None, {"state": "done"}, {"state": "failed"})


@st.composite
def events(draw):
    kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
    labels = draw(st.sampled_from(_LABELS))
    value = draw(st.integers(min_value=0, max_value=100))
    if kind == "counter":
        return ("counter", draw(st.sampled_from(_COUNTERS)), labels, value)
    if kind == "gauge":
        return ("gauge", draw(st.sampled_from(_GAUGES)), labels, value)
    return ("histogram", draw(st.sampled_from(_HISTOGRAMS)), labels, value)


event_lists = st.lists(events(), max_size=40)


def _apply(registry: MetricsRegistry, event) -> None:
    kind, name, labels, value = event
    if kind == "counter":
        registry.counter(name, labels).inc(value)
    elif kind == "gauge":
        # Additive gauge use: the merge semantics (sum) model "fleet
        # level = sum of member levels".
        registry.gauge(name, labels).inc(value)
    else:
        registry.histogram(name, labels, buckets=BUCKETS).observe(value)


def _registry_of(event_list) -> MetricsRegistry:
    registry = MetricsRegistry()
    for event in event_list:
        _apply(registry, event)
    return registry


def _chunks(event_list, cuts):
    bounds = sorted(set(cuts) | {0, len(event_list)})
    return [
        event_list[start:end]
        for start, end in zip(bounds, bounds[1:])
    ]


@settings(max_examples=60, deadline=None)
@given(event_list=event_lists, data=st.data())
def test_merge_is_order_independent(event_list, data):
    cuts = data.draw(st.lists(
        st.integers(min_value=0, max_value=len(event_list)), max_size=5
    ))
    parts = [_registry_of(chunk) for chunk in _chunks(event_list, cuts)]
    order = data.draw(st.permutations(range(len(parts))))

    merged = MetricsRegistry()
    for index in order:
        merged.merge(parts[index])

    assert merged.render_prometheus() == _registry_of(event_list).render_prometheus()
    assert merged.to_dict() == _registry_of(event_list).to_dict()


@settings(max_examples=60, deadline=None)
@given(event_list=event_lists, data=st.data())
def test_merge_is_associative(event_list, data):
    split = data.draw(st.integers(min_value=0, max_value=len(event_list)))
    a, b = _registry_of(event_list[:split]), _registry_of(event_list[split:])

    left = MetricsRegistry()
    left.merge(a)
    left.merge(b)

    inner = _registry_of(event_list[:split])
    inner.merge(b)
    right = MetricsRegistry()
    right.merge(inner)

    assert left.render_prometheus() == right.render_prometheus()


class TestRegistryContracts:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total").inc()
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("repro_things_total")

    def test_histogram_bound_mismatch_refuses_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b)

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat", buckets=(2.0, 1.0))

    def test_prometheus_rendering_is_pinned(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_jobs_total", {"state": "done"}, help="Jobs by state."
        ).inc(3)
        hist = registry.histogram("repro_task_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 0.75, 3.0, 9.0):
            hist.observe(value)
        assert registry.render_prometheus() == (
            "# HELP repro_jobs_total Jobs by state.\n"
            '# TYPE repro_jobs_total counter\n'
            'repro_jobs_total{state="done"} 3\n'
            "# TYPE repro_task_seconds histogram\n"
            'repro_task_seconds_bucket{le="1.0"} 2\n'
            'repro_task_seconds_bucket{le="5.0"} 3\n'
            'repro_task_seconds_bucket{le="+Inf"} 4\n'
            "repro_task_seconds_sum 13.25\n"
            "repro_task_seconds_count 4\n"
        )

    def test_default_latency_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS)
        )
