"""Unit tests for the Elevator-First route computation and VC discipline."""

import pytest

from repro.routing.base import (
    ASCEND_VN,
    DESCEND_VN,
    compute_output_port,
    path_nodes,
    virtual_network_for,
)
from repro.sim.flit import Packet
from repro.sim.router import Port
from repro.routing.base import RouteComputation
from repro.topology.mesh3d import Mesh3D


@pytest.fixture
def mesh():
    return Mesh3D(4, 4, 4)


class TestVirtualNetworkAssignment:
    def test_ascending_packets_use_vn0(self, mesh):
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 2)
        assert virtual_network_for(mesh, src, dst) == ASCEND_VN

    def test_descending_packets_use_vn1(self, mesh):
        src = mesh.node_id_xyz(0, 0, 3)
        dst = mesh.node_id_xyz(1, 1, 0)
        assert virtual_network_for(mesh, src, dst) == DESCEND_VN

    def test_same_layer_defaults_to_vn0(self, mesh):
        src = mesh.node_id_xyz(0, 0, 1)
        dst = mesh.node_id_xyz(3, 0, 1)
        assert virtual_network_for(mesh, src, dst) == ASCEND_VN


class TestComputeOutputPort:
    def test_same_layer_xy_routing_x_first(self, mesh):
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(2, 2, 0)
        assert compute_output_port(mesh, src, dst, None) == Port.EAST

    def test_same_layer_y_after_x(self, mesh):
        cur = mesh.node_id_xyz(2, 0, 0)
        dst = mesh.node_id_xyz(2, 2, 0)
        assert compute_output_port(mesh, cur, dst, None) == Port.NORTH

    def test_local_delivery(self, mesh):
        node = mesh.node_id_xyz(1, 1, 1)
        assert compute_output_port(mesh, node, node, None) == Port.LOCAL

    def test_interlayer_routes_toward_elevator(self, mesh):
        cur = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(0, 0, 2)
        assert compute_output_port(mesh, cur, dst, (2, 0)) == Port.EAST

    def test_interlayer_goes_up_at_elevator(self, mesh):
        cur = mesh.node_id_xyz(2, 0, 0)
        dst = mesh.node_id_xyz(0, 0, 2)
        assert compute_output_port(mesh, cur, dst, (2, 0)) == Port.UP

    def test_interlayer_goes_down_at_elevator(self, mesh):
        cur = mesh.node_id_xyz(2, 0, 3)
        dst = mesh.node_id_xyz(0, 0, 1)
        assert compute_output_port(mesh, cur, dst, (2, 0)) == Port.DOWN

    def test_after_vertical_xy_to_destination(self, mesh):
        cur = mesh.node_id_xyz(2, 0, 2)
        dst = mesh.node_id_xyz(0, 3, 2)
        assert compute_output_port(mesh, cur, dst, (2, 0)) == Port.WEST

    def test_interlayer_without_elevator_raises(self, mesh):
        cur = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(0, 0, 1)
        with pytest.raises(ValueError):
            compute_output_port(mesh, cur, dst, None)

    def test_westward_and_southward(self, mesh):
        cur = mesh.node_id_xyz(3, 3, 1)
        dst = mesh.node_id_xyz(1, 3, 1)
        assert compute_output_port(mesh, cur, dst, None) == Port.WEST
        cur2 = mesh.node_id_xyz(1, 3, 1)
        dst2 = mesh.node_id_xyz(1, 0, 1)
        assert compute_output_port(mesh, cur2, dst2, None) == Port.SOUTH


class TestPathNodes:
    def test_path_structure_source_elevator_destination(self, mesh):
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        path = path_nodes(mesh, src, dst, (1, 1))
        assert path[0] == src
        assert path[-1] == dst
        # The elevator's column must appear on both layers.
        columns = [mesh.coordinate(n).column() for n in path]
        assert (1, 1) in columns
        layers = [mesh.coordinate(n).z for n in path]
        assert layers == sorted(layers)  # monotone ascent for an up packet

    def test_path_length_matches_distance_via(self, mesh):
        from repro.topology.elevators import ElevatorPlacement

        placement = ElevatorPlacement(mesh, [(1, 1)])
        src = mesh.node_id_xyz(0, 3, 0)
        dst = mesh.node_id_xyz(3, 0, 2)
        elevator = placement.elevator_by_index(0)
        path = path_nodes(mesh, src, dst, elevator.column)
        assert len(path) - 1 == placement.distance_via(src, dst, elevator)

    def test_same_layer_path_is_xy(self, mesh):
        src = mesh.node_id_xyz(0, 0, 2)
        dst = mesh.node_id_xyz(2, 1, 2)
        path = path_nodes(mesh, src, dst, None)
        assert len(path) - 1 == 3

    def test_path_of_adjacent_nodes(self, mesh):
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        assert path_nodes(mesh, src, dst, None) == [src, dst]


class TestRouteComputation:
    def test_callable_uses_packet_fields(self, mesh):
        route = RouteComputation(mesh)
        packet = Packet(
            source=mesh.node_id_xyz(0, 0, 0),
            destination=mesh.node_id_xyz(0, 0, 1),
            length=2,
            creation_cycle=0,
            elevator_column=(0, 0),
        )
        assert route(mesh.node_id_xyz(0, 0, 0), packet) == Port.UP
