"""The never-perturbs invariant, property-tested across every backend.

Observability is only trustworthy if it is free: attaching a tracer and a
kernel probe to a run must leave the canonical cache key, the derived
seed and every number in the summary row byte-identical to an
uninstrumented run.  Anything else would mean "measuring the system
changes the system" -- cache splits, irreproducible sweeps, and metrics
nobody can compare against cached history.

Hypothesis drives random (policy, rate, seed, probe shape) points through
every registered backend family and compares instrumented vs plain runs;
a batch-level test pins the same invariant through the caching engine.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import run_experiment
from repro.exec.batch import ExperimentBatch
from repro.exec.cache import config_key, derive_seed
from repro.obs.probes import PROBE_CHANNELS, ProbeSpec
from repro.obs.tracing import (
    RingRecorder,
    Tracer,
    install_tracer,
    uninstall_tracer,
)
from repro.spec import ExperimentSpec, PlacementSpec, PolicySpec, SimSpec, TrafficSpec

try:
    import numpy  # noqa: F401

    HAVE_VECTORIZED = True
except ImportError:  # pragma: no cover - numpy-less installs
    HAVE_VECTORIZED = False

ALL_BACKENDS = ["reference", "optimized"] + (
    ["vectorized", "batched"] if HAVE_VECTORIZED else []
)


def _spec(backend: str, policy: str, rate: float, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="obs-tiny", mesh=(3, 3, 2), columns=((0, 0), (2, 2))
        ),
        policy=PolicySpec(name=policy),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
        sim=SimSpec(
            warmup_cycles=20,
            measurement_cycles=80,
            drain_cycles=60,
            seed=seed,
            backend=backend,
        ),
    )


#: Arbitrary probe shapes: any interval, any non-empty channel subset (in
#: canonical order), any bound -- none of it may matter to the results.
probe_specs = st.builds(
    ProbeSpec,
    interval=st.integers(min_value=1, max_value=64),
    channels=st.sets(st.sampled_from(PROBE_CHANNELS), min_size=1).map(
        lambda chosen: tuple(c for c in PROBE_CHANNELS if c in chosen)
    ),
    max_samples=st.integers(min_value=1, max_value=256),
)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@settings(max_examples=5, deadline=None)
@given(
    policy=st.sampled_from(["elevator_first", "adele"]),
    rate=st.sampled_from([0.002, 0.01, 0.03]),
    seed=st.integers(min_value=0, max_value=50),
    probe=probe_specs,
)
def test_tracer_and_probe_never_perturb(backend, policy, rate, seed, probe):
    spec = _spec(backend, policy, rate, seed)
    baseline_key = config_key(spec)
    baseline_seed = derive_seed(spec, base_seed=seed)
    baseline = run_experiment(spec).summary()

    install_tracer(Tracer(RingRecorder()))
    try:
        result = run_experiment(spec, probe=probe)
        instrumented = result.summary()
        instrumented_key = config_key(spec)
        instrumented_seed = derive_seed(spec, base_seed=seed)
    finally:
        uninstall_tracer()

    assert instrumented_key == baseline_key
    assert instrumented_seed == baseline_seed
    assert json.dumps(instrumented, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    # The probe filled a series, but it rides outside the summary row.
    assert result.probe is not None
    assert len(result.probe.cycles) > 0
    assert "probe" not in instrumented


def test_batch_rows_identical_with_probe_and_tracer():
    """Through the caching engine: probed batch rows == plain batch rows."""
    specs = [_spec("optimized", "adele", 0.01, seed) for seed in (0, 1)]
    plain = [o.summary for o in ExperimentBatch(specs).run()]

    install_tracer(Tracer(RingRecorder()))
    try:
        batch = ExperimentBatch(specs, probe=ProbeSpec(interval=25))
        probed = batch.run()
    finally:
        uninstall_tracer()

    assert json.dumps([o.summary for o in probed], sort_keys=True) == json.dumps(
        plain, sort_keys=True
    )
    # One series per executed spec, keyed by the (unchanged) cache key.
    assert sorted(batch.last_probes) == sorted(o.key for o in probed)
