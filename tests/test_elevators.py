"""Unit tests for elevator placements."""

import pytest

from repro.topology.elevators import (
    ElevatorPlacement,
    PlacementRegistry,
    average_distance_of_placement,
    optimize_placement,
    standard_placement,
)
from repro.topology.mesh3d import Mesh3D


class TestElevatorPlacement:
    def test_requires_elevator_for_multilayer(self):
        with pytest.raises(ValueError):
            ElevatorPlacement(Mesh3D(2, 2, 2), [])

    def test_single_layer_allows_no_elevator(self):
        placement = ElevatorPlacement(Mesh3D(2, 2, 1), [])
        assert placement.num_elevators == 0

    def test_rejects_out_of_range_column(self):
        with pytest.raises(ValueError):
            ElevatorPlacement(Mesh3D(2, 2, 2), [(2, 0)])

    def test_rejects_duplicate_column(self):
        with pytest.raises(ValueError):
            ElevatorPlacement(Mesh3D(2, 2, 2), [(0, 0), (0, 0)])

    def test_columns_preserve_order(self):
        placement = ElevatorPlacement(Mesh3D(3, 3, 2), [(2, 1), (0, 0)])
        assert placement.columns() == [(2, 1), (0, 0)]
        assert placement.elevator_by_index(0).column == (2, 1)

    def test_has_elevator(self, small_placement):
        mesh = small_placement.mesh
        assert small_placement.has_elevator(mesh.node_id_xyz(0, 0, 0))
        assert small_placement.has_elevator(mesh.node_id_xyz(0, 0, 1))
        assert not small_placement.has_elevator(mesh.node_id_xyz(1, 1, 0))

    def test_elevator_at(self, small_placement):
        mesh = small_placement.mesh
        elevator = small_placement.elevator_at(mesh.node_id_xyz(2, 2, 1))
        assert elevator is not None
        assert elevator.column == (2, 2)
        assert small_placement.elevator_at(mesh.node_id_xyz(1, 0, 0)) is None

    def test_elevator_nodes_span_all_layers(self, small_placement):
        elevator = small_placement.elevator_by_index(0)
        nodes = small_placement.elevator_nodes(elevator)
        assert len(nodes) == small_placement.mesh.num_layers
        layers = {small_placement.mesh.coordinate(n).z for n in nodes}
        assert layers == set(range(small_placement.mesh.num_layers))

    def test_all_elevator_nodes(self, small_placement):
        nodes = small_placement.all_elevator_nodes()
        assert len(nodes) == 2 * small_placement.mesh.num_layers
        assert len(set(nodes)) == len(nodes)

    def test_has_vertical_link(self, small_placement):
        mesh = small_placement.mesh
        bottom = mesh.node_id_xyz(0, 0, 0)
        top = mesh.node_id_xyz(0, 0, 1)
        plain = mesh.node_id_xyz(1, 1, 0)
        assert small_placement.has_vertical_link(bottom, up=True)
        assert not small_placement.has_vertical_link(bottom, up=False)
        assert small_placement.has_vertical_link(top, up=False)
        assert not small_placement.has_vertical_link(top, up=True)
        assert not small_placement.has_vertical_link(plain, up=True)

    def test_elevator_by_index_bounds(self, small_placement):
        with pytest.raises(ValueError):
            small_placement.elevator_by_index(5)

    def test_nearest_elevator(self, small_placement):
        mesh = small_placement.mesh
        near_origin = mesh.node_id_xyz(1, 0, 0)
        assert small_placement.nearest_elevator(near_origin).column == (0, 0)
        near_far = mesh.node_id_xyz(2, 1, 1)
        assert small_placement.nearest_elevator(near_far).column == (2, 2)

    def test_nearest_elevator_tie_breaks_by_index(self):
        mesh = Mesh3D(3, 1, 2)
        placement = ElevatorPlacement(mesh, [(0, 0), (2, 0)])
        middle = mesh.node_id_xyz(1, 0, 0)
        assert placement.nearest_elevator(middle).index == 0

    def test_distance_via_same_layer_is_zero(self, small_placement):
        mesh = small_placement.mesh
        a = mesh.node_id_xyz(0, 0, 0)
        b = mesh.node_id_xyz(2, 2, 0)
        elevator = small_placement.elevator_by_index(0)
        assert small_placement.distance_via(a, b, elevator) == 0

    def test_distance_via_interlayer(self, small_placement):
        mesh = small_placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        dst = mesh.node_id_xyz(1, 2, 1)
        e0 = small_placement.elevator_by_index(0)  # column (0, 0)
        # src->(0,0): 1 hop, vertical: 1 hop, (0,0)->dst: 3 hops.
        assert small_placement.distance_via(src, dst, e0) == 5

    def test_minimal_path_elevator(self, small_placement):
        mesh = small_placement.mesh
        src = mesh.node_id_xyz(2, 1, 0)
        dst = mesh.node_id_xyz(2, 2, 1)
        chosen = small_placement.minimal_path_elevator(src, dst)
        assert chosen.column == (2, 2)

    def test_minimal_path_elevator_same_layer_falls_back_to_nearest(
        self, small_placement
    ):
        mesh = small_placement.mesh
        src = mesh.node_id_xyz(0, 1, 0)
        dst = mesh.node_id_xyz(2, 1, 0)
        chosen = small_placement.minimal_path_elevator(src, dst)
        assert chosen.column == (0, 0)

    def test_fault_marking(self, small_placement):
        small_placement.mark_faulty(0)
        assert small_placement.is_faulty(0)
        healthy = small_placement.healthy_elevators()
        assert [e.index for e in healthy] == [1]
        mesh = small_placement.mesh
        # Nearest healthy elevator excludes the faulty one.
        node = mesh.node_id_xyz(0, 0, 0)
        assert small_placement.nearest_elevator(node).index == 1
        small_placement.clear_faults()
        assert not small_placement.is_faulty(0)

    def test_nearest_elevator_fails_when_all_faulty(self, tiny_placement):
        tiny_placement.mark_faulty(0)
        with pytest.raises(ValueError):
            tiny_placement.nearest_elevator(0)


class TestStandardPlacements:
    @pytest.mark.parametrize(
        "name,shape,count",
        [("PS1", (4, 4, 4), 3), ("PS2", (4, 4, 4), 4), ("PS3", (4, 4, 4), 6), ("PM", (8, 8, 4), 8)],
    )
    def test_standard_placements(self, name, shape, count):
        placement = standard_placement(name)
        assert placement.mesh.shape == shape
        assert placement.num_elevators == count
        assert placement.name == name

    def test_case_insensitive(self):
        assert standard_placement("ps1").name == "PS1"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown placement"):
            standard_placement("PS9")

    def test_mismatched_mesh_rejected(self):
        with pytest.raises(ValueError):
            standard_placement("PS1", mesh=Mesh3D(8, 8, 4))

    def test_ps1_has_lower_average_distance_than_corners(self):
        # PS1 is "extracted to have an optimized average distance"; it should
        # beat a naive corner placement with the same elevator count.
        ps1 = standard_placement("PS1")
        corners = ElevatorPlacement(Mesh3D(4, 4, 4), [(0, 0), (3, 3), (0, 3)])
        assert average_distance_of_placement(ps1) <= average_distance_of_placement(
            corners
        )


class TestAverageDistanceAndOptimizer:
    def test_average_distance_zero_for_single_layer(self):
        placement = ElevatorPlacement(Mesh3D(3, 3, 1), [(1, 1)])
        assert average_distance_of_placement(placement) == 0.0

    def test_average_distance_positive_for_multilayer(self, small_placement):
        assert average_distance_of_placement(small_placement) > 0.0

    def test_average_distance_with_traffic_weights(self, small_placement):
        mesh = small_placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(0, 0, 1)
        traffic = {(src, dst): 1.0}
        # Only this pair counts; it sits exactly on the (0, 0) elevator.
        assert average_distance_of_placement(small_placement, traffic) == 1.0

    def test_optimizer_beats_or_matches_corner_placement(self):
        mesh = Mesh3D(4, 4, 2)
        optimized = optimize_placement(mesh, 2, iterations=120, seed=3)
        corner = ElevatorPlacement(mesh, [(0, 0), (0, 1)])
        assert average_distance_of_placement(
            optimized
        ) <= average_distance_of_placement(corner)

    def test_optimizer_respects_elevator_count(self):
        mesh = Mesh3D(4, 4, 2)
        placement = optimize_placement(mesh, 3, iterations=50, seed=1)
        assert placement.num_elevators == 3
        assert len(set(placement.columns())) == 3

    def test_optimizer_rejects_bad_counts(self):
        mesh = Mesh3D(2, 2, 2)
        with pytest.raises(ValueError):
            optimize_placement(mesh, 0)
        with pytest.raises(ValueError):
            optimize_placement(mesh, 5)

    def test_optimizer_is_deterministic_for_seed(self):
        mesh = Mesh3D(4, 4, 2)
        a = optimize_placement(mesh, 2, iterations=60, seed=9)
        b = optimize_placement(mesh, 2, iterations=60, seed=9)
        assert a.columns() == b.columns()


class TestPlacementRegistry:
    def test_standard_lookup(self):
        registry = PlacementRegistry()
        assert registry.get("PS2").num_elevators == 4

    def test_custom_registration_overrides(self):
        registry = PlacementRegistry()
        custom = ElevatorPlacement(Mesh3D(2, 2, 2), [(1, 1)], name="PS1")
        registry.register(custom)
        assert registry.get("PS1") is custom

    def test_names_include_standard_and_custom(self):
        registry = PlacementRegistry()
        custom = ElevatorPlacement(Mesh3D(2, 2, 2), [(1, 1)], name="LAB")
        registry.register(custom)
        names = registry.names()
        assert "LAB" in names and "PS1" in names and "PM" in names
