"""Unit tests for traffic traces and packet sources."""

import pytest

from repro.topology.mesh3d import Mesh3D
from repro.traffic.generator import (
    BernoulliPacketSource,
    CompositePacketSource,
    TracePacketSource,
    make_packet_source,
)
from repro.traffic.patterns import UniformTraffic
from repro.traffic.trace import TraceEvent, TrafficTrace


@pytest.fixture
def mesh():
    return Mesh3D(2, 2, 2)


class TestTraceEvent:
    def test_valid_event(self):
        event = TraceEvent(cycle=3, source=0, destination=1, length=10)
        assert event.cycle == 3

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(cycle=-1, source=0, destination=1, length=10)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(cycle=0, source=0, destination=1, length=0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(cycle=0, source=2, destination=2, length=5)


class TestTrafficTrace:
    def test_events_sorted_by_cycle(self):
        events = [
            TraceEvent(cycle=5, source=0, destination=1, length=2),
            TraceEvent(cycle=1, source=1, destination=2, length=2),
        ]
        trace = TrafficTrace(events)
        assert [e.cycle for e in trace] == [1, 5]

    def test_node_validation_against_mesh(self, mesh):
        events = [TraceEvent(cycle=0, source=0, destination=99, length=2)]
        with pytest.raises(ValueError):
            TrafficTrace(events, mesh=mesh)

    def test_duration_and_totals(self):
        events = [
            TraceEvent(cycle=0, source=0, destination=1, length=3),
            TraceEvent(cycle=7, source=1, destination=0, length=5),
        ]
        trace = TrafficTrace(events)
        assert trace.duration == 7
        assert trace.total_flits() == 8
        assert len(trace) == 2

    def test_empty_trace(self):
        trace = TrafficTrace([])
        assert trace.duration == 0
        assert trace.total_flits() == 0

    def test_events_by_cycle_and_source(self):
        events = [
            TraceEvent(cycle=2, source=0, destination=1, length=1),
            TraceEvent(cycle=2, source=1, destination=0, length=1),
            TraceEvent(cycle=4, source=0, destination=2, length=1),
        ]
        trace = TrafficTrace(events)
        assert len(trace.events_by_cycle()[2]) == 2
        assert len(trace.events_for_source(0)) == 2

    def test_traffic_matrix_normalized_per_source(self):
        events = [
            TraceEvent(cycle=0, source=0, destination=1, length=10),
            TraceEvent(cycle=1, source=0, destination=2, length=30),
        ]
        matrix = TrafficTrace(events).traffic_matrix()
        assert matrix[(0, 1)] == pytest.approx(0.25)
        assert matrix[(0, 2)] == pytest.approx(0.75)

    def test_record_from_pattern(self, mesh):
        pattern = UniformTraffic(mesh, seed=3)
        trace = TrafficTrace.record(pattern, injection_rate=0.5, cycles=50, seed=3)
        assert len(trace) > 0
        assert all(10 <= event.length <= 30 for event in trace)
        assert all(event.cycle < 50 for event in trace)

    def test_record_validates_arguments(self, mesh):
        pattern = UniformTraffic(mesh)
        with pytest.raises(ValueError):
            TrafficTrace.record(pattern, injection_rate=-1, cycles=10)
        with pytest.raises(ValueError):
            TrafficTrace.record(
                pattern, injection_rate=0.1, cycles=10, min_packet_length=5,
                max_packet_length=2,
            )


class TestBernoulliPacketSource:
    def test_rate_zero_produces_nothing(self, mesh):
        source = BernoulliPacketSource(UniformTraffic(mesh), injection_rate=0.0)
        assert all(not source.requests(cycle) for cycle in range(20))

    def test_requests_respect_packet_length_bounds(self, mesh):
        source = BernoulliPacketSource(
            UniformTraffic(mesh, seed=1), injection_rate=0.9, seed=1
        )
        lengths = [r.length for c in range(10) for r in source.requests(c)]
        assert lengths
        assert all(10 <= length <= 30 for length in lengths)

    def test_injection_rate_statistics(self, mesh):
        rate = 0.3
        source = BernoulliPacketSource(
            UniformTraffic(mesh, seed=2), injection_rate=rate, seed=2
        )
        cycles = 400
        total = sum(len(source.requests(c)) for c in range(cycles))
        expected = rate * mesh.num_nodes * cycles
        assert expected * 0.8 < total < expected * 1.2

    def test_reset_reproduces_stream(self, mesh):
        source = BernoulliPacketSource(
            UniformTraffic(mesh, seed=4), injection_rate=0.5, seed=4
        )
        first = [tuple((r.source, r.destination, r.length) for r in source.requests(c)) for c in range(10)]
        source.reset()
        second = [tuple((r.source, r.destination, r.length) for r in source.requests(c)) for c in range(10)]
        assert first == second

    def test_invalid_arguments(self, mesh):
        with pytest.raises(ValueError):
            BernoulliPacketSource(UniformTraffic(mesh), injection_rate=-0.1)
        with pytest.raises(ValueError):
            BernoulliPacketSource(
                UniformTraffic(mesh), injection_rate=0.1, min_packet_length=0
            )


class TestTracePacketSource:
    def test_replay_matches_trace(self):
        events = [
            TraceEvent(cycle=1, source=0, destination=1, length=4),
            TraceEvent(cycle=3, source=1, destination=2, length=6),
        ]
        source = TracePacketSource(TrafficTrace(events))
        assert source.requests(0) == []
        assert len(source.requests(1)) == 1
        assert source.requests(1)[0].length == 4
        assert len(source.requests(3)) == 1
        assert source.requests(10) == []

    def test_repeat_wraps_around(self):
        events = [TraceEvent(cycle=1, source=0, destination=1, length=4)]
        source = TracePacketSource(TrafficTrace(events), repeat=True)
        assert len(source.requests(1)) == 1
        assert len(source.requests(3)) == 1  # period is 2 -> cycle 3 maps to 1

    def test_empty_trace_source(self):
        source = TracePacketSource(TrafficTrace([]))
        assert source.requests(0) == []


class TestCompositeAndFactory:
    def test_composite_merges_sources(self, mesh):
        events = [TraceEvent(cycle=0, source=0, destination=1, length=4)]
        composite = CompositePacketSource(
            [
                TracePacketSource(TrafficTrace(events)),
                TracePacketSource(TrafficTrace(events)),
            ]
        )
        assert len(composite.requests(0)) == 2
        composite.reset()

    def test_composite_requires_sources(self):
        with pytest.raises(ValueError):
            CompositePacketSource([])

    def test_factory_requires_exactly_one_input(self, mesh):
        pattern = UniformTraffic(mesh)
        trace = TrafficTrace([])
        with pytest.raises(ValueError):
            make_packet_source()
        with pytest.raises(ValueError):
            make_packet_source(pattern=pattern, trace=trace)
        assert isinstance(make_packet_source(pattern=pattern, injection_rate=0.1), BernoulliPacketSource)
        assert isinstance(make_packet_source(trace=trace), TracePacketSource)
