"""Unit tests for synthetic traffic patterns."""

import pytest

from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)


@pytest.fixture
def mesh():
    return Mesh3D(4, 4, 4)


class TestUniformTraffic:
    def test_destination_never_equals_source(self, mesh):
        pattern = UniformTraffic(mesh, seed=1)
        for source in range(mesh.num_nodes):
            for _ in range(5):
                assert pattern.destination(source) != source

    def test_destination_in_range(self, mesh):
        pattern = UniformTraffic(mesh, seed=2)
        for _ in range(100):
            dst = pattern.destination(0)
            assert 0 <= dst < mesh.num_nodes

    def test_traffic_matrix_rows_sum_to_one(self, mesh):
        matrix = UniformTraffic(mesh).traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0)

    def test_traffic_matrix_has_no_self_pairs(self, mesh):
        matrix = UniformTraffic(mesh).traffic_matrix()
        assert all(src != dst for (src, dst) in matrix)

    def test_reseed_reproduces_sequence(self, mesh):
        pattern = UniformTraffic(mesh, seed=5)
        first = [pattern.destination(3) for _ in range(10)]
        pattern.reseed(5)
        second = [pattern.destination(3) for _ in range(10)]
        assert first == second


class TestShuffleTraffic:
    def test_deterministic_target(self, mesh):
        pattern = ShuffleTraffic(mesh)
        # 64 nodes -> 6 bits; shuffle of 1 (000001) is 2 (000010).
        assert pattern.destination(1) == 2
        # 32 (100000) rotates to 1 (000001).
        assert pattern.destination(32) == 1

    def test_matrix_rows_sum_to_one(self, mesh):
        matrix = ShuffleTraffic(mesh).traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0)

    def test_self_mapping_falls_back_to_uniform(self, mesh):
        pattern = ShuffleTraffic(mesh, seed=3)
        # Node 0 shuffles onto itself; the online draw must avoid self.
        assert pattern.destination(0) != 0

    def test_non_power_of_two_mesh(self):
        mesh = Mesh3D(3, 3, 2)
        pattern = ShuffleTraffic(mesh)
        for source in range(mesh.num_nodes):
            dst = pattern.destination(source)
            assert 0 <= dst < mesh.num_nodes and dst != source


class TestBitComplementTraffic:
    def test_complement_mapping(self, mesh):
        pattern = BitComplementTraffic(mesh)
        assert pattern.destination(0) == 63
        assert pattern.destination(5) == 58

    def test_matrix_is_symmetric_pairing(self, mesh):
        matrix = BitComplementTraffic(mesh).traffic_matrix()
        assert matrix[(0, 63)] == pytest.approx(1.0)
        assert matrix[(63, 0)] == pytest.approx(1.0)


class TestTransposeTraffic:
    def test_transpose_flips_xy_and_layer(self, mesh):
        pattern = TransposeTraffic(mesh)
        src = mesh.node_id_xyz(1, 2, 0)
        expected = mesh.node_id_xyz(2, 1, 3)
        assert pattern.destination(src) == expected

    def test_matrix_rows_sum_to_one(self, mesh):
        matrix = TransposeTraffic(mesh).traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0)


class TestHotspotTraffic:
    def test_invalid_fraction_rejected(self, mesh):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh, hotspot_fraction=1.5)

    def test_invalid_hotspot_rejected(self, mesh):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh, hotspots=[999])

    def test_hotspots_receive_extra_traffic(self, mesh):
        hotspot = mesh.node_id_xyz(2, 2, 0)
        pattern = HotspotTraffic(mesh, hotspots=[hotspot], hotspot_fraction=0.5, seed=4)
        matrix = pattern.traffic_matrix()
        hot_weight = matrix[(0, hotspot)]
        other_weight = matrix[(0, 1)]
        assert hot_weight > 5 * other_weight

    def test_matrix_rows_sum_to_one(self, mesh):
        pattern = HotspotTraffic(mesh, hotspot_fraction=0.3)
        matrix = pattern.traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0)

    def test_destination_avoids_source(self, mesh):
        pattern = HotspotTraffic(mesh, hotspots=[0], hotspot_fraction=0.9, seed=2)
        for _ in range(50):
            assert pattern.destination(0) != 0


class TestNeighborTraffic:
    def test_invalid_fraction_rejected(self, mesh):
        with pytest.raises(ValueError):
            NeighborTraffic(mesh, local_fraction=-0.1)

    def test_neighbors_dominate(self, mesh):
        pattern = NeighborTraffic(mesh, local_fraction=0.8, seed=1)
        matrix = pattern.traffic_matrix()
        src = mesh.node_id_xyz(1, 1, 1)
        neighbor = mesh.node_id_xyz(2, 1, 1)
        distant = mesh.node_id_xyz(3, 3, 3)
        assert matrix[(src, neighbor)] > matrix[(src, distant)]

    def test_matrix_rows_sum_to_one(self, mesh):
        matrix = NeighborTraffic(mesh).traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("uniform", UniformTraffic),
            ("shuffle", ShuffleTraffic),
            ("transpose", TransposeTraffic),
            ("bit_complement", BitComplementTraffic),
            ("hotspot", HotspotTraffic),
            ("neighbor", NeighborTraffic),
        ],
    )
    def test_make_pattern(self, mesh, name, cls):
        assert isinstance(make_pattern(name, mesh), cls)

    def test_make_pattern_case_insensitive(self, mesh):
        assert isinstance(make_pattern("Uniform", mesh), UniformTraffic)

    def test_unknown_pattern(self, mesh):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_pattern("tornado", mesh)

    def test_pattern_specific_kwargs(self, mesh):
        pattern = make_pattern("hotspot", mesh, hotspot_fraction=0.7)
        assert pattern.hotspot_fraction == 0.7
