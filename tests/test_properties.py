"""Property-based tests (hypothesis) on core invariants.

These cover the invariants the paper's correctness rests on:

* Elevator-First route computation always reaches the destination and never
  uses a missing vertical link (deadlock-freedom prerequisite);
* the Pareto archive never contains a dominated point;
* the objective evaluator agrees with the reference (naive) implementation;
* buffers never exceed their depth and preserve FIFO order;
* the skip probability of Eq. 9 stays within [0, 1 - xi].
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.objectives import ObjectiveEvaluator, average_distance, utilization_variance
from repro.core.pareto import ParetoArchive, dominates
from repro.core.subset_search import ElevatorSubsetProblem
from repro.routing.adele import AdElePolicy, AdEleRouterState
from repro.routing.base import compute_output_port, path_nodes, virtual_network_for
from repro.sim.buffer import FlitBuffer
from repro.sim.flit import Packet
from repro.sim.router import Port, VERTICAL_PORTS
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
mesh_shapes = st.tuples(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=3),
)


@st.composite
def mesh_and_placement(draw):
    shape = draw(mesh_shapes)
    mesh = Mesh3D(*shape)
    columns = [(x, y) for x in range(shape[0]) for y in range(shape[1])]
    count = draw(st.integers(min_value=1, max_value=min(4, len(columns))))
    chosen = draw(
        st.lists(
            st.sampled_from(columns), min_size=count, max_size=count, unique=True
        )
    )
    return mesh, ElevatorPlacement(mesh, chosen)


@st.composite
def routed_pair(draw):
    mesh, placement = draw(mesh_and_placement())
    src = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    if src == dst:
        dst = (dst + 1) % mesh.num_nodes
    return mesh, placement, src, dst


# --------------------------------------------------------------------- #
# Routing properties
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(routed_pair())
def test_route_always_reaches_destination(data):
    mesh, placement, src, dst = data
    elevator = None
    if not mesh.same_layer(src, dst):
        elevator = placement.nearest_elevator(src)
    column = elevator.column if elevator else None
    path = path_nodes(mesh, src, dst, column)
    assert path[0] == src
    assert path[-1] == dst
    # Path length is bounded by the Manhattan distance via the elevator.
    if elevator is not None:
        assert len(path) - 1 == placement.distance_via(src, dst, elevator)
    else:
        assert len(path) - 1 == mesh.manhattan_2d(src, dst)


@settings(max_examples=60, deadline=None)
@given(routed_pair())
def test_route_never_uses_missing_vertical_link(data):
    mesh, placement, src, dst = data
    elevator = None
    if not mesh.same_layer(src, dst):
        elevator = placement.minimal_path_elevator(src, dst)
    column = elevator.column if elevator else None
    current = src
    for _ in range(4 * mesh.num_nodes):
        if current == dst:
            break
        port = compute_output_port(mesh, current, dst, column)
        if port == Port.LOCAL:
            break
        if port in VERTICAL_PORTS:
            # Vertical moves only happen on routers that carry an elevator.
            assert placement.has_elevator(current)
        coord = mesh.coordinate(current)
        step = {
            Port.EAST: (1, 0, 0), Port.WEST: (-1, 0, 0), Port.NORTH: (0, 1, 0),
            Port.SOUTH: (0, -1, 0), Port.UP: (0, 0, 1), Port.DOWN: (0, 0, -1),
        }[port]
        current = mesh.node_id_xyz(coord.x + step[0], coord.y + step[1], coord.z + step[2])
    assert current == dst


@settings(max_examples=60, deadline=None)
@given(routed_pair())
def test_vertical_direction_matches_virtual_network(data):
    mesh, placement, src, dst = data
    vn = virtual_network_for(mesh, src, dst)
    if mesh.same_layer(src, dst):
        return
    elevator = placement.nearest_elevator(src)
    path = path_nodes(mesh, src, dst, elevator.column)
    directions = set()
    for a, b in zip(path, path[1:]):
        dz = mesh.coordinate(b).z - mesh.coordinate(a).z
        if dz != 0:
            directions.add(dz)
    # Ascend packets only move up; descend packets only move down.
    assert directions == ({1} if vn == 0 else {-1})


# --------------------------------------------------------------------- #
# Pareto archive properties
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_archive_never_holds_dominated_points(points):
    archive = ParetoArchive(hard_limit=8, soft_limit=16)
    for index, point in enumerate(points):
        archive.add(index, point)
    assert archive.invariant_holds()
    assert len(archive) <= 16


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        min_size=2,
        max_size=30,
    )
)
def test_archive_keeps_a_non_dominated_representative(points):
    archive = ParetoArchive(hard_limit=6, soft_limit=10)
    for index, point in enumerate(points):
        archive.add(index, point)
    # Every input point must be dominated-or-equalled by something retained.
    retained = archive.objective_vectors()
    for point in points:
        assert any(
            vector == point or dominates(vector, point) or not dominates(point, vector)
            for vector in retained
        )


# --------------------------------------------------------------------- #
# Objective evaluator property
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(mesh_and_placement(), st.integers(min_value=0, max_value=2 ** 30))
def test_evaluator_matches_reference(data, seed):
    mesh, placement = data
    traffic = UniformTraffic(mesh).traffic_matrix()
    problem = ElevatorSubsetProblem(placement, traffic)
    solution = problem.random_solution(random.Random(seed))
    subsets = solution.subsets()
    evaluator = ObjectiveEvaluator(placement, traffic)
    assert evaluator.utilization_variance(subsets) == (
        __import__("pytest").approx(utilization_variance(subsets, placement, traffic))
    )
    assert evaluator.average_distance(subsets) == (
        __import__("pytest").approx(average_distance(subsets, placement))
    )


# --------------------------------------------------------------------- #
# Buffer properties
# --------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.sampled_from(["stage", "commit", "pop"]), max_size=60),
)
def test_buffer_never_exceeds_depth_and_keeps_fifo(depth, operations):
    buf = FlitBuffer(depth)
    packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
    pushed = []
    popped = []
    counter = 0
    for op in operations:
        if op == "stage" and not buf.is_full():
            flit = packet.make_flits()[0]
            flit.sequence = counter
            counter += 1
            pushed.append(flit.sequence)
            buf.stage(flit)
        elif op == "commit":
            buf.commit()
        elif op == "pop" and not buf.is_empty():
            popped.append(buf.pop().sequence)
        assert buf.total_occupancy <= depth
        assert buf.occupancy <= depth
    # FIFO: popped sequences must be a prefix of pushed sequences.
    assert popped == pushed[: len(popped)]


# --------------------------------------------------------------------- #
# AdEle skip-probability property (Eq. 9)
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), min_size=2, max_size=6),
    st.floats(min_value=0.0, max_value=0.3),
)
def test_skip_probability_bounded(costs, xi):
    mesh = Mesh3D(3, 3, 2)
    columns = [(x, y) for x in range(3) for y in range(3)][: len(costs)]
    placement = ElevatorPlacement(mesh, columns)
    policy = AdElePolicy(placement, xi=xi)
    state = AdEleRouterState(subset=list(placement.elevators))
    for index, cost in enumerate(costs):
        state.costs[index] = cost
    for index in range(len(costs)):
        probability = policy.skip_probability(state, index)
        assert 0.0 <= probability <= 1.0 - xi + 1e-12
    # At least one elevator must always remain selectable outright.
    assert min(policy.skip_probability(state, i) for i in range(len(costs))) < 1.0
