"""Unit tests for the 3D mesh geometry."""

import pytest

from repro.topology.mesh3d import Coordinate, Mesh3D


class TestCoordinate:
    def test_manhattan_2d_ignores_layer(self):
        a = Coordinate(0, 0, 0)
        b = Coordinate(2, 3, 3)
        assert a.manhattan_2d(b) == 5

    def test_manhattan_3d_counts_layers(self):
        a = Coordinate(0, 0, 0)
        b = Coordinate(2, 3, 3)
        assert a.manhattan_3d(b) == 8

    def test_same_layer(self):
        assert Coordinate(1, 2, 0).same_layer(Coordinate(0, 0, 0))
        assert not Coordinate(1, 2, 1).same_layer(Coordinate(0, 0, 0))

    def test_column(self):
        assert Coordinate(3, 1, 2).column() == (3, 1)

    def test_as_tuple(self):
        assert Coordinate(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_ordering_is_stable(self):
        assert Coordinate(0, 0, 0) < Coordinate(1, 0, 0)


class TestMesh3D:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Mesh3D(0, 4, 4)
        with pytest.raises(ValueError):
            Mesh3D(4, -1, 4)

    def test_num_nodes(self):
        assert Mesh3D(4, 4, 4).num_nodes == 64
        assert Mesh3D(8, 8, 4).num_nodes == 256

    def test_nodes_per_layer(self):
        assert Mesh3D(4, 3, 2).nodes_per_layer == 12

    def test_shape(self):
        assert Mesh3D(2, 3, 4).shape == (2, 3, 4)

    def test_id_coordinate_roundtrip(self):
        mesh = Mesh3D(3, 4, 2)
        for node in mesh.nodes():
            assert mesh.node_id(mesh.coordinate(node)) == node

    def test_coordinate_layout_is_layer_major(self):
        mesh = Mesh3D(4, 4, 4)
        assert mesh.coordinate(0) == Coordinate(0, 0, 0)
        assert mesh.coordinate(1) == Coordinate(1, 0, 0)
        assert mesh.coordinate(4) == Coordinate(0, 1, 0)
        assert mesh.coordinate(16) == Coordinate(0, 0, 1)

    def test_node_id_xyz(self):
        mesh = Mesh3D(4, 4, 4)
        assert mesh.node_id_xyz(1, 2, 3) == 1 + 2 * 4 + 3 * 16

    def test_out_of_range_node_rejected(self):
        mesh = Mesh3D(2, 2, 2)
        with pytest.raises(ValueError):
            mesh.coordinate(8)
        with pytest.raises(ValueError):
            mesh.coordinate(-1)

    def test_out_of_range_coordinate_rejected(self):
        mesh = Mesh3D(2, 2, 2)
        with pytest.raises(ValueError):
            mesh.node_id(Coordinate(2, 0, 0))

    def test_contains(self):
        mesh = Mesh3D(2, 2, 2)
        assert mesh.contains(Coordinate(1, 1, 1))
        assert not mesh.contains(Coordinate(2, 0, 0))
        assert not mesh.contains(Coordinate(0, 0, -1))

    def test_layer_nodes(self):
        mesh = Mesh3D(2, 2, 3)
        assert mesh.layer_nodes(0) == [0, 1, 2, 3]
        assert mesh.layer_nodes(2) == [8, 9, 10, 11]
        with pytest.raises(ValueError):
            mesh.layer_nodes(3)

    def test_column_nodes(self):
        mesh = Mesh3D(2, 2, 3)
        assert mesh.column_nodes(1, 0) == [1, 5, 9]
        with pytest.raises(ValueError):
            mesh.column_nodes(2, 0)

    def test_horizontal_neighbors_corner(self):
        mesh = Mesh3D(3, 3, 1)
        corner = mesh.node_id_xyz(0, 0, 0)
        assert sorted(mesh.horizontal_neighbors(corner)) == sorted(
            [mesh.node_id_xyz(1, 0, 0), mesh.node_id_xyz(0, 1, 0)]
        )

    def test_horizontal_neighbors_center(self):
        mesh = Mesh3D(3, 3, 1)
        center = mesh.node_id_xyz(1, 1, 0)
        assert len(mesh.horizontal_neighbors(center)) == 4

    def test_vertical_neighbors(self):
        mesh = Mesh3D(2, 2, 3)
        bottom = mesh.node_id_xyz(0, 0, 0)
        middle = mesh.node_id_xyz(0, 0, 1)
        top = mesh.node_id_xyz(0, 0, 2)
        assert mesh.vertical_neighbors(bottom) == [middle]
        assert sorted(mesh.vertical_neighbors(middle)) == sorted([bottom, top])

    def test_distances(self):
        mesh = Mesh3D(4, 4, 4)
        a = mesh.node_id_xyz(0, 0, 0)
        b = mesh.node_id_xyz(3, 2, 1)
        assert mesh.manhattan_2d(a, b) == 5
        assert mesh.manhattan_3d(a, b) == 6

    def test_same_layer(self):
        mesh = Mesh3D(2, 2, 2)
        assert mesh.same_layer(0, 3)
        assert not mesh.same_layer(0, 4)

    def test_equality_and_hash(self):
        assert Mesh3D(2, 3, 4) == Mesh3D(2, 3, 4)
        assert Mesh3D(2, 3, 4) != Mesh3D(4, 3, 2)
        assert hash(Mesh3D(2, 3, 4)) == hash(Mesh3D(2, 3, 4))

    def test_coordinates_iteration_matches_nodes(self):
        mesh = Mesh3D(2, 2, 2)
        coords = list(mesh.coordinates())
        assert len(coords) == mesh.num_nodes
        assert coords[0] == Coordinate(0, 0, 0)
        assert coords[-1] == Coordinate(1, 1, 1)
