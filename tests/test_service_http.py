"""End-to-end tests of the experiment service over real HTTP.

Boots the full stack in-process -- SqliteStore + JobQueue + WorkerPool +
ThreadingHTTPServer on an ephemeral port -- and drives it through
:class:`~repro.service.client.ServiceClient` exactly like an external
process would: submit, poll, fetch results, cancel.  The load-bearing
assertion is bit-identity: a job's summary rows must equal a direct
``api.run_specs`` run of the same specs, byte for byte.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ServiceContext, make_server
from repro.service.queue import JobQueue
from repro.service.store import SqliteStore
from repro.service.workers import WorkerPool
from repro.spec import ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec


def _spec(rate: float = 0.002, policy: str = "elevator_first") -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="http-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
        sim=SimSpec(warmup_cycles=10, measurement_cycles=40, drain_cycles=30),
    ).with_(policy=policy)


@pytest.fixture
def service(tmp_path):
    """A live daemon on an ephemeral port; yields a connected client."""
    store = SqliteStore(str(tmp_path / "service.sqlite3"))
    queue = JobQueue(store)
    pool = WorkerPool(store, workers=2, queue=queue, poll_interval=0.02)
    server = make_server(ServiceContext(store, queue, pool), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    pool.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client
    finally:
        server.shutdown()
        server.server_close()
        pool.stop()
        store.close()
        thread.join(timeout=5)


class TestServiceEndToEnd:
    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_submit_wait_results_bit_identical_to_direct_run(self, service):
        specs = [_spec(0.001), _spec(0.002, policy="adele")]
        job_id = service.submit(specs, base_seed=7)
        status = service.wait(job_id, timeout=120)
        assert status["state"] == "done"
        rows = service.results(job_id)

        direct = [o.summary for o in api.run_specs(specs, base_seed=7)]
        assert json.dumps(rows, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_identical_resubmission_attaches_to_existing_job(self, service):
        specs = [_spec(0.001)]
        first = service.submit_receipt(specs, base_seed=3)
        service.wait(first["job_id"], timeout=120)
        second = service.submit_receipt(specs, base_seed=3)
        assert first["created"] is True
        assert second["created"] is False
        assert second["job_id"] == first["job_id"]
        assert second["state"] == "done"

    def test_progress_polling_counts(self, service):
        job_id = service.submit([_spec(0.001)])
        status = service.wait(job_id, timeout=120)
        assert status["counts"]["done"] == 1
        assert status["num_tasks"] == 1
        jobs = service.jobs()
        assert any(job["job_id"] == job_id for job in jobs)

    def test_results_of_unfinished_job_raise(self, service, tmp_path):
        # A store-only submission (no worker has run yet on a fresh queue)
        # cannot produce rows; the client surfaces that as a 409-style
        # error instead of returning partial data.
        store = SqliteStore(str(tmp_path / "other.sqlite3"))
        queue = JobQueue(store)
        queue.submit([_spec(0.005)])
        docs = queue.results(1)
        assert docs[0]["summary"] is None
        store.close()

    def test_cancel_queued_job(self, service):
        # Saturate the two workers with slow tasks, then cancel a queued
        # job before anyone claims it.
        slow = [_spec(0.003), _spec(0.004), _spec(0.005), _spec(0.006)]
        service.submit(slow)
        victim = service.submit([_spec(0.009)])
        cancelled = service.cancel(victim)
        if cancelled["state"] == "cancelled":  # not yet claimed: the
            assert cancelled["counts"]["cancelled"] == 1  # common path
        else:  # a worker grabbed it first; it must then finish normally
            assert service.wait(victim, timeout=120)["state"] == "done"

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.status(12345)
        assert excinfo.value.status == 404

    def test_bad_submission_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._request("POST", "/api/jobs", {"specs": []})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._request("GET", "/api/nothing")
        assert excinfo.value.status == 404

    def test_api_module_level_helpers(self, service):
        job_id = api.submit(
            [_spec(0.001)], base_seed=5, base_url=service.base_url
        )
        api.wait(job_id, timeout=120, base_url=service.base_url)
        rows = api.results(job_id, base_url=service.base_url)
        assert rows and "average_latency" in rows[0]

    def test_connect_returns_client(self, service):
        client = api.connect(service.base_url)
        assert isinstance(client, ServiceClient)
        assert client.health()["status"] == "ok"
