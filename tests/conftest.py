"""Shared fixtures for the test suite.

The fixtures favour tiny meshes (2x2x2, 3x3x2, 4x4x4) and short simulations
so the full suite stays fast while still exercising every code path the
paper's evaluation relies on.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import clear_design_cache
from repro.energy.model import EnergyModel
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.sim.network import Network
from repro.topology.elevators import ElevatorPlacement, standard_placement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


@pytest.fixture
def tiny_mesh() -> Mesh3D:
    """A 2x2x2 mesh: the smallest multi-layer network."""
    return Mesh3D(2, 2, 2)


@pytest.fixture
def small_mesh() -> Mesh3D:
    """A 3x3x2 mesh used by most routing/simulation tests."""
    return Mesh3D(3, 3, 2)


@pytest.fixture
def paper_mesh() -> Mesh3D:
    """The paper's small configuration: 4x4x4."""
    return Mesh3D(4, 4, 4)


@pytest.fixture
def tiny_placement(tiny_mesh: Mesh3D) -> ElevatorPlacement:
    """One elevator at column (0, 0) on the 2x2x2 mesh."""
    return ElevatorPlacement(tiny_mesh, [(0, 0)], name="tiny")


@pytest.fixture
def small_placement(small_mesh: Mesh3D) -> ElevatorPlacement:
    """Two elevators on the 3x3x2 mesh."""
    return ElevatorPlacement(small_mesh, [(0, 0), (2, 2)], name="small")


@pytest.fixture
def ps1_placement() -> ElevatorPlacement:
    """The paper's PS1 placement (three elevators, 4x4x4)."""
    return standard_placement("PS1")


@pytest.fixture
def small_network(small_placement: ElevatorPlacement) -> Network:
    """A small network with Elevator-First selection."""
    return Network(small_placement, ElevatorFirstPolicy(small_placement))


@pytest.fixture
def uniform_traffic(small_mesh: Mesh3D) -> UniformTraffic:
    """Uniform traffic on the small mesh."""
    return UniformTraffic(small_mesh, seed=7)


@pytest.fixture
def energy_model() -> EnergyModel:
    """Default energy model."""
    return EnergyModel()


@pytest.fixture(autouse=True)
def _clear_offline_cache():
    """Keep AdEle's offline-design cache from leaking between tests."""
    clear_design_cache()
    yield
    clear_design_cache()
