"""End-to-end acceptance: user-registered components run everywhere by name.

A policy and a traffic pattern registered with one decorator each must run
through :class:`~repro.exec.batch.ExperimentBatch` (serial == 4 workers ==
warm disk cache, bit-identical) and through the CLI -- referenced purely by
name, with zero changes to runner internals.
"""

from __future__ import annotations

import textwrap
import warnings

import pytest

from repro.api import (
    ExperimentSpec,
    PlacementSpec,
    PolicySpec,
    SimSpec,
    TrafficSpec,
    register_pattern,
    register_policy,
    run_specs,
)
from repro.exec.batch import ExperimentBatch
from repro.exec.cache import ResultCache
from repro.exec.cli import main as cli_main
from repro.routing.base import POLICY_REGISTRY, ElevatorSelectionPolicy
from repro.traffic.patterns import PATTERN_REGISTRY, TrafficPattern, UniformTraffic


@register_policy(
    "farthest_e2e", description="farthest healthy elevator (test policy)"
)
class FarthestElevatorPolicy(ElevatorSelectionPolicy):
    """Deterministically picks the elevator farthest from the source."""

    name = "farthest_e2e"

    def _select(self, source, destination, network, cycle):
        coord = self.mesh.coordinate(source)
        return max(
            self.placement.healthy_elevators(),
            key=lambda e: (abs(coord.x - e.x) + abs(coord.y - e.y), -e.index),
        )


@register_pattern("ring_e2e", description="node i sends to node i+1 (test pattern)")
class RingTraffic(TrafficPattern):
    """Deterministic ring: node ``i`` always targets ``(i + 1) % N``."""

    name = "ring_e2e"

    def destination(self, source: int) -> int:
        return (source + 1) % self.mesh.num_nodes

    def traffic_matrix(self):
        n = self.mesh.num_nodes
        return {(src, (src + 1) % n): 1.0 for src in range(n)}


def _spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        placement=PlacementSpec(name="e2e", mesh=(2, 2, 2), columns=((0, 0), (1, 1))),
        policy=PolicySpec(name="farthest_e2e"),
        traffic=TrafficSpec(pattern="ring_e2e", injection_rate=0.05),
        sim=SimSpec(warmup_cycles=20, measurement_cycles=120, drain_cycles=150, seed=5),
    )
    return spec.with_(**overrides) if overrides else spec


class TestCustomComponentsThroughTheEngine:
    def test_registered_by_this_module(self):
        assert "farthest_e2e" in POLICY_REGISTRY
        assert "ring_e2e" in PATTERN_REGISTRY

    def test_spec_round_trips_and_hashes(self):
        spec = _spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_serial_parallel_and_warm_cache_are_bit_identical(self, tmp_path):
        grid = [
            _spec(injection_rate=rate, policy=policy)
            for rate in (0.02, 0.05)
            for policy in ("farthest_e2e", "elevator_first")
        ]
        serial = ExperimentBatch(grid, workers=1)
        serial_rows = [o.summary for o in serial.run()]
        assert serial.last_executed == len(grid)
        assert all(row["average_latency"] > 0 for row in serial_rows)

        parallel = ExperimentBatch(grid, workers=4)
        parallel_rows = [o.summary for o in parallel.run()]
        assert serial_rows == parallel_rows  # bit-identical, not approximate

        cold = ExperimentBatch(grid, workers=1, result_cache=ResultCache(str(tmp_path)))
        cold_rows = [o.summary for o in cold.run()]
        warm = ExperimentBatch(grid, workers=4, result_cache=ResultCache(str(tmp_path)))
        warm_outcomes = warm.run()
        assert warm.last_executed == 0
        assert all(o.from_cache for o in warm_outcomes)
        assert cold_rows == [o.summary for o in warm_outcomes]
        assert cold_rows == serial_rows

    def test_custom_policy_mixes_with_adele_in_one_batch(self, tmp_path):
        from repro.analysis import runner
        from repro.core.amosa import AmosaConfig

        tiny = AmosaConfig(
            initial_temperature=5.0, final_temperature=0.5, cooling_rate=0.6,
            iterations_per_temperature=10, hard_limit=6, soft_limit=12,
            initial_solutions=3, seed=2,
        )
        previous = runner.DEFAULT_OFFLINE_AMOSA
        runner.DEFAULT_OFFLINE_AMOSA = tiny
        try:
            grid = [
                _spec(policy=PolicySpec(name="adele", options={"max_subset_size": 2})),
                _spec(policy="farthest_e2e"),
            ]
            outcomes = run_specs(grid, workers=1, cache_dir=str(tmp_path))
            assert [o.spec.policy.name for o in outcomes] == ["adele", "farthest_e2e"]
            assert all(o.summary["average_latency"] > 0 for o in outcomes)
        finally:
            runner.DEFAULT_OFFLINE_AMOSA = previous

    def test_run_specs_with_base_seed_is_reproducible(self):
        grid = [_spec(injection_rate=rate) for rate in (0.02, 0.05)]
        first = run_specs(grid, base_seed=7)
        second = run_specs(grid, base_seed=7)
        assert [o.summary for o in first] == [o.summary for o in second]
        assert [o.spec.sim.seed for o in first] == [o.spec.sim.seed for o in second]

    def test_no_deprecation_warnings_from_the_custom_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_specs([_spec()])

    def test_duplicate_specs_report_consistent_cache_flags(self):
        spec = _spec()
        batch = ExperimentBatch([spec, spec])
        outcomes = batch.run()
        # One simulation ran; exactly one outcome claims it, the duplicate
        # is flagged as served from cache, and the counters add up.
        assert batch.last_executed == 1
        assert batch.last_cached == 1
        assert [o.from_cache for o in outcomes] == [False, True]
        assert outcomes[0].summary == outcomes[1].summary

    def test_plugins_are_imported_in_workers(self, tmp_path, monkeypatch):
        # The registration side effect must happen inside the worker too
        # (guards the spawn/forkserver path, where registries are not
        # inherited); the sentinel file is written at import time.
        sentinel = tmp_path / "imported.txt"
        plugin = tmp_path / "worker_plugin_mod.py"
        plugin.write_text(
            "import pathlib\n"
            f"pathlib.Path({str(sentinel)!r}).write_text('yes')\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        grid = [_spec(injection_rate=rate) for rate in (0.02, 0.05)]
        run_specs(grid, workers=2, plugins=("worker_plugin_mod",))
        assert sentinel.read_text() == "yes"


class TestCustomComponentsThroughTheCLI:
    def test_sweep_by_name(self, capsys):
        exit_code = cli_main(
            [
                "sweep", "--mesh", "2", "2", "2", "--elevators", "0,0;1,1",
                "--policies", "farthest_e2e,elevator_first",
                "--traffic", "ring_e2e", "--rates", "0.02,0.05",
                "--warmup", "10", "--measure", "60", "--drain", "60",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "farthest_e2e" in out
        assert "4 simulated" in out

    def test_compare_by_name(self, capsys):
        exit_code = cli_main(
            [
                "compare", "--mesh", "2", "2", "2", "--elevators", "0,0;1,1",
                "--policies", "elevator_first,farthest_e2e",
                "--traffic", "ring_e2e", "--rate", "0.05",
                "--warmup", "10", "--measure", "60", "--drain", "60",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "farthest_e2e" in out and "average_latency" in out

    def test_list_shows_custom_components(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "farthest_e2e" in out
        assert "ring_e2e" in out
        assert "policies:" in out and "placements:" in out

    def test_run_spec_file(self, tmp_path, capsys):
        import json

        spec_file = tmp_path / "specs.json"
        spec_file.write_text(
            json.dumps([_spec().to_dict(), _spec(injection_rate=0.02).to_dict()])
        )
        exit_code = cli_main(
            ["run", "--spec", str(spec_file), "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("farthest_e2e") == 2
        assert "2 simulated" in out

        # Warm re-run: zero simulations, identical table.
        assert cli_main(["run", "--spec", str(spec_file),
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        warm_out = capsys.readouterr().out
        assert "0 simulated, 2 served from cache" in warm_out

        # Identical table modulo the engine's own status lines (which carry
        # nondeterministic timings), same filter the CI smoke diffs use.
        def _table(text: str):
            return [
                line for line in text.splitlines()
                if not line.startswith("[repro.exec]")
            ]

        assert _table(warm_out) == _table(out)

    def test_run_rejects_bad_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 1, "polcy": {}}')
        with pytest.raises(SystemExit, match="unknown experiment spec field"):
            cli_main(["run", "--spec", str(bad)])

    def test_plugin_flag_imports_and_registers(self, tmp_path, monkeypatch, capsys):
        plugin = tmp_path / "e2e_plugin_mod.py"
        plugin.write_text(
            textwrap.dedent(
                '''
                from repro.api import register_policy
                from repro.routing.base import ElevatorSelectionPolicy

                @register_policy("plugin_nearest", description="plugin test policy")
                class PluginNearest(ElevatorSelectionPolicy):
                    name = "plugin_nearest"

                    def _select(self, source, destination, network, cycle):
                        return self.placement.nearest_elevator(source)
                '''
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            assert cli_main(["list", "--plugin", "e2e_plugin_mod"]) == 0
            assert "plugin_nearest" in capsys.readouterr().out
            assert cli_main(
                [
                    "sweep", "--plugin", "e2e_plugin_mod",
                    "--mesh", "2", "2", "2", "--elevators", "0,0",
                    "--policies", "plugin_nearest", "--rates", "0.05",
                    "--warmup", "5", "--measure", "40", "--drain", "40",
                ]
            ) == 0
            assert "plugin_nearest" in capsys.readouterr().out
        finally:
            POLICY_REGISTRY.unregister("plugin_nearest")

    def test_plugin_import_failure_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="cannot import --plugin"):
            cli_main(["list", "--plugin", "definitely_not_a_module_xyz"])

    def test_elevators_without_mesh_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--elevators requires --mesh"):
            cli_main(["sweep", "--elevators", "0,0", "--rates", "0.01"])


class TestTrafficOptionsThroughSpecs:
    def test_pattern_options_flow_to_the_constructor(self):
        spec = _spec(
            traffic=TrafficSpec(
                pattern="hotspot", injection_rate=0.05,
                options={"hotspot_fraction": 0.9},
            )
        )
        placement = spec.placement.resolve()
        pattern = spec.traffic.build(placement, seed=3)
        assert pattern.hotspot_fraction == 0.9

    def test_application_traffic_rejects_options(self):
        spec = TrafficSpec(pattern="fft", options={"x": 1})
        placement = PlacementSpec(name="PS1").resolve()
        with pytest.raises(ValueError, match="accepts no options"):
            spec.build(placement)

    def test_unknown_traffic_lists_both_registries(self):
        placement = PlacementSpec(name="PS1").resolve()
        with pytest.raises(ValueError) as excinfo:
            TrafficSpec(pattern="nope").build(placement)
        message = str(excinfo.value)
        assert "uniform" in message and "fft" in message

    def test_uniform_spec_matches_direct_construction(self):
        # The registry path must build the exact same pattern objects the
        # direct constructors produce (same RNG seeding).
        spec = _spec(traffic="uniform")
        placement = spec.placement.resolve()
        via_spec = spec.traffic.build(placement, seed=9)
        direct = UniformTraffic(placement.mesh, seed=9)
        assert [via_spec.destination(0) for _ in range(20)] == [
            direct.destination(0) for _ in range(20)
        ]
