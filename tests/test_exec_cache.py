"""Property-style tests for canonical config hashing and the caches.

Covers the cache-key contract (order-insensitive canonicalization, JSON
round-trips, no collisions on the benchmark grid), the injectable
:class:`~repro.analysis.runner.DesignCache` that replaced the old
module-global dict, and the disk persistence of results and designs.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import runner
from repro.analysis.runner import (
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    build_policy,
)
from repro.core.amosa import AmosaConfig
from repro.exec.cache import (
    DiskDesignCache,
    ResultCache,
    canonical_json,
    config_from_canonical,
    config_key,
    derive_seed,
    SEED_SPACE,
)
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D

TINY_AMOSA = AmosaConfig(
    initial_temperature=5.0,
    final_temperature=0.5,
    cooling_rate=0.6,
    iterations_per_temperature=10,
    hard_limit=6,
    soft_limit=12,
    initial_solutions=3,
    seed=2,
)


def _tiny_placement(name="cache-tiny", columns=((0, 0), (1, 1))):
    return ElevatorPlacement(Mesh3D(2, 2, 2), list(columns), name=name)


# ---------------------------------------------------------------------- #
# Canonicalization properties
# ---------------------------------------------------------------------- #
class TestCanonicalization:
    def test_keyword_order_is_irrelevant(self):
        a = ExperimentConfig(policy="cda", traffic="shuffle", injection_rate=0.003)
        b = ExperimentConfig(injection_rate=0.003, traffic="shuffle", policy="cda")
        assert canonical_json(a) == canonical_json(b)
        assert config_key(a) == config_key(b)

    def test_canonical_json_sorts_keys(self):
        blob = canonical_json(ExperimentConfig())
        keys = list(json.loads(blob))
        assert keys == sorted(keys)

    def test_round_trips_through_json(self):
        config = ExperimentConfig(
            placement="PS2", policy="adele_rr", traffic="fft",
            injection_rate=0.004, seed=11, adele_max_subset_size=None,
        )
        rebuilt = config_from_canonical(json.loads(canonical_json(config)))
        assert rebuilt == config
        assert config_key(rebuilt) == config_key(config)

    def test_round_trip_preserves_custom_placements(self):
        placement = _tiny_placement()
        config = ExperimentConfig(placement="cache-tiny", placement_obj=placement)
        rebuilt = config_from_canonical(json.loads(canonical_json(config)))
        assert rebuilt.placement_obj is not None
        assert rebuilt.placement_obj.name == placement.name
        assert rebuilt.placement_obj.columns() == placement.columns()
        assert rebuilt.placement_obj.mesh.shape == placement.mesh.shape
        assert config_key(rebuilt) == config_key(config)

    def test_every_field_feeds_the_key(self):
        base = ExperimentConfig()
        variants = [
            base.with_(placement="PS2"),
            base.with_(policy="cda"),
            base.with_(traffic="shuffle"),
            base.with_(injection_rate=0.0041),
            base.with_(warmup_cycles=301),
            base.with_(measurement_cycles=1501),
            base.with_(drain_cycles=801),
            base.with_(buffer_depth=5),
            base.with_(min_packet_length=11),
            base.with_(max_packet_length=31),
            base.with_(seed=1),
            base.with_(adele_max_subset_size=3),
            base.with_(adele_low_traffic_threshold=0.3),
        ]
        keys = {config_key(base)} | {config_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_custom_placements_with_the_same_name_do_not_collide(self):
        config_a = ExperimentConfig(
            placement="dup", placement_obj=_tiny_placement("dup", ((0, 0),))
        )
        config_b = ExperimentConfig(
            placement="dup", placement_obj=_tiny_placement("dup", ((1, 1),))
        )
        assert config_key(config_a) != config_key(config_b)

    def test_no_collisions_on_the_benchmark_grid(self):
        # The happy-path grid the benchmarks sweep: every (placement, policy,
        # traffic, rate) combination must map to a distinct cache key.
        configs = [
            ExperimentConfig(
                placement=placement, policy=policy, traffic=traffic,
                injection_rate=rate, seed=1,
            )
            for placement in ("PS1", "PS2", "PS3", "PM")
            for policy in ("elevator_first", "cda", "adele", "adele_rr")
            for traffic in ("uniform", "shuffle")
            for rate in (0.001, 0.003, 0.005)
        ]
        keys = [config_key(config) for config in configs]
        assert len(set(keys)) == len(configs)


class TestKeyExtras:
    def test_energy_model_feeds_the_result_cache_key(self, tmp_path):
        from repro.energy.model import EnergyModel
        from repro.exec.batch import ExperimentBatch

        config = ExperimentConfig(
            placement="cache-tiny", placement_obj=_tiny_placement(),
            policy="elevator_first", injection_rate=0.05,
            warmup_cycles=10, measurement_cycles=80, drain_cycles=80,
        )
        cache = ResultCache(str(tmp_path))
        default_run = ExperimentBatch([config], result_cache=cache)
        default_run.run()

        # A different energy model must not be served the default model's row.
        custom = EnergyModel(router_energy_per_bit=2e-12)
        custom_run = ExperimentBatch([config], result_cache=cache, energy_model=custom)
        custom_outcomes = custom_run.run()
        assert custom_run.last_executed == 1
        assert not custom_outcomes[0].from_cache

        # Passing the default model explicitly and passing None share keys.
        explicit_run = ExperimentBatch(
            [config], result_cache=cache, energy_model=EnergyModel()
        )
        explicit_outcomes = explicit_run.run()
        assert explicit_run.last_executed == 0
        assert explicit_outcomes[0].from_cache


class TestDerivedSeeds:
    def test_range_and_determinism(self):
        config = ExperimentConfig(policy="cda")
        seed = derive_seed(config, 3)
        assert 0 <= seed < SEED_SPACE
        assert seed == derive_seed(config, 3)

    def test_varies_with_config_and_base_seed(self):
        config = ExperimentConfig(policy="cda")
        assert derive_seed(config, 3) != derive_seed(config, 4)
        assert derive_seed(config, 3) != derive_seed(config.with_(policy="adele"), 3)


# ---------------------------------------------------------------------- #
# Result cache
# ---------------------------------------------------------------------- #
class TestResultCache:
    def test_memory_round_trip_and_isolation(self):
        cache = ResultCache()
        summary = {"average_latency": 12.5, "delivery_ratio": 1.0}
        cache.put("k", None, summary)
        loaded = cache.get("k")
        assert loaded == summary
        loaded["average_latency"] = -1.0  # mutating the copy must not leak
        assert cache.get("k") == summary

    def test_disk_round_trip_preserves_infinities(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        summary = {"average_latency": float("inf"), "delivery_ratio": 0.0}
        cache.put("sat", {"policy": "cda"}, summary)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get("sat") == summary
        assert fresh.get("sat")["average_latency"] == float("inf")

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("a", None, {"x": 1.0})
        cache.put("b", None, {"x": 2.0})
        assert len(cache) == 2
        assert "a" in cache and "missing" not in cache
        cache.clear()
        assert len(cache) == 0
        assert ResultCache(str(tmp_path)).get("a") is None


# ---------------------------------------------------------------------- #
# Design cache (the fixed module-global)
# ---------------------------------------------------------------------- #
class TestDesignCache:
    def test_different_max_subset_size_never_shares_designs(self):
        # Regression: the old module-global dict was keyed loosely enough
        # that offline settings could collide; two sweeps with different
        # subset-size caps must produce two distinct cached designs.
        placement = _tiny_placement()
        cache = DesignCache()
        design_1 = adele_design_for(
            placement, max_subset_size=1, amosa_config=TINY_AMOSA, cache=cache
        )
        design_2 = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=cache
        )
        assert len(cache) == 2
        assert design_1 is not design_2
        assert max(len(s) for s in design_1.selected_subsets().values()) <= 1

    def test_build_policy_respects_subset_cap_via_cache(self, monkeypatch):
        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement = _tiny_placement()
        cache = DesignCache()
        config = ExperimentConfig(
            placement="cache-tiny", placement_obj=placement, policy="adele"
        )
        policy_1 = build_policy(
            config.with_(adele_max_subset_size=1), placement, design_cache=cache
        )
        build_policy(
            config.with_(adele_max_subset_size=2), placement, design_cache=cache
        )
        assert len(cache) == 2
        nodes = placement.mesh.nodes()
        assert max(len(policy_1.subset_indices(node)) for node in nodes) <= 1

    def test_amosa_settings_feed_the_key(self):
        placement = _tiny_placement()
        cache = DesignCache()
        other_amosa = AmosaConfig(
            initial_temperature=5.0, final_temperature=0.5, cooling_rate=0.6,
            iterations_per_temperature=10, hard_limit=6, soft_limit=12,
            initial_solutions=3, seed=3,
        )
        adele_design_for(placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=cache)
        adele_design_for(placement, max_subset_size=2, amosa_config=other_amosa, cache=cache)
        assert len(cache) == 2

    def test_injected_caches_are_isolated_and_clearable(self):
        placement = _tiny_placement()
        cache_a, cache_b = DesignCache(), DesignCache()
        design = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=cache_a
        )
        assert len(cache_a) == 1 and len(cache_b) == 0
        again = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=cache_a
        )
        assert again is design
        cache_a.clear()
        assert len(cache_a) == 0

    def test_disk_design_cache_survives_processes(self, tmp_path, monkeypatch):
        placement = _tiny_placement()
        warm = DiskDesignCache(str(tmp_path))
        original = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=warm
        )

        # A fresh cache over the same directory must reload the design from
        # disk without ever invoking the AMOSA stage again.
        def _fail(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("offline optimization re-ran on a warm cache")

        monkeypatch.setattr(runner, "optimize_elevator_subsets", _fail)
        fresh = DiskDesignCache(str(tmp_path))
        reloaded = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=fresh
        )
        assert reloaded.selected_subsets() == original.selected_subsets()
        assert reloaded.pareto_points() == original.pareto_points()
        assert reloaded.baseline_objectives == pytest.approx(
            original.baseline_objectives
        )
        assert [e.objectives for e in reloaded.representatives] == [
            e.objectives for e in original.representatives
        ]

    def test_explicit_traffic_matrix_never_aliases_the_uniform_design(self, tmp_path):
        # An explicitly supplied matrix is keyed by content, so it neither
        # reuses the label-only "uniform" entry nor gets persisted as the
        # canonical uniform design by disk caches.
        placement = _tiny_placement()
        mesh = placement.mesh
        hotspot = {
            (src, dst): (4.0 if dst == 0 else 0.1)
            for src in mesh.nodes()
            for dst in mesh.nodes()
            if src != dst
        }
        cache = DiskDesignCache(str(tmp_path))
        adele_design_for(
            placement, traffic_matrix=hotspot, max_subset_size=2,
            amosa_config=TINY_AMOSA, cache=cache,
        )
        uniform = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=cache
        )
        assert len(cache) == 2

        # A fresh disk cache must serve the genuine uniform design for the
        # plain label, not the hotspot-optimized one.
        fresh = DiskDesignCache(str(tmp_path))
        reloaded = adele_design_for(
            placement, max_subset_size=2, amosa_config=TINY_AMOSA, cache=fresh
        )
        assert reloaded.selected_subsets() == uniform.selected_subsets()

    def test_default_cache_is_swappable(self):
        previous = runner.get_design_cache()
        replacement = DesignCache()
        try:
            assert runner.set_design_cache(replacement) is previous
            assert runner.get_design_cache() is replacement
        finally:
            runner.set_design_cache(previous)
