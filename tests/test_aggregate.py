"""Streaming aggregation: running Pareto front, bounded sketches.

The front must be a pure function of the *set* of offered points (shard
arrival order cannot change it), and the aggregator's state must stay
bounded -- that is what makes streaming a mega-grid O(chunk) resident rows
instead of O(grid).
"""

from __future__ import annotations

import random

import pytest

from repro.exec.aggregate import ParetoFront, StreamingAggregator
from repro.sim.stats import LatencyReservoir


def _brute_force_front(points):
    """Reference nondominated set: keep ties, drop dominated points."""
    def dominates(a, b):
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    unique = set(points)
    return {
        (key, objectives)
        for key, objectives in unique
        if not any(
            dominates(other, objectives)
            for _, other in unique
            if other != objectives
        )
    }


def _random_points(rng, count):
    return [
        (f"k{index}", (rng.randint(0, 6) / 2.0, rng.randint(0, 6) / 2.0))
        for index in range(count)
    ]


class TestParetoFront:
    def test_matches_brute_force(self):
        rng = random.Random(11)
        for _ in range(25):
            points = _random_points(rng, rng.randint(1, 30))
            front = ParetoFront()
            for key, objectives in points:
                front.add(key, objectives)
            assert {
                (p.key, p.objectives) for p in front.points()
            } == _brute_force_front(points)

    def test_order_independent(self):
        rng = random.Random(5)
        points = _random_points(rng, 40)
        reference = None
        for trial in range(10):
            shuffled = list(points)
            rng.shuffle(shuffled)
            front = ParetoFront()
            for key, objectives in shuffled:
                front.add(key, objectives)
            snapshot = [(p.key, p.objectives) for p in front.points()]
            if reference is None:
                reference = snapshot
            assert snapshot == reference

    def test_exact_duplicates_ignored(self):
        front = ParetoFront()
        assert front.add("a", (1.0, 2.0))
        assert not front.add("a", (1.0, 2.0))
        assert len(front) == 1

    def test_ties_kept(self):
        front = ParetoFront()
        front.add("a", (1.0, 2.0))
        front.add("b", (2.0, 1.0))
        front.add("c", (1.0, 2.0))  # same objectives, different key: a tie
        assert len(front) == 3


class TestStreamingAggregator:
    def _row(self, latency, throughput=0.5, **extra):
        row = {
            "average_latency": latency,
            "throughput": throughput,
            "packets_created": 10,
            "packets_delivered": 9,
        }
        row.update(extra)
        return row

    def test_counters_and_latency_sketch(self):
        aggregator = StreamingAggregator()
        aggregator.observe_row("a", self._row(10.0), from_cache=False)
        aggregator.observe_row("b", self._row(20.0), from_cache=True)
        assert aggregator.rows == 2
        assert aggregator.executed == 1 and aggregator.cached == 1
        assert aggregator.packets_created == 20
        summary = aggregator.summary()
        assert summary["latency"]["count"] == 2
        assert summary["latency"]["exact"] is True
        assert summary["latency"]["mean"] == pytest.approx(15.0)

    def test_saturated_rows_counted_not_sketched(self):
        aggregator = StreamingAggregator()
        aggregator.observe_row("a", self._row(float("inf"), throughput=0.0))
        assert aggregator.saturated_rows == 1
        assert aggregator.summary()["latency"]["count"] == 0
        # Infinite latency cannot join the front either.
        assert aggregator.summary()["pareto"]["skipped_rows"] == 1

    def test_maximized_objective_sign_flip(self):
        aggregator = StreamingAggregator(
            objectives=("average_latency", "-throughput")
        )
        aggregator.observe_row("slow", self._row(20.0, throughput=0.9))
        aggregator.observe_row("fast", self._row(10.0, throughput=0.9))
        front = aggregator.summary()["pareto"]
        assert front["size"] == 1
        point = front["points"][0]
        assert point["key"] == "fast"
        # Reported objectives are un-flipped (user-facing values) and keyed
        # by the bare metric name; the "-" marker lives in front.objectives.
        assert front["objectives"] == ["average_latency", "-throughput"]
        assert point["objectives"]["throughput"] == pytest.approx(0.9)

    def test_missing_objective_skips_front_only(self):
        aggregator = StreamingAggregator(
            objectives=("average_latency", "energy_per_flit")
        )
        aggregator.observe_row("a", self._row(10.0))  # no energy metric
        assert aggregator.rows == 1
        assert aggregator.summary()["pareto"]["skipped_rows"] == 1

    def test_per_phase_sketches(self):
        aggregator = StreamingAggregator()
        aggregator.observe_row("a", self._row(10.0, phases=[
            {"label": "burst", "average_latency": 12.0},
            {"label": "idle", "average_latency": 4.0},
        ]))
        aggregator.observe_row("b", self._row(11.0, phases=[
            {"label": "burst", "average_latency": 14.0},
            {"label": "idle", "average_latency": float("inf")},
        ]))
        phases = aggregator.summary()["phases"]
        assert phases["burst"]["count"] == 2
        assert phases["burst"]["mean"] == pytest.approx(13.0)
        assert phases["idle"]["count"] == 1  # saturated window not sketched

    def test_shard_order_independence(self):
        rows = [
            (f"k{i}", self._row(10.0 + i % 7, throughput=0.1 * (i % 5 + 1)))
            for i in range(30)
        ]
        rng = random.Random(3)
        reference = None
        for _ in range(5):
            shuffled = list(rows)
            rng.shuffle(shuffled)
            aggregator = StreamingAggregator()
            for key, row in shuffled:
                aggregator.observe_row(key, row)
            front = aggregator.summary()["pareto"]["points"]
            totals = (
                aggregator.rows,
                aggregator.packets_created,
                aggregator.latency.total,
            )
            if reference is None:
                reference = (front, totals)
            assert (front, totals) == reference

    def test_rejects_empty_objectives(self):
        with pytest.raises(ValueError):
            StreamingAggregator(objectives=())


class TestLatencyReservoir:
    def test_exact_until_capacity(self):
        reservoir = LatencyReservoir(capacity=8)
        for value in range(5):
            reservoir.observe(float(value))
        assert reservoir.exact
        assert reservoir.count == 5
        assert reservoir.mean == pytest.approx(2.0)
        assert reservoir.percentile(50) == pytest.approx(2.0)

    def test_bounded_past_capacity(self):
        reservoir = LatencyReservoir(capacity=8)
        for value in range(100):
            reservoir.observe(float(value))
        assert not reservoir.exact
        assert len(reservoir.latencies) == 8
        assert reservoir.count == 100
        assert reservoir.mean == pytest.approx(49.5)  # total stays exact

    def test_merge_from_is_exact_under_capacity(self):
        a = LatencyReservoir(capacity=32)
        b = LatencyReservoir(capacity=32)
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0):
            b.observe(value)
        a.merge_from(b)
        assert a.count == 5
        assert a.exact
        assert sorted(a.latencies) == [1.0, 2.0, 3.0, 10.0, 20.0]

    def test_empty_summary(self):
        summary = LatencyReservoir().to_summary()
        assert summary == {"count": 0, "exact": True}
