"""Tests for the SQLite-backed service store and its cache adapters.

Covers the schema-migration machinery, parity between the JSON and SQLite
cache backends (same keys, same entries -- including the ``Infinity``
round-trip saturated runs need), the JSON -> SQLite migration path, and a
multi-process stress test hammering one database from several writers.

The stress test is the guarantee the JSON backend explicitly does *not*
make: the JSON caches only promise atomic single-entry replacement (two
processes may duplicate work, and directory listings race writers), while
the SQLite store serializes concurrent writers via WAL + busy timeout.
"""

from __future__ import annotations

import json
import os
import sqlite3
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis.runner import design_for, design_key_for
from repro.exec.batch import key_extra_for
from repro.exec.cache import (
    DiskDesignCache,
    ResultCache,
    config_key,
    design_to_record,
    open_caches,
)
from repro.service.store import (
    DEFAULT_DB_FILENAME,
    SCHEMA_VERSION,
    SqliteDesignCache,
    SqliteResultCache,
    SqliteStore,
    migrate_json_cache,
)
from repro.spec import DesignSpec, ExperimentSpec, PlacementSpec, TrafficSpec


def _tiny_spec(rate: float = 0.002, policy: str = "elevator_first") -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="store-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
    ).with_(policy=policy)


def _tiny_design_spec() -> DesignSpec:
    return DesignSpec().with_(
        placement=PlacementSpec(
            name="store-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        optimizer="greedy-swap",
    )


@pytest.fixture
def store(tmp_path) -> SqliteStore:
    s = SqliteStore(str(tmp_path / DEFAULT_DB_FILENAME))
    yield s
    s.close()


# ---------------------------------------------------------------------- #
# Store basics
# ---------------------------------------------------------------------- #
class TestSqliteStore:
    def test_migrates_to_current_schema_version(self, store):
        version = store.query("PRAGMA user_version")[0][0]
        assert version == SCHEMA_VERSION

    def test_reopening_is_idempotent(self, tmp_path):
        path = str(tmp_path / "db.sqlite3")
        SqliteStore(path).close()
        second = SqliteStore(path)
        assert second.query("PRAGMA user_version")[0][0] == SCHEMA_VERSION
        second.close()

    def test_rejects_memory_databases(self):
        with pytest.raises(ValueError, match=":memory:"):
            SqliteStore(":memory:")

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "db.sqlite3")
        store = SqliteStore(path)
        assert os.path.exists(path)
        store.close()

    def test_result_round_trip(self, store):
        store.put_result("k1", {"policy": "cda"}, {"average_latency": 12.5})
        assert store.get_result("k1") == {"average_latency": 12.5}
        assert store.get_result("missing") is None
        assert store.result_count() == 1

    def test_infinite_floats_round_trip(self, store):
        # Saturated runs carry infinite latencies; the store must not
        # corrupt them (same contract as the JSON backend).
        summary = {"average_latency": float("inf"), "throughput": 0.0}
        store.put_result("sat", None, summary)
        assert store.get_result("sat") == summary

    def test_design_record_round_trip(self, store):
        record = {"format": 2, "payload": [1, 2, 3]}
        store.put_design_record("h1", record)
        assert store.get_design_record("h1") == record
        assert store.get_design_record("other") is None

    def test_uses_wal_journal_mode(self, store):
        assert store.query("PRAGMA journal_mode")[0][0] == "wal"


# ---------------------------------------------------------------------- #
# Cache adapters: parity with the JSON backends
# ---------------------------------------------------------------------- #
class TestCacheAdapters:
    def test_result_cache_interface(self, store):
        cache = SqliteResultCache(store)
        key = config_key(_tiny_spec(), extra=key_extra_for(None))
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, None, {"average_latency": 3.0})
        assert key in cache
        assert cache.get(key) == {"average_latency": 3.0}
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_result_cache_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db.sqlite3")
        store = SqliteStore(path)
        SqliteResultCache(store).put("k", None, {"average_latency": 1.0})
        store.close()
        reopened = SqliteStore(path)
        assert SqliteResultCache(reopened).get("k") == {"average_latency": 1.0}
        reopened.close()

    def test_design_cache_round_trips_designs(self, store):
        spec = _tiny_design_spec()
        cache = SqliteDesignCache(store)
        design = design_for(spec, cache=cache)
        assert store.design_count() == 1
        # A fresh adapter over the same database must rebuild the design.
        rebuilt_cache = SqliteDesignCache(store)
        rebuilt = rebuilt_cache.get(design_key_for(spec))
        assert rebuilt is not None
        key = design_key_for(spec)
        assert design_to_record(key, rebuilt) == design_to_record(key, design)

    def test_same_keys_as_json_backend(self, tmp_path, store):
        # The two backends must agree on identity: an entry written through
        # the JSON cache and migrated hits under the same key in SQLite.
        spec = _tiny_spec()
        key = config_key(spec, extra=key_extra_for(None))
        json_cache = ResultCache(str(tmp_path / "json"))
        json_cache.put(key, None, {"average_latency": 9.0})
        migrate_json_cache(str(tmp_path / "json"), store)
        assert SqliteResultCache(store).get(key) == {"average_latency": 9.0}

    def test_open_caches_backends(self, tmp_path):
        result_cache, design_cache = open_caches(str(tmp_path / "a"), "json")
        assert isinstance(result_cache, ResultCache)
        assert isinstance(design_cache, DiskDesignCache)
        result_cache, design_cache = open_caches(str(tmp_path / "b"), "sqlite")
        assert isinstance(result_cache, SqliteResultCache)
        assert isinstance(design_cache, SqliteDesignCache)
        design_cache.store.close()

    def test_open_caches_without_directory(self):
        result_cache, design_cache = open_caches(None)
        assert isinstance(result_cache, ResultCache)
        assert design_cache is None

    def test_open_caches_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            open_caches(str(tmp_path), "parquet")


# ---------------------------------------------------------------------- #
# JSON -> SQLite migration
# ---------------------------------------------------------------------- #
class TestMigration:
    def test_migrates_results_and_designs(self, tmp_path, store):
        cache_dir = str(tmp_path / "json")
        json_results = ResultCache(cache_dir)
        json_results.put("aaa", {"policy": "cda"}, {"average_latency": 1.0})
        json_results.put("bbb", None, {"average_latency": float("inf")})
        spec = _tiny_design_spec()
        json_designs = DiskDesignCache(cache_dir)
        design_for(spec, cache=json_designs)

        counts = migrate_json_cache(cache_dir, store)
        assert counts == {"results": 2, "designs": 1, "skipped": 0}
        assert store.get_result("bbb") == {"average_latency": float("inf")}
        assert SqliteDesignCache(store).get(design_key_for(spec)) is not None

    def test_migration_is_idempotent(self, tmp_path, store):
        cache_dir = str(tmp_path / "json")
        ResultCache(cache_dir).put("k", None, {"average_latency": 2.0})
        assert migrate_json_cache(cache_dir, store)["results"] == 1
        again = migrate_json_cache(cache_dir, store)
        assert again == {"results": 0, "designs": 0, "skipped": 0}

    def test_skips_unreadable_and_foreign_records(self, tmp_path, store):
        cache_dir = tmp_path / "json"
        cache_dir.mkdir()
        (cache_dir / "result-bad.json").write_text("{not json")
        (cache_dir / "result-odd.json").write_text(json.dumps({"summary": 3}))
        (cache_dir / "design-old.json").write_text(json.dumps({"format": 1}))
        counts = migrate_json_cache(str(cache_dir), store)
        assert counts["results"] == 0 and counts["designs"] == 0
        # format-1 designs and non-dict summaries are counted as skipped;
        # unparseable files are silently ignored like the JSON readers do.
        assert counts["skipped"] == 2

    def test_missing_directory_is_empty_migration(self, tmp_path, store):
        counts = migrate_json_cache(str(tmp_path / "nope"), store)
        assert counts == {"results": 0, "designs": 0, "skipped": 0}


# ---------------------------------------------------------------------- #
# Multi-process stress
# ---------------------------------------------------------------------- #
def _hammer(args):
    """Write (and read back) a block of result rows from one process."""
    path, worker, count = args
    store = SqliteStore(path)
    try:
        for i in range(count):
            key = f"w{worker}-k{i}"
            store.put_result(key, None, {"average_latency": float(i)})
            shared = f"shared-{i % 10}"
            store.put_result(shared, None, {"average_latency": float(i % 10)})
            assert store.get_result(key) == {"average_latency": float(i)}
        return store.result_count()
    finally:
        store.close()


class TestMultiProcessStress:
    def test_concurrent_writers_from_processes(self, tmp_path):
        """Several processes write the same database; nothing is lost.

        This is exactly the scenario the JSON backend does not guarantee
        (concurrent writers racing a directory); the SQLite store must
        survive it with every row intact.
        """
        path = str(tmp_path / "stress.sqlite3")
        SqliteStore(path).close()  # migrate once up front
        workers, per_worker = 4, 25
        with ProcessPoolExecutor(max_workers=workers) as pool:
            list(pool.map(_hammer, [(path, w, per_worker) for w in range(workers)]))
        store = SqliteStore(path)
        try:
            # workers * per_worker unique keys + 10 shared (overwritten) keys
            assert store.result_count() == workers * per_worker + 10
            for w in range(workers):
                for i in range(per_worker):
                    expected = {"average_latency": float(i)}
                    assert store.get_result(f"w{w}-k{i}") == expected
        finally:
            store.close()

    def test_concurrent_first_open_migrates_once(self, tmp_path):
        """Racing first-openers must not corrupt the migration."""
        path = str(tmp_path / "race.sqlite3")
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(_hammer, [(path, w, 5) for w in range(4)]))
        conn = sqlite3.connect(path)
        try:
            assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        finally:
            conn.close()
