"""Sharded mega-sweeps: partition, checkpoint/resume, merge, bit-identity.

The invariant every test here pins: running a grid as N deterministic
shards (each with its own cache directory) and merging the shard caches
produces a result set *byte-identical* to the cache an unsharded run
writes -- including after a shard is killed mid-grid and resumed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exec.aggregate import MergeConflict, StreamingAggregator, merge_results
from repro.exec.batch import ABORT_AFTER_CHUNKS_ENV, ChunkAbort, ExperimentBatch
from repro.exec.cache import ResultCache, cache_stats, config_key
from repro.exec.shard import (
    ShardSpec,
    parse_shard,
    partition,
    shard_cache_dir,
    shard_counts,
    shard_of,
)
from repro.spec import ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec


def _spec(rate: float, policy: str = "elevator_first") -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="shard-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
        sim=SimSpec(warmup_cycles=10, measurement_cycles=40, drain_cycles=40),
    ).with_(policy=policy)


def _grid(n_rates: int = 3):
    return [
        _spec(0.01 * (i + 1), policy)
        for policy in ("elevator_first", "cda")
        for i in range(n_rates)
    ]


def _cache_files(directory: str):
    return sorted(
        name for name in os.listdir(directory)
        if name.startswith("result-") or name.startswith("design-")
    )


def _read_bytes(directory: str, name: str) -> bytes:
    with open(os.path.join(directory, name), "rb") as handle:
        return handle.read()


# ---------------------------------------------------------------------- #
# Deterministic partitioning
# ---------------------------------------------------------------------- #
class TestShardSpec:
    def test_parse_roundtrip(self):
        spec = parse_shard("2/3")
        assert spec == ShardSpec(index=2, count=3)
        assert str(spec) == "2/3"

    @pytest.mark.parametrize("text", ["0/3", "4/3", "a/b", "3", "1/0", ""])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_partition_is_disjoint_and_complete(self):
        keys = [config_key(spec) for spec in _grid(5)]
        for n in (1, 2, 3, 7):
            slices = partition(keys, n)
            assert len(slices) == n
            flat = [key for piece in slices for key in piece]
            assert sorted(flat) == sorted(keys)
            for index, piece in enumerate(slices, start=1):
                shard = ShardSpec(index=index, count=n)
                assert all(shard.owns(key) for key in piece)

    def test_partition_is_order_insensitive(self):
        keys = [config_key(spec) for spec in _grid(4)]
        forward = [sorted(piece) for piece in partition(keys, 3)]
        backward = [
            sorted(piece) for piece in partition(list(reversed(keys)), 3)
        ]
        assert forward == backward
        counts = shard_counts(keys, 3)
        assert sum(counts.values()) == len(keys)
        assert set(counts) == {1, 2, 3}

    def test_shard_of_matches_owns(self):
        key = config_key(_spec(0.01))
        owner = shard_of(key, 4)
        for index in range(1, 5):
            assert ShardSpec(index=index, count=4).owns(key) == (
                owner == index - 1
            )

    def test_shard_cache_dir_is_per_shard(self, tmp_path):
        a = shard_cache_dir(str(tmp_path), ShardSpec(1, 3))
        b = shard_cache_dir(str(tmp_path), ShardSpec(2, 3))
        assert a != b and a.startswith(str(tmp_path))


# ---------------------------------------------------------------------- #
# Bit-identity: sharded + merged == unsharded
# ---------------------------------------------------------------------- #
class TestShardedBitIdentity:
    def test_union_of_shard_outcomes_matches_unsharded(self, tmp_path):
        grid = _grid()
        full = ExperimentBatch(grid, base_seed=7).run()
        by_key = {}
        for index in range(1, 4):
            shard = ShardSpec(index=index, count=3)
            outcomes = ExperimentBatch(grid, base_seed=7, shard=shard).run()
            for outcome in outcomes:
                by_key[outcome.key] = outcome.summary
        assert len(by_key) == len({o.key for o in full})
        for outcome in full:
            assert by_key[outcome.key] == outcome.summary

    def test_merged_shard_caches_are_byte_identical(self, tmp_path):
        grid = _grid()
        full_dir = str(tmp_path / "full")
        ExperimentBatch(
            grid, base_seed=7, result_cache=ResultCache(full_dir)
        ).run()

        shard_dirs = []
        for index in range(1, 4):
            shard = ShardSpec(index=index, count=3)
            directory = str(tmp_path / f"shard-{index}")
            shard_dirs.append(directory)
            ExperimentBatch(
                grid, base_seed=7, shard=shard,
                result_cache=ResultCache(directory),
            ).run()

        merged_dir = str(tmp_path / "merged")
        report = merge_results(shard_dirs, merged_dir)
        full_files = _cache_files(full_dir)
        assert report.results == sum(
            1 for name in full_files if name.startswith("result-")
        )
        assert _cache_files(merged_dir) == full_files
        for name in full_files:
            assert _read_bytes(merged_dir, name) == _read_bytes(full_dir, name)

    def test_merge_counts_duplicates_and_accepts_overlap(self, tmp_path):
        grid = _grid(2)
        a = str(tmp_path / "a")
        b = str(tmp_path / "b")
        ExperimentBatch(grid, base_seed=1, result_cache=ResultCache(a)).run()
        ExperimentBatch(grid, base_seed=1, result_cache=ResultCache(b)).run()
        report = merge_results([a, b], str(tmp_path / "out"))
        assert report.results == report.result_duplicates

    def test_merge_conflict_fails_loudly(self, tmp_path):
        key = "ab" * 32
        a = tmp_path / "a"
        b = tmp_path / "b"
        for directory, latency in ((a, 1.0), (b, 2.0)):
            directory.mkdir()
            (directory / f"result-{key}.json").write_text(json.dumps({
                "key": key, "config": None,
                "summary": {"average_latency": latency},
            }))
        with pytest.raises(MergeConflict):
            merge_results([str(a), str(b)], str(tmp_path / "out"))

    def test_merge_rejects_bogus_inputs(self, tmp_path):
        with pytest.raises(ValueError):
            merge_results([str(tmp_path / "missing")], str(tmp_path / "out"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            merge_results([str(empty)], str(tmp_path / "out"))

    def test_merge_from_json_document(self, tmp_path):
        grid = _grid(2)
        full_dir = str(tmp_path / "full")
        batch = ExperimentBatch(
            grid, base_seed=7, result_cache=ResultCache(full_dir)
        )
        outcomes = batch.run()
        document = {"outcomes": [
            {"key": o.key, "spec": o.spec.to_dict(), "summary": o.summary}
            for o in outcomes
        ]}
        doc_path = tmp_path / "run.json"
        doc_path.write_text(json.dumps(document))
        merged_dir = str(tmp_path / "merged")
        merge_results([str(doc_path)], merged_dir)
        for name in (n for n in _cache_files(full_dir) if n.startswith("result-")):
            assert _read_bytes(merged_dir, name) == _read_bytes(full_dir, name)


# ---------------------------------------------------------------------- #
# Chunked checkpointing: kill mid-grid, resume, stay bit-identical
# ---------------------------------------------------------------------- #
class TestChunkedCheckpointing:
    def test_abort_env_raises_after_first_chunk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ABORT_AFTER_CHUNKS_ENV, "1")
        batch = ExperimentBatch(
            _grid(), base_seed=7, chunk_size=1,
            result_cache=ResultCache(str(tmp_path / "cache")),
        )
        with pytest.raises(ChunkAbort):
            batch.run()
        flushed = _cache_files(str(tmp_path / "cache"))
        assert any(name.startswith("result-") for name in flushed)

    def test_killed_run_resumes_and_matches_unsharded(self, tmp_path, monkeypatch):
        grid = _grid()
        full_dir = str(tmp_path / "full")
        ExperimentBatch(
            grid, base_seed=7, result_cache=ResultCache(full_dir)
        ).run()

        cache_dir = str(tmp_path / "resume")
        monkeypatch.setenv(ABORT_AFTER_CHUNKS_ENV, "2")
        with pytest.raises(ChunkAbort):
            ExperimentBatch(
                grid, base_seed=7, chunk_size=1,
                result_cache=ResultCache(cache_dir),
            ).run()
        monkeypatch.delenv(ABORT_AFTER_CHUNKS_ENV)

        resumed = ExperimentBatch(
            grid, base_seed=7, chunk_size=1,
            result_cache=ResultCache(cache_dir),
        )
        outcomes = resumed.run()
        assert resumed.last_cached >= 2  # the pre-kill chunks were not redone
        assert len(outcomes) == len(grid)
        for name in (
            n for n in _cache_files(full_dir) if n.startswith("result-")
        ):
            assert _read_bytes(cache_dir, name) == _read_bytes(full_dir, name)

    def test_manifest_written_per_chunk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        batch = ExperimentBatch(
            _grid(2), base_seed=7, chunk_size=2,
            result_cache=ResultCache(cache_dir),
        )
        batch.run()
        manifests = [
            name for name in os.listdir(cache_dir)
            if name.startswith("manifest-")
        ]
        assert len(manifests) == 1
        with open(os.path.join(cache_dir, manifests[0])) as handle:
            manifest = json.load(handle)
        assert manifest["done"] == manifest["total"]
        assert manifest["chunk_size"] == 2
        assert batch.last_chunks == 2

    def test_peak_resident_rows_bounded_by_chunk(self, tmp_path):
        grid = _grid()
        aggregator = StreamingAggregator()
        batch = ExperimentBatch(
            grid, base_seed=7, chunk_size=2,
            result_cache=ResultCache(str(tmp_path / "cache")),
        )
        emitted = batch.run_streaming(aggregator.consume)
        assert emitted == len(grid)
        assert 0 < batch.last_peak_rows <= 2
        assert aggregator.rows == len(grid)


# ---------------------------------------------------------------------- #
# The CLI path end to end (subprocess, like a real kill/resume)
# ---------------------------------------------------------------------- #
class TestCliShardSmoke:
    def _cli(self, *args, env_extra=None, check=True):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if env_extra:
            env.update(env_extra)
        result = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, env=env,
        )
        if check:
            assert result.returncode == 0, result.stderr
        return result

    def test_sweep_shards_merge_to_byte_identical_cache(self, tmp_path):
        common = (
            "sweep", "--mesh", "2", "2", "2", "--elevators", "0,0;1,1",
            "--policies", "elevator_first,cda", "--rates", "0.01,0.02",
            "--warmup", "10", "--measure", "40", "--drain", "40",
            "--seed", "3",
        )
        full = str(tmp_path / "full")
        self._cli(*common, "--cache-dir", full)

        shard_dirs = []
        for k in (1, 2):
            directory = str(tmp_path / f"s{k}")
            shard_dirs.append(directory)
            kill = self._cli(
                *common, "--cache-dir", directory,
                "--shard", f"{k}/2", "--chunk-size", "1",
                env_extra={ABORT_AFTER_CHUNKS_ENV: "1"}, check=False,
            )
            # A shard with >1 owned spec dies mid-grid; one with <=1 spec
            # finishes before the abort threshold.
            if kill.returncode != 0:
                assert "ChunkAbort" in kill.stderr
            self._cli(
                *common, "--cache-dir", directory,
                "--shard", f"{k}/2", "--chunk-size", "1",
            )

        merged = str(tmp_path / "merged")
        self._cli("merge", "--into", merged, *shard_dirs)
        full_files = _cache_files(full)
        assert _cache_files(merged) == full_files
        for name in full_files:
            assert _read_bytes(merged, name) == _read_bytes(full, name)

        warm = self._cli(*common, "--cache-dir", merged)
        assert "0 simulated" in warm.stdout

        stats = cache_stats(merged)
        assert stats["results"] == sum(
            1 for n in full_files if n.startswith("result-")
        )

    def test_cache_stats_cli_json(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ExperimentBatch(
            _grid(1), base_seed=7, result_cache=ResultCache(cache_dir)
        ).run()
        result = self._cli(
            "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        document = json.loads(result.stdout)
        assert document["backend"] == "json"
        assert document["results"] == 2
        assert document["bytes"] > 0
