"""Tests for parallel offline-design batches (DesignBatch).

Pins the determinism contract mirrored from experiment batches: a design
grid produces bit-identical designs (compared in persisted record form)
whether it runs serially, over worker processes, or from a warm cache --
and per-design derived optimizer seeds depend only on the canonical design
key plus the batch-level base seed.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import DesignCache, design_key_for
from repro.exec.cache import design_to_record
from repro.exec.designs import DesignBatch, derive_design_seed, run_design_batch
from repro.spec import DesignSpec, PlacementSpec


def _design(columns=((0, 0), (1, 1)), optimizer="greedy-swap", **overrides):
    spec = DesignSpec().with_(
        placement=PlacementSpec(
            name="grid-tiny", mesh=(2, 2, 2), columns=tuple(columns)
        ),
        optimizer=optimizer,
    )
    return spec.with_(**overrides) if overrides else spec


def _records(outcomes):
    return [design_to_record(o.key, o.design) for o in outcomes]


class TestDerivedSeeds:
    def test_deterministic_and_key_dependent(self):
        a, b = _design(), _design(max_subset_size=1)
        assert derive_design_seed(a, 7) == derive_design_seed(a, 7)
        assert derive_design_seed(a, 7) != derive_design_seed(a, 8)
        assert derive_design_seed(a, 7) != derive_design_seed(b, 7)

    def test_ignores_the_spec_own_seed(self):
        # The spec's options["seed"] is replaced by the base seed before
        # hashing, so submission-time seeds don't split the derivation.
        a = _design(optimizer="random-search")
        b = a.with_(options={"seed": 123})
        assert derive_design_seed(a, 5) == derive_design_seed(b, 5)

    def test_effective_specs_carry_derived_seeds(self):
        batch = DesignBatch([_design()], base_seed=11)
        (effective,) = batch.effective_specs()
        assert effective.options["seed"] == derive_design_seed(_design(), 11)

    def test_without_base_seed_specs_are_untouched(self):
        spec = _design()
        batch = DesignBatch([spec])
        assert batch.effective_specs() == [spec]


class TestDesignBatch:
    def test_serial_equals_parallel_equals_warm_cache(self):
        specs = [_design(), _design(max_subset_size=1), _design()]
        serial = DesignBatch(specs, workers=1, base_seed=3).run()
        parallel = DesignBatch(specs, workers=2, base_seed=3).run()
        warm_cache = DesignCache()
        DesignBatch(specs, workers=1, cache=warm_cache, base_seed=3).run()
        warm = DesignBatch(specs, workers=1, cache=warm_cache, base_seed=3)
        warm_outcomes = warm.run()

        assert json.dumps(_records(serial), sort_keys=True) == json.dumps(
            _records(parallel), sort_keys=True
        )
        assert json.dumps(_records(serial), sort_keys=True) == json.dumps(
            _records(warm_outcomes), sort_keys=True
        )
        assert warm.last_executed == 0
        assert all(o.from_cache for o in warm_outcomes)

    def test_identical_specs_deduplicate(self):
        batch = DesignBatch([_design(), _design()])
        outcomes = batch.run()
        assert batch.last_executed == 1
        assert batch.last_cached == 1
        assert [o.from_cache for o in outcomes] == [False, True]
        assert outcomes[0].key == outcomes[1].key

    def test_outcomes_preserve_input_order(self):
        specs = [_design(max_subset_size=1), _design()]
        outcomes = DesignBatch(specs, workers=2).run()
        assert [o.key for o in outcomes] == [design_key_for(s) for s in specs]

    def test_populates_the_shared_cache(self):
        cache = DesignCache()
        run_design_batch([_design()], cache=cache)
        assert cache.get(design_key_for(_design())) is not None

    def test_rejects_non_design_specs(self):
        with pytest.raises(TypeError, match="DesignSpec"):
            DesignBatch([{"optimizer": "amosa"}])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            DesignBatch([_design()], workers=0)
