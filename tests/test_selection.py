"""Edge cases of the archive-selection helpers (``repro.core.selection``)."""

import pytest

from repro.core.amosa import ArchiveEntry
from repro.core.selection import (
    SELECTION_STRATEGIES,
    knee_point,
    select_by_strategy,
    select_energy_leaning,
    select_latency_leaning,
    spread_selection,
)


def entries(*objectives):
    return [
        ArchiveEntry(solution=index, objectives=tuple(vector))
        for index, vector in enumerate(objectives)
    ]


class TestEmptyArchives:
    @pytest.mark.parametrize(
        "select",
        [select_latency_leaning, select_energy_leaning, knee_point],
    )
    def test_selectors_raise_on_empty(self, select):
        with pytest.raises(ValueError):
            select([])

    def test_spread_selection_raises_on_empty(self):
        with pytest.raises(ValueError):
            spread_selection([], 3)

    def test_spread_selection_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            spread_selection(entries((1.0, 2.0)), 0)

    def test_select_by_strategy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection strategy"):
            select_by_strategy("balanced", entries((1.0, 2.0)))

    def test_select_by_strategy_empty_archive(self):
        with pytest.raises(ValueError):
            select_by_strategy("knee", [])


class TestSingleEntry:
    def test_all_selectors_return_the_only_entry(self):
        archive = entries((0.5, 3.0))
        only = archive[0]
        assert select_latency_leaning(archive) is only
        assert select_energy_leaning(archive) is only
        assert knee_point(archive) is only
        for name in SELECTION_STRATEGIES:
            assert select_by_strategy(name, archive) is only

    def test_spread_selection_single_entry(self):
        archive = entries((0.5, 3.0))
        assert spread_selection(archive, 1) == archive
        assert spread_selection(archive, 6) == archive

    def test_two_entries_knee_falls_back_to_latency_extreme(self):
        archive = entries((0.0, 5.0), (2.0, 1.0))
        assert knee_point(archive) is archive[0]


class TestDuplicatePoints:
    def test_all_identical_points(self):
        archive = entries((1.0, 1.0), (1.0, 1.0), (1.0, 1.0))
        # Degenerate front (zero span): a deterministic member is returned.
        assert knee_point(archive).objectives == (1.0, 1.0)
        assert select_latency_leaning(archive).objectives == (1.0, 1.0)
        assert select_energy_leaning(archive).objectives == (1.0, 1.0)
        spread = spread_selection(archive, 2)
        assert 1 <= len(spread) <= 2

    def test_duplicates_mixed_with_distinct_points(self):
        archive = entries((0.0, 4.0), (0.0, 4.0), (1.0, 1.0), (4.0, 0.0), (4.0, 0.0))
        assert select_latency_leaning(archive).objectives == (0.0, 4.0)
        assert select_energy_leaning(archive).objectives == (4.0, 0.0)
        # The knee of this symmetric front is the middle point.
        assert knee_point(archive).objectives == (1.0, 1.0)

    def test_spread_selection_deduplicates_indices(self):
        archive = entries((0.0, 4.0), (1.0, 3.0), (4.0, 0.0))
        spread = spread_selection(archive, 5)
        # count >= archive size: everything, exactly once each.
        assert [e.objectives for e in spread] == [
            (0.0, 4.0),
            (1.0, 3.0),
            (4.0, 0.0),
        ]

    def test_spread_selection_keeps_extremes(self):
        archive = entries(
            (0.0, 9.0), (1.0, 6.0), (2.0, 4.0), (3.0, 3.0), (6.0, 1.0), (9.0, 0.0)
        )
        spread = spread_selection(archive, 3)
        assert spread[0].objectives == (0.0, 9.0)
        assert spread[-1].objectives == (9.0, 0.0)
        assert len(spread) == 3

    def test_selector_tie_breaking_is_stable(self):
        # Equal first objectives: the second objective breaks the tie.
        archive = entries((0.0, 4.0), (0.0, 2.0))
        assert select_latency_leaning(archive).objectives == (0.0, 2.0)
        archive = entries((3.0, 0.0), (1.0, 0.0))
        assert select_energy_leaning(archive).objectives == (1.0, 0.0)
