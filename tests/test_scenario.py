"""The scenario subsystem: events, specs, dispatch, cross-backend identity.

The acceptance bar of the subsystem is the cross-backend matrix: every
registered scenario event kind must run *bit-identically* on the
``reference`` and ``optimized`` kernels -- whole-run statistics, per-phase
windows and delivered flits -- including an elevator fault under AdEle.  A
spec without a scenario must keep a byte-identical ``config_key`` (pinned
against the pre-scenario hash), so no disk-cache entry is ever invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.analysis.runner import run_experiment
from repro.api import run_scenario
from repro.exec.cache import canonical_config, config_key, derive_seed
from repro.registry import UnknownComponentError
from repro.scenario import (
    SCENARIO_EVENT_REGISTRY,
    BASELINE_PHASE_LABEL,
    ElevatorFault,
    ElevatorRepair,
    RateRamp,
    ScenarioEvent,
    ScenarioRuntime,
    ScenarioSpec,
    StatsMarker,
    TrafficPhase,
    event_from_dict,
)
from repro.sim.backends import available_backends
from repro.sim.router import Port
from repro.spec import ExperimentSpec, PlacementSpec, PolicySpec, SimSpec, TrafficSpec
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.generator import TracePacketSource
from repro.traffic.trace import TrafficTrace

#: config_key of the default ExperimentSpec as of the PR *before* the
#: scenario subsystem existed.  A scenario-free spec must keep this hash
#: byte for byte, or every previously cached result would be orphaned.
PRE_SCENARIO_DEFAULT_KEY = (
    "73968651440348308442bc2dc53756c892f589696bfd8a6f8ded9b4b7ff6d8d3"
)


def _placement() -> ElevatorPlacement:
    return ElevatorPlacement(Mesh3D(3, 3, 2), [(0, 0), (2, 2)], name="scenario-test")


def _spec(policy: str = "elevator_first", **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        placement=PlacementSpec.from_placement(_placement()),
        policy=PolicySpec(name=policy),
        traffic=TrafficSpec(pattern="uniform", injection_rate=0.02),
        sim=SimSpec(
            warmup_cycles=30, measurement_cycles=150, drain_cycles=200, seed=11
        ),
    )
    return spec.with_(**overrides) if overrides else spec


# ---------------------------------------------------------------------- #
# Events and spec serialization
# ---------------------------------------------------------------------- #
class TestEvents:
    def test_registered_kinds(self):
        kinds = SCENARIO_EVENT_REGISTRY.names()
        assert {
            "elevator-fault",
            "elevator-repair",
            "rate-ramp",
            "stats-marker",
            "traffic-phase",
        } <= set(kinds)

    @pytest.mark.parametrize(
        "event",
        [
            TrafficPhase(cycle=5, pattern="shuffle", injection_rate=0.01),
            TrafficPhase(cycle=0, injection_rate=0.02, label="surge"),
            TrafficPhase(cycle=3, pattern="hotspot", options={"hotspot_fraction": 0.3}),
            RateRamp(cycle=10, end_cycle=40, end_rate=0.05, start_rate=0.01),
            ElevatorFault(cycle=7, elevator=1),
            ElevatorRepair(cycle=9, elevator=1, label="fixed"),
            StatsMarker(cycle=2, label="window-a"),
        ],
    )
    def test_event_round_trip(self, event):
        data = event.to_dict()
        rebuilt = event_from_dict(data)
        assert rebuilt == event
        assert rebuilt.to_dict() == data

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TrafficPhase(cycle=1)  # changes nothing
        with pytest.raises(ValueError):
            TrafficPhase(cycle=-1, injection_rate=0.1)
        with pytest.raises(ValueError):
            TrafficPhase(cycle=1, injection_rate=-0.5)
        with pytest.raises(ValueError):
            TrafficPhase(cycle=1, injection_rate=0.1, options={"x": 1})
        with pytest.raises(ValueError):
            RateRamp(cycle=10, end_cycle=10, end_rate=0.1)
        with pytest.raises(ValueError):
            StatsMarker(cycle=1, label="")
        with pytest.raises(ValueError):
            ElevatorFault(cycle=1, elevator=-2)

    def test_unknown_kind_raises_value_error(self):
        with pytest.raises(UnknownComponentError):
            event_from_dict({"kind": "earthquake", "cycle": 3})
        with pytest.raises(ValueError):
            event_from_dict({"cycle": 3})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            event_from_dict({"kind": "stats-marker", "cycle": 1, "label": "x", "oops": 2})

    def test_custom_event_registration(self):
        @SCENARIO_EVENT_REGISTRY.register("test-noop", description="noop")
        @dataclass(frozen=True)
        class NoopEvent(ScenarioEvent):
            kind: ClassVar[str] = "test-noop"

        try:
            rebuilt = event_from_dict({"kind": "test-noop", "cycle": 4})
            assert isinstance(rebuilt, NoopEvent) and rebuilt.cycle == 4
        finally:
            SCENARIO_EVENT_REGISTRY.unregister("test-noop")


class TestScenarioSpec:
    def test_orders_validated(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ScenarioSpec(events=(StatsMarker(cycle=10, label="a"),
                                 StatsMarker(cycle=5, label="b")))
        with pytest.raises(ValueError, match="ScenarioEvent"):
            ScenarioSpec(events=("not-an-event",))

    def test_round_trip_through_experiment_spec(self):
        scenario = ScenarioSpec(events=(
            StatsMarker(cycle=5, label="early"),
            ElevatorFault(cycle=40, elevator=0),
            TrafficPhase(cycle=60, pattern="shuffle", injection_rate=0.03),
        ))
        spec = _spec(scenario=scenario)
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.scenario == scenario

    def test_last_cycle_covers_ramp_end(self):
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=90, end_rate=0.01),
        ))
        assert scenario.last_cycle() == 90


# ---------------------------------------------------------------------- #
# Cache-key stability (acceptance criterion)
# ---------------------------------------------------------------------- #
class TestKeyStability:
    def test_scenario_free_key_is_byte_identical_to_pre_scenario_hash(self):
        assert config_key(ExperimentSpec()) == PRE_SCENARIO_DEFAULT_KEY
        assert "scenario" not in canonical_config(ExperimentSpec())

    def test_scenario_changes_key_and_seed(self):
        plain = _spec()
        scenario = plain.with_(scenario=ScenarioSpec(events=(
            ElevatorFault(cycle=10, elevator=0),
        )))
        assert config_key(plain) != config_key(scenario)
        assert derive_seed(plain, 1) != derive_seed(scenario, 1)

    def test_empty_scenario_is_distinct_from_none(self):
        # An empty timeline still opens the baseline phase window, so its
        # summary rows differ from a scenario-free run -- it must not share
        # a cache entry.
        plain = _spec()
        empty = plain.with_(scenario=ScenarioSpec())
        assert config_key(plain) != config_key(empty)

    def test_event_pattern_aliases_collapse(self):
        a = _spec(scenario=ScenarioSpec(events=(
            TrafficPhase(cycle=10, pattern="bit_complement"),
        )))
        b = _spec(scenario=ScenarioSpec(events=(
            TrafficPhase(cycle=10, pattern="complement"),
        )))
        assert config_key(a) == config_key(b)


# ---------------------------------------------------------------------- #
# Cross-backend matrix (acceptance criterion)
# ---------------------------------------------------------------------- #
#: Kernels in the scenario cross-backend identity matrix.  The vectorized
#: kernel participates in its bit-exact mode and only where numpy imports.
MATRIX_BACKENDS = ["reference", "optimized"] + (
    ["vectorized"] if "vectorized" in available_backends() else []
)

#: One scenario per registered event kind.  The completeness check below
#: fails if a new kind is registered without a matrix entry.
MATRIX_SCENARIOS = {
    "stats-marker": ("elevator_first", ScenarioSpec(events=(
        StatsMarker(cycle=30, label="measured"),
        StatsMarker(cycle=100, label="late"),
    ))),
    "traffic-phase": ("elevator_first", ScenarioSpec(events=(
        TrafficPhase(cycle=80, pattern="shuffle", injection_rate=0.04),
    ))),
    "rate-ramp": ("cda", ScenarioSpec(events=(
        RateRamp(cycle=50, end_cycle=120, end_rate=0.05),
    ))),
    "elevator-fault": ("adele", ScenarioSpec(events=(
        ElevatorFault(cycle=70, elevator=0),
    ))),
    "elevator-repair": ("adele", ScenarioSpec(events=(
        ElevatorFault(cycle=60, elevator=0),
        ElevatorRepair(cycle=120, elevator=0),
    ))),
}


def _full_comparison(result) -> dict:
    stats = result.stats
    return {
        "summary": result.summary(),
        "drain": result.drain_cycles_used,
        "latencies": stats.latencies,
        "latency_samples_seen": stats.latency_samples_seen,
        "router_traversals": stats.router_traversals,
        "elevator_assignments": stats.elevator_assignments,
        "phases": [phase.to_summary() for phase in stats.phases],
        "phase_latencies": [phase.latencies for phase in stats.phases],
    }


class TestCrossBackendMatrix:
    def test_matrix_covers_every_registered_kind(self):
        bundled = {
            name
            for name in SCENARIO_EVENT_REGISTRY.names()
            if not name.startswith("test-")
        }
        assert bundled == set(MATRIX_SCENARIOS), (
            "every registered scenario event kind needs a cross-backend "
            "matrix entry"
        )

    @pytest.mark.parametrize("kind", sorted(MATRIX_SCENARIOS))
    def test_event_kind_is_bit_identical_across_kernels(self, kind):
        policy, scenario = MATRIX_SCENARIOS[kind]
        spec = _spec(policy=policy, scenario=scenario)
        reference = run_experiment(spec.with_(backend="reference"))
        for backend in MATRIX_BACKENDS[1:]:
            other = run_experiment(
                spec.with_(backend=backend, bit_exact=(backend == "vectorized"))
            )
            assert _full_comparison(reference) == _full_comparison(other), backend
        # The scenario actually produced phase windows (baseline + events).
        assert len(reference.stats.phases) == len(scenario.events) + 1
        assert reference.stats.phases[0].label == BASELINE_PHASE_LABEL

    def test_combined_timeline_bit_identical_under_adele(self):
        scenario = ScenarioSpec(events=(
            StatsMarker(cycle=10, label="early"),
            ElevatorFault(cycle=60, elevator=0),
            TrafficPhase(cycle=100, pattern="shuffle", injection_rate=0.03),
            ElevatorRepair(cycle=130, elevator=0),
            RateRamp(cycle=140, end_cycle=170, end_rate=0.005),
        ))
        spec = _spec(policy="adele", scenario=scenario)
        reference = run_experiment(spec.with_(backend="reference"))
        for backend in MATRIX_BACKENDS[1:]:
            other = run_experiment(
                spec.with_(backend=backend, bit_exact=(backend == "vectorized"))
            )
            assert _full_comparison(reference) == _full_comparison(other), backend

    def test_fault_excludes_elevator_from_new_assignments(self):
        spec = _spec(policy="adele", scenario=ScenarioSpec(events=(
            ElevatorFault(cycle=0, elevator=0),
        )))
        result = run_experiment(spec)
        assert 0 not in result.stats.elevator_assignments
        assert result.stats.packets_delivered > 0


# ---------------------------------------------------------------------- #
# Runtime semantics
# ---------------------------------------------------------------------- #
class TestRuntime:
    def _network_and_source(self, policy_name: str = "elevator_first"):
        from repro.analysis.runner import build_network, build_packet_source

        spec = _spec(policy=policy_name)
        placement = spec.placement.resolve()
        network = build_network(spec, placement=placement)
        source = build_packet_source(spec, placement)
        return network, source

    def test_events_past_injection_window_rejected(self):
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(StatsMarker(cycle=500, label="late"),))
        with pytest.raises(ValueError, match="drain"):
            ScenarioRuntime(scenario, network, source, injection_end=180)

    def test_bad_elevator_index_fails_at_construction(self):
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(ElevatorFault(cycle=10, elevator=9),))
        with pytest.raises(ValueError, match="out of range"):
            ScenarioRuntime(scenario, network, source, injection_end=180)

    def test_traffic_events_need_bernoulli_source(self):
        network, _ = self._network_and_source()
        trace = TrafficTrace([])
        scenario = ScenarioSpec(events=(
            TrafficPhase(cycle=5, injection_rate=0.1),
        ))
        with pytest.raises(ValueError, match="Bernoulli"):
            ScenarioRuntime(scenario, network, TracePacketSource(trace))

    def test_finalize_restores_faults_links_and_traffic(self):
        network, source = self._network_and_source()
        placement = network.placement
        scenario = ScenarioSpec(events=(
            ElevatorFault(cycle=10, elevator=0),
            TrafficPhase(cycle=20, pattern="shuffle", injection_rate=0.2),
        ))
        original_pattern = source.pattern
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(25)
        assert placement.is_faulty(0)
        assert network.severed_elevators() == {0}
        bottom = placement.elevator_node(placement.elevator_by_index(0), 0)
        assert network.neighbor(bottom, Port.UP) is None
        assert source.packet_probability == pytest.approx(0.2)

        runtime.finalize(180)
        assert not placement.is_faulty(0)
        assert network.severed_elevators() == set()
        assert network.neighbor(bottom, Port.UP) is not None
        assert source.pattern is original_pattern
        assert source.packet_probability == pytest.approx(0.02)
        # The last phase window was closed at the final cycle.
        assert network.stats.phases[-1].end_cycle == 180

    def test_failing_last_healthy_elevator_rejected(self):
        network, _ = self._network_and_source()
        network.fail_elevator(0)
        with pytest.raises(ValueError, match="no healthy elevator"):
            network.fail_elevator(1)
        # The rejected fault left nothing behind: e1 stays healthy/linked.
        assert not network.placement.is_faulty(1)
        assert network.severed_elevators() == {0}

    def test_pattern_only_phase_keeps_ramp_running(self):
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=30, end_rate=0.22, start_rate=0.02),
            TrafficPhase(cycle=20, pattern="shuffle"),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(20)
        assert source.packet_probability == pytest.approx(0.12)
        runtime.advance(30)
        assert source.packet_probability == pytest.approx(0.22)

    def test_explicit_rate_phase_cancels_ramp(self):
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=30, end_rate=0.22, start_rate=0.02),
            TrafficPhase(cycle=20, injection_rate=0.05),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(25)
        assert source.packet_probability == pytest.approx(0.05)
        runtime.advance(30)
        assert source.packet_probability == pytest.approx(0.05)

    def test_restore_with_preexisting_fault_repaired_midrun(self):
        # The pre-run world has e0 faulty (old-style mark_faulty before
        # network construction); the scenario repairs e0 and faults e1.
        # Restoration must repair the scenario fault *first* -- re-marking
        # e0 while e1 was still down would trip the last-healthy-elevator
        # guard -- and must return exactly the pre-run state: e0 marked
        # faulty but (as before the run) fully linked.
        from repro.analysis.runner import build_network, build_packet_source

        spec = _spec()
        placement = spec.placement.resolve()
        placement.mark_faulty(0)
        network = build_network(spec, placement=placement)
        source = build_packet_source(spec, placement)
        scenario = ScenarioSpec(events=(
            ElevatorRepair(cycle=20, elevator=0),
            ElevatorFault(cycle=40, elevator=1),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(50)
        assert not placement.is_faulty(0) and placement.is_faulty(1)
        runtime.finalize(180)
        assert placement.is_faulty(0) and not placement.is_faulty(1)
        assert network.severed_elevators() == set()

    def test_ramp_interpolates_linearly(self):
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=20, end_rate=0.12, start_rate=0.02),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(10)
        assert source.packet_probability == pytest.approx(0.02)
        runtime.advance(15)
        assert source.packet_probability == pytest.approx(0.07)
        runtime.advance(20)
        assert source.packet_probability == pytest.approx(0.12)

    def test_ramp_boundary_pins_start_rate_at_ramp_cycle(self):
        # Regression: at exactly ramp.cycle the rate must be the ramp's
        # start rate (no interpolation step yet), distinct from the base
        # injection rate it overrides.
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=20, end_rate=0.14, start_rate=0.04),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(10)
        assert source.packet_probability == pytest.approx(0.04)
        runtime.advance(11)
        assert source.packet_probability == pytest.approx(0.05)

    def test_overlapping_ramps_chain_at_the_interpolated_rate(self):
        # Regression: a second ramp starting mid-flight used to read the
        # *stale* pre-ramp rate as its implicit start rate.  The outgoing
        # ramp is now advanced to the handover cycle first, so the new ramp
        # departs from the rate actually in effect.
        network, source = self._network_and_source()
        scenario = ScenarioSpec(events=(
            RateRamp(cycle=10, end_cycle=30, end_rate=0.22, start_rate=0.02),
            RateRamp(cycle=20, end_cycle=40, end_rate=0.30),
        ))
        runtime = ScenarioRuntime(scenario, network, source, injection_end=180)
        runtime.begin()
        runtime.advance(20)
        # Handover: the first ramp's value at cycle 20 is 0.12.
        assert source.packet_probability == pytest.approx(0.12)
        runtime.advance(30)
        assert source.packet_probability == pytest.approx(0.21)
        runtime.advance(40)
        assert source.packet_probability == pytest.approx(0.30)

    def test_adele_rebuild_preserves_learned_costs(self):
        from repro.routing.adele import AdElePolicy
        from repro.sim.network import Network

        placement = _placement()
        policy = AdElePolicy(
            placement,
            subsets={node: [0, 1] for node in placement.mesh.nodes()},
        )
        network = Network(placement, policy)
        node = 3
        policy.notify_source_latency(node, 1, 2.5)
        cost_before = policy.cost(node, 1)
        assert cost_before > 0.0
        network.fail_elevator(0)
        assert policy.subset_indices(node) == [1]
        assert policy.cost(node, 1) == cost_before
        network.repair_elevator(0)
        assert 0 in policy.subset_indices(node)
        assert policy.cost(node, 1) == cost_before

    def test_network_reset_restores_links(self):
        network, _ = self._network_and_source()
        network.fail_elevator(0)
        assert network.severed_elevators() == {0}
        network.reset()
        assert network.severed_elevators() == set()


# ---------------------------------------------------------------------- #
# api.run_scenario
# ---------------------------------------------------------------------- #
class TestRunScenarioApi:
    def test_requires_a_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            run_scenario(_spec())

    def test_argument_overrides_spec(self):
        scenario = ScenarioSpec(events=(StatsMarker(cycle=50, label="mid"),))
        result = run_scenario(_spec(), scenario=scenario)
        assert [phase.label for phase in result.stats.phases] == [
            BASELINE_PHASE_LABEL,
            "mid",
        ]
        assert result.summary()["phases"][1]["label"] == "mid"


# ---------------------------------------------------------------------- #
# Shared placements must not leak scenario fault state
# ---------------------------------------------------------------------- #
class TestSharedPlacementIsolation:
    def test_back_to_back_runs_identical(self):
        spec = _spec(policy="adele", scenario=ScenarioSpec(events=(
            ElevatorFault(cycle=60, elevator=0),
        )))
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert _full_comparison(first) == _full_comparison(second)

    def test_scenario_then_plain_run_matches_plain_baseline(self):
        plain = _spec(policy="elevator_first")
        baseline = run_experiment(plain)
        run_experiment(plain.with_(scenario=ScenarioSpec(events=(
            ElevatorFault(cycle=60, elevator=0),
        ))))
        after = run_experiment(plain)
        assert _full_comparison(baseline) == _full_comparison(after)

    def test_direct_network_reuse_with_scenario(self):
        # run_experiment(network=...) resets the network between runs; a
        # scenario on the first run must not contaminate the second.
        from repro.analysis.runner import build_network

        plain = _spec(policy="elevator_first")
        scenario_spec = plain.with_(scenario=ScenarioSpec(events=(
            ElevatorFault(cycle=60, elevator=0),
        )))
        placement = plain.placement.resolve()
        network = build_network(plain, placement=placement)
        run_experiment(scenario_spec, network=network)
        reused = run_experiment(plain, network=network)
        fresh = run_experiment(plain)
        assert _full_comparison(reused) == _full_comparison(fresh)
