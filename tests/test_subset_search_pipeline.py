"""Unit tests for the subset-search problem and the offline pipeline."""

import random

import pytest

from repro.core.amosa import AmosaConfig
from repro.core.pipeline import OfflineConfig, optimize_elevator_subsets
from repro.core.subset_search import ElevatorSubsetProblem, SubsetSolution
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


@pytest.fixture
def placement():
    mesh = Mesh3D(3, 3, 2)
    return ElevatorPlacement(mesh, [(0, 0), (2, 2), (1, 1)], name="three")


@pytest.fixture
def problem(placement):
    traffic = UniformTraffic(placement.mesh).traffic_matrix()
    return ElevatorSubsetProblem(placement, traffic, max_subset_size=2)


SMALL_AMOSA = AmosaConfig(
    initial_temperature=5.0,
    final_temperature=0.2,
    cooling_rate=0.7,
    iterations_per_temperature=15,
    hard_limit=8,
    soft_limit=16,
    initial_solutions=4,
    seed=5,
)


class TestSubsetSolution:
    def test_subsets_sorted(self):
        solution = SubsetSolution(assignment={0: frozenset({2, 0}), 1: frozenset({1})})
        assert solution.subsets() == {0: (0, 2), 1: (1,)}
        assert solution.subset_for(0) == (0, 2)

    def test_average_subset_size(self):
        solution = SubsetSolution(assignment={0: frozenset({0, 1}), 1: frozenset({1})})
        assert solution.average_subset_size() == pytest.approx(1.5)
        assert SubsetSolution(assignment={}).average_subset_size() == 0.0

    def test_equality_and_hash(self):
        a = SubsetSolution(assignment={0: frozenset({0})})
        b = SubsetSolution(assignment={0: frozenset({0})})
        assert a == b
        assert hash(a) == hash(b)


class TestElevatorSubsetProblem:
    def test_requires_elevators(self):
        mesh = Mesh3D(2, 2, 1)
        placement = ElevatorPlacement(mesh, [])
        with pytest.raises(ValueError):
            ElevatorSubsetProblem(placement, {})

    def test_max_subset_size_validation(self, placement):
        with pytest.raises(ValueError):
            ElevatorSubsetProblem(placement, {}, max_subset_size=0)

    def test_random_solution_is_feasible(self, problem):
        rng = random.Random(0)
        for _ in range(10):
            assert problem.is_feasible(problem.random_solution(rng))

    def test_nearest_elevator_solution_is_singletons(self, problem, placement):
        solution = problem.nearest_elevator_solution()
        assert problem.is_feasible(solution)
        assert all(len(s) == 1 for s in solution.assignment.values())
        # The node on an elevator column selects its own elevator.
        node = placement.mesh.node_id_xyz(2, 2, 0)
        assert solution.subset_for(node) == (1,)

    def test_full_subset_solution_respects_cap(self, problem):
        solution = problem.full_subset_solution()
        assert problem.is_feasible(solution)
        assert all(len(s) <= 2 for s in solution.assignment.values())

    def test_perturbation_preserves_feasibility(self, problem):
        rng = random.Random(3)
        solution = problem.random_solution(rng)
        for _ in range(200):
            solution = problem.perturb(solution, rng)
            assert problem.is_feasible(solution)

    def test_perturbation_changes_single_router(self, problem):
        rng = random.Random(4)
        solution = problem.random_solution(rng)
        perturbed = problem.perturb(solution, rng)
        changed = [
            node
            for node in solution.assignment
            if solution.assignment[node] != perturbed.assignment[node]
        ]
        assert len(changed) <= 1

    def test_evaluate_returns_two_objectives(self, problem):
        rng = random.Random(5)
        objectives = problem.evaluate(problem.random_solution(rng))
        assert len(objectives) == 2
        assert all(value >= 0 for value in objectives)

    def test_is_feasible_detects_bad_solutions(self, problem, placement):
        nodes = list(placement.mesh.nodes())
        missing = SubsetSolution(assignment={n: frozenset({0}) for n in nodes[:-1]})
        assert not problem.is_feasible(missing)
        too_big = SubsetSolution(assignment={n: frozenset({0, 1, 2}) for n in nodes})
        assert not problem.is_feasible(too_big)
        bad_index = SubsetSolution(assignment={n: frozenset({9}) for n in nodes})
        assert not problem.is_feasible(bad_index)


class TestOfflinePipeline:
    def test_design_contains_expected_pieces(self, placement):
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2, num_representatives=4)
        design = optimize_elevator_subsets(placement, config=config)
        assert len(design.pareto_points()) >= 1
        assert len(design.representatives) <= 4
        assert design.baseline_objectives[0] >= 0
        assert design.selected in design.result.archive
        assert design.explored_points()

    def test_selected_solution_improves_variance_over_baseline(self, placement):
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2)
        design = optimize_elevator_subsets(placement, config=config)
        baseline_variance = design.baseline_objectives[0]
        selected_variance = design.selected.objectives[0]
        assert selected_variance <= baseline_variance

    def test_policy_construction_uses_selected_subsets(self, placement):
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2)
        design = optimize_elevator_subsets(placement, config=config)
        policy = design.to_policy(seed=1)
        assert isinstance(policy, AdElePolicy)
        subsets = design.selected_subsets()
        for node in placement.mesh.nodes():
            assert tuple(policy.subset_indices(node)) == subsets[node]
        rr_policy = design.to_round_robin_policy()
        assert isinstance(rr_policy, AdEleRoundRobinPolicy)

    def test_alternative_selections(self, placement):
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2)
        design = optimize_elevator_subsets(placement, config=config)
        latency = design.latency_leaning()
        energy = design.energy_leaning()
        assert latency.objectives[0] <= energy.objectives[0]
        assert energy.objectives[1] <= latency.objectives[1]
        knee = design.knee()
        assert knee in design.result.archive
        design.select(energy)
        assert design.selected is energy

    def test_to_policy_threshold_override(self, placement):
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2)
        design = optimize_elevator_subsets(placement, config=config)
        policy = design.to_policy(low_traffic_threshold=1.5)
        assert policy.low_traffic_threshold == 1.5

    def test_offline_config_validation(self):
        with pytest.raises(ValueError):
            OfflineConfig(num_representatives=0)

    def test_custom_traffic_matrix(self, placement):
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(2, 2, 1)
        traffic = {(src, dst): 1.0}
        config = OfflineConfig(amosa=SMALL_AMOSA, max_subset_size=2)
        design = optimize_elevator_subsets(placement, traffic=traffic, config=config)
        assert design.pareto_points()
