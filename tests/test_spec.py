"""Tests for the typed spec layer: validation, round-trips, cache keys.

Covers the satellite guarantees of the `repro.api` redesign:

* property test that ``ExperimentSpec.from_dict(spec.to_dict()) == spec``
  and that ``config_key`` is stable across round-trips, over both a
  hypothesis-generated spec space and the full bench grid;
* custom-placement cache correctness: a ``placement_obj`` reusing a name
  must never share a ``config_key`` with the named placement (or another
  structure under the same name);
* the deprecated ``ExperimentConfig`` shim warns on construction, while the
  spec-native internals (runner, batch, sweep, CLI) never trigger the
  warning.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runner import (
    ExperimentConfig,
    as_spec,
    config_from_spec,
    spec_from_config,
)
from repro.exec.cache import (
    canonical_json,
    config_from_canonical,
    config_key,
    derive_seed,
    spec_from_canonical,
)
from repro.spec import (
    ExperimentSpec,
    PlacementSpec,
    PolicySpec,
    SimSpec,
    TrafficSpec,
)
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D


def _quiet_config(**kwargs) -> ExperimentConfig:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return ExperimentConfig(**kwargs)


# ---------------------------------------------------------------------- #
# Hypothesis strategies over the spec space
# ---------------------------------------------------------------------- #
_names = st.sampled_from(["PS1", "PS2", "PS3", "PM", "custom-a", "x"])
_policies = st.one_of(
    st.builds(PolicySpec, name=st.sampled_from(["elevator_first", "cda", "minimal"])),
    st.builds(
        PolicySpec,
        name=st.sampled_from(["adele", "adele_rr"]),
        options=st.fixed_dictionaries(
            {},
            optional={
                "max_subset_size": st.one_of(st.none(), st.integers(1, 6)),
                "low_traffic_threshold": st.one_of(
                    st.none(), st.floats(0.0, 1.0, allow_nan=False)
                ),
            },
        ),
    ),
)
_placements = st.one_of(
    st.builds(PlacementSpec, name=_names),
    st.builds(
        PlacementSpec,
        name=_names,
        mesh=st.just((3, 3, 2)),
        columns=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=4,
            unique=True,
        ).map(tuple),
    ),
)
_traffic = st.builds(
    TrafficSpec,
    pattern=st.sampled_from(["uniform", "shuffle", "transpose", "fft", "hotspot"]),
    injection_rate=st.floats(0.0, 0.5, allow_nan=False),
    min_packet_length=st.integers(1, 10),
    max_packet_length=st.integers(10, 40),
)
_sims = st.builds(
    SimSpec,
    warmup_cycles=st.integers(0, 500),
    measurement_cycles=st.integers(0, 2000),
    drain_cycles=st.integers(0, 1000),
    buffer_depth=st.integers(1, 8),
    seed=st.integers(0, 2**31),
)
_specs = st.builds(
    ExperimentSpec, placement=_placements, policy=_policies, traffic=_traffic, sim=_sims
)


class TestRoundTripProperties:
    @settings(max_examples=150, deadline=None)
    @given(spec=_specs)
    def test_dict_round_trip_is_lossless(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=150, deadline=None)
    @given(spec=_specs)
    def test_config_key_is_stable_across_round_trips(self, spec):
        key = config_key(spec)
        via_dict = ExperimentSpec.from_dict(spec.to_dict())
        via_json = ExperimentSpec.from_json(spec.to_json())
        via_canonical = spec_from_canonical(json.loads(canonical_json(spec)))
        assert config_key(via_dict) == key
        assert config_key(via_json) == key
        assert config_key(via_canonical) == key
        assert derive_seed(via_dict, 7) == derive_seed(spec, 7)

    def test_full_bench_grid_round_trips_with_stable_keys(self):
        # The grid every benchmark sweeps: placements x policies x traffic x
        # rates.  Round-trips must be lossless, keys stable, and all keys
        # pairwise distinct.
        specs = [
            ExperimentSpec(
                placement=PlacementSpec(name=placement),
                policy=PolicySpec(name=policy),
                traffic=TrafficSpec(pattern=traffic, injection_rate=rate),
                sim=SimSpec(seed=1),
            )
            for placement in ("PS1", "PS2", "PS3", "PM")
            for policy in ("elevator_first", "cda", "adele", "adele_rr")
            for traffic in ("uniform", "shuffle", "fft")
            for rate in (0.001, 0.003, 0.005)
        ]
        keys = []
        for spec in specs:
            rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rebuilt == spec
            assert config_key(rebuilt) == config_key(spec)
            keys.append(config_key(spec))
        assert len(set(keys)) == len(specs)

    def test_legacy_config_and_its_spec_hash_identically(self):
        config = _quiet_config(
            placement="PS2", policy="adele", traffic="shuffle",
            injection_rate=0.003, seed=9, adele_max_subset_size=3,
        )
        spec = spec_from_config(config)
        assert config_key(config) == config_key(spec)
        assert derive_seed(config, 5) == derive_seed(spec, 5)
        assert config_from_canonical(json.loads(canonical_json(config))) == config

    def test_as_spec_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            as_spec({"placement": "PS1"})


class TestSpecValidation:
    def test_structural_placement_needs_both_fields(self):
        with pytest.raises(ValueError):
            PlacementSpec(name="x", mesh=(2, 2, 2))
        with pytest.raises(ValueError):
            PlacementSpec(name="x", columns=((0, 0),))

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown experiment spec field"):
            ExperimentSpec.from_dict({"placment": {}})
        with pytest.raises(ValueError, match="unknown policy spec field"):
            PolicySpec.from_dict({"name": "cda", "kwargs": {}})
        with pytest.raises(ValueError, match="unknown traffic spec field"):
            TrafficSpec.from_dict({"rate": 0.1})

    def test_from_dict_rejects_bad_format_version(self):
        with pytest.raises(ValueError, match="unsupported experiment spec format"):
            ExperimentSpec.from_dict({"format": 99})

    def test_options_must_be_json_native(self):
        with pytest.raises(ValueError, match="JSON-native"):
            PolicySpec(name="cda", options={"weight": object()})

    def test_traffic_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(injection_rate=-0.1)
        with pytest.raises(ValueError):
            TrafficSpec(min_packet_length=5, max_packet_length=4)

    def test_sim_validation(self):
        with pytest.raises(ValueError):
            SimSpec(warmup_cycles=-1)
        with pytest.raises(ValueError):
            SimSpec(buffer_depth=0)

    def test_with_flat_fields(self):
        spec = ExperimentSpec().with_(
            placement="PS2", policy="cda", injection_rate=0.01, seed=4,
            warmup_cycles=10,
        )
        assert spec.placement.name == "PS2"
        assert spec.policy.name == "cda"
        assert spec.policy.options == {}  # changing the policy name resets options
        assert spec.traffic.injection_rate == 0.01
        assert spec.sim.seed == 4
        assert spec.sim.warmup_cycles == 10
        with pytest.raises(ValueError, match="unknown ExperimentSpec field"):
            ExperimentSpec().with_(bogus=1)

    def test_with_same_policy_name_keeps_options(self):
        spec = ExperimentSpec(
            policy=PolicySpec(name="adele", options={"max_subset_size": 2})
        )
        assert spec.with_(policy="adele").policy.options == {"max_subset_size": 2}
        assert spec.with_(policy="cda").policy.options == {}

    def test_with_placement_object(self):
        placement = ElevatorPlacement(Mesh3D(2, 2, 2), [(0, 0)], name="OBJ")
        spec = ExperimentSpec().with_(placement=placement)
        assert spec.placement.is_structural
        assert spec.placement.resolve().columns() == [(0, 0)]


class TestCustomPlacementCacheKeys:
    """Satellite regression: placement objects reusing a name never alias."""

    def test_placement_obj_reusing_a_standard_name_gets_a_distinct_key(self):
        named = _quiet_config(placement="PS1", policy="elevator_first")
        custom = _quiet_config(
            placement="PS1",
            policy="elevator_first",
            placement_obj=ElevatorPlacement(Mesh3D(4, 4, 4), [(0, 0)], name="PS1"),
        )
        # The flat dataclass considers them equal (placement_obj is excluded
        # from comparison) -- exactly why the cache key must not.
        assert named == custom
        assert config_key(named) != config_key(custom)
        assert derive_seed(named, 1) != derive_seed(custom, 1)

    def test_two_structures_under_one_name_get_distinct_keys(self):
        mesh = Mesh3D(2, 2, 2)
        config_a = _quiet_config(
            placement="dup",
            placement_obj=ElevatorPlacement(mesh, [(0, 0)], name="dup"),
        )
        config_b = _quiet_config(
            placement="dup",
            placement_obj=ElevatorPlacement(mesh, [(1, 1)], name="dup"),
        )
        assert config_key(config_a) != config_key(config_b)

    def test_case_variants_and_aliases_share_keys(self):
        # Equivalent spellings of one experiment must hit the same cache
        # entry and derive the same seed.
        base = ExperimentSpec()
        assert config_key(base.with_(policy="AdEle")) == config_key(
            base.with_(policy="adele")
        )
        assert config_key(base.with_(traffic="fluid.")) == config_key(
            base.with_(traffic="fluidanimate")
        )
        assert config_key(base.with_(traffic="Uniform")) == config_key(
            base.with_(traffic="uniform")
        )
        assert config_key(base.with_(placement="ps1")) == config_key(
            base.with_(placement="PS1")
        )
        assert derive_seed(base.with_(policy="AdEle"), 7) == derive_seed(
            base.with_(policy="adele"), 7
        )
        # Different components still never collide.
        assert config_key(base.with_(policy="cda")) != config_key(
            base.with_(policy="adele")
        )

    def test_spec_level_named_vs_structural_distinct(self):
        named = ExperimentSpec(placement=PlacementSpec(name="PS1"))
        structural = ExperimentSpec(
            placement=PlacementSpec(
                name="PS1", mesh=(4, 4, 4), columns=((1, 1), (2, 2), (3, 0))
            )
        )
        assert config_key(named) != config_key(structural)


class TestDeprecatedShim:
    def test_constructing_config_warns(self):
        with pytest.warns(DeprecationWarning, match="ExperimentConfig is deprecated"):
            ExperimentConfig()

    def test_with_derivation_stays_quiet(self):
        # The warning fires once, at construction; deriving copies of an
        # already-constructed config must not re-warn on every sweep point.
        config = _quiet_config()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert config.with_(seed=1).seed == 1

    def test_spec_conversions_do_not_warn(self):
        config = _quiet_config(policy="cda")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = spec_from_config(config)
            back = config_from_spec(spec)
        assert back == config

    def test_lossy_conversion_drops_foreign_options(self):
        spec = ExperimentSpec(
            policy=PolicySpec(name="custom", options={"weight": 2.0}),
            traffic=TrafficSpec(pattern="hotspot", options={"hotspot_fraction": 0.5}),
        )
        config = config_from_spec(spec)
        assert config.policy == "custom"
        assert config.traffic == "hotspot"

    def test_internal_modules_do_not_trigger_the_warning(self, tmp_path):
        # Run the whole spec-native stack -- builders, batch engine (cold and
        # warm cache), sweep, CLI -- with DeprecationWarning promoted to an
        # error: no internal module may construct the shim loudly.
        from repro.analysis.sweep import latency_sweep
        from repro.exec.batch import run_batch
        from repro.exec.cli import main as cli_main

        spec = ExperimentSpec(
            placement=PlacementSpec(name="shim", mesh=(2, 2, 2), columns=((0, 0),)),
            policy=PolicySpec(name="elevator_first"),
            traffic=TrafficSpec(pattern="uniform", injection_rate=0.05),
            sim=SimSpec(warmup_cycles=10, measurement_cycles=60, drain_cycles=60),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcomes = run_batch([spec], result_cache=None)
            assert outcomes[0].summary["average_latency"] > 0
            run_batch([spec], base_seed=3)
            latency_sweep(spec, ["elevator_first"], [0.02])
            cli_main(
                [
                    "sweep", "--mesh", "2", "2", "2", "--elevators", "0,0",
                    "--policies", "elevator_first", "--rates", "0.05",
                    "--warmup", "5", "--measure", "40", "--drain", "40",
                ]
            )
            cli_main(["list"])
