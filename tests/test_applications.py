"""Unit tests for the synthetic application traffic (SPLASH-2/PARSEC stand-in)."""

import pytest

from repro.topology.mesh3d import Mesh3D
from repro.traffic.applications import (
    APPLICATION_NAMES,
    ApplicationSpec,
    application_spec,
    make_application_traffic,
)


@pytest.fixture
def mesh():
    return Mesh3D(4, 4, 4)


class TestApplicationSpec:
    def test_all_six_benchmarks_present(self):
        assert set(APPLICATION_NAMES) == {
            "canneal",
            "fft",
            "fluidanimate",
            "lu",
            "radix",
            "water",
        }

    def test_spec_lookup_case_insensitive(self):
        assert application_spec("FFT").name == "fft"

    def test_unknown_application(self):
        with pytest.raises(ValueError, match="unknown application"):
            application_spec("blackscholes")

    def test_load_grouping_matches_paper(self):
        # Section IV-C: canneal, fft, radix, water are high-load;
        # fluidanimate and lu are low-load.
        high = {"canneal", "fft", "radix", "water"}
        low = {"fluidanimate", "lu"}
        min_high = min(application_spec(a).load_factor for a in high)
        max_low = max(application_spec(a).load_factor for a in low)
        assert min_high > 2 * max_low

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ApplicationSpec(
                name="bad",
                load_factor=0.0,
                partners_per_node=4,
                hotspot_nodes=1,
                hotspot_share=0.1,
                locality=0.5,
                zipf_exponent=1.0,
            )
        with pytest.raises(ValueError):
            ApplicationSpec(
                name="bad",
                load_factor=1.0,
                partners_per_node=0,
                hotspot_nodes=1,
                hotspot_share=0.1,
                locality=0.5,
                zipf_exponent=1.0,
            )


class TestApplicationTraffic:
    @pytest.mark.parametrize("name", APPLICATION_NAMES)
    def test_matrix_rows_sum_to_one(self, mesh, name):
        traffic = make_application_traffic(name, mesh, seed=1)
        matrix = traffic.traffic_matrix()
        for src in range(mesh.num_nodes):
            row = sum(w for (s, _d), w in matrix.items() if s == src)
            assert row == pytest.approx(1.0, abs=1e-9)

    def test_no_self_traffic(self, mesh):
        traffic = make_application_traffic("fft", mesh, seed=1)
        assert all(src != dst for (src, dst) in traffic.traffic_matrix())

    def test_destinations_follow_graph(self, mesh):
        traffic = make_application_traffic("canneal", mesh, seed=2)
        matrix = traffic.traffic_matrix()
        allowed = {dst for (src, dst) in matrix if src == 5}
        for _ in range(50):
            assert traffic.destination(5) in allowed

    def test_graph_is_deterministic_per_seed(self, mesh):
        a = make_application_traffic("radix", mesh, seed=7).traffic_matrix()
        b = make_application_traffic("radix", mesh, seed=7).traffic_matrix()
        assert a == b

    def test_different_seeds_differ(self, mesh):
        a = make_application_traffic("radix", mesh, seed=1).traffic_matrix()
        b = make_application_traffic("radix", mesh, seed=2).traffic_matrix()
        assert a != b

    def test_traffic_is_non_uniform(self, mesh):
        traffic = make_application_traffic("water", mesh, seed=1)
        matrix = traffic.traffic_matrix()
        weights = [w for (s, _d), w in matrix.items() if s == 0]
        assert max(weights) > 3 * min(weights)

    def test_sparser_than_uniform(self, mesh):
        traffic = make_application_traffic("fluidanimate", mesh, seed=1)
        matrix = traffic.traffic_matrix()
        pairs_per_source = len([1 for (s, _d) in matrix if s == 0])
        assert pairs_per_source < mesh.num_nodes - 1

    def test_load_factor_exposed(self, mesh):
        traffic = make_application_traffic("lu", mesh, seed=0)
        assert traffic.load_factor == application_spec("lu").load_factor
