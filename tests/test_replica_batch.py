"""Batched replica execution: kernel contract, grouping, cache identity.

The tentpole invariant these tests pin: executing R seed-replicas of one
structurally identical spec through a single multi-replica kernel pass
(:func:`repro.sim.backends.batched.run_replica_group`, reached from the
batch engine via ``replica_batch=N``) produces results -- and cache bytes
-- *identical* to running each replica solo through the vectorized
backend.  Grouping is a pure scheduling optimization; nothing observable
may change.

Sections:

* ``TestReplicaGroupContract`` -- run_replica_group vs solo runs, fast
  and bit-exact modes, both shipped policies, scenario timelines.
* ``TestStructuralKeyGrouping`` -- hypothesis property: the structural
  key partitions any mixed grid exactly (same key iff canonical config
  minus seed matches), and ``_plan_units`` emits every task exactly once
  in groups of at most ``replica_batch``.
* ``TestGroupedCacheByteIdentity`` -- grouped sweeps write byte-identical
  caches to ungrouped ones, including through a mid-grid kill/resume.
* ``TestSetupMemo`` -- the warm-worker setup memo reuses networks and
  route tables without changing results.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.analysis.runner import (  # noqa: E402
    build_network,
    build_packet_source,
    resolve_placement,
    run_experiment,
)
from repro.energy.model import EnergyModel  # noqa: E402
from repro.exec.batch import (  # noqa: E402
    ABORT_AFTER_CHUNKS_ENV,
    ChunkAbort,
    ExperimentBatch,
    clear_setup_memo,
)
from repro.exec.cache import (  # noqa: E402
    ResultCache,
    canonical_config,
    structural_config,
    structural_key,
)
from repro.scenario.spec import ScenarioSpec  # noqa: E402
from repro.sim.backends.batched import (  # noqa: E402
    BatchedBackend,
    ReplicaRun,
    run_replica_group,
)
from repro.spec import ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec  # noqa: E402

SEEDS = (3, 7, 11, 19)

#: One stateless model shared by solo and grouped paths, mirroring the
#: engine's ``_DEFAULT_ENERGY_MODEL`` behaviour.
ENERGY = EnergyModel()


def _spec(seed: int, policy: str = "elevator_first", rate: float = 0.01,
          backend: str = "vectorized", bit_exact: bool = False,
          scenario=None) -> ExperimentSpec:
    spec = ExperimentSpec(
        placement=PlacementSpec(
            name="replica-tiny", mesh=(3, 3, 2), columns=((0, 0), (2, 2))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
        sim=SimSpec(
            warmup_cycles=20, measurement_cycles=80, drain_cycles=120,
            seed=seed, backend=backend, bit_exact=bit_exact,
        ),
        scenario=scenario,
    ).with_(policy=policy)
    return spec


def _replica_for(spec: ExperimentSpec) -> ReplicaRun:
    placement = resolve_placement(spec)
    network = build_network(spec, placement=placement)
    source = build_packet_source(spec, placement)
    return ReplicaRun(
        network=network,
        packet_source=source,
        scenario=spec.scenario,
        scenario_seed=spec.sim.seed,
        energy_model=ENERGY,
    )


def _result_fields(result) -> dict:
    stats = result.stats
    return {
        "summary": result.summary(),
        "drain_cycles_used": result.drain_cycles_used,
        "latencies": list(stats.latencies),
        "latency_samples_seen": stats.latency_samples_seen,
        "router_traversals": stats.router_traversals,
        "horizontal_link_traversals": stats.horizontal_link_traversals,
        "vertical_link_traversals": stats.vertical_link_traversals,
        "elevator_assignments": stats.elevator_assignments,
        "total_energy": result.total_energy,
        "energy_per_flit": result.energy_per_flit,
    }


class TestReplicaGroupContract:
    @pytest.mark.parametrize("bit_exact", [False, True])
    @pytest.mark.parametrize("policy", ["elevator_first", "cda"])
    def test_group_matches_solo_runs(self, policy, bit_exact):
        specs = [
            _spec(seed, policy=policy, bit_exact=bit_exact) for seed in SEEDS
        ]
        solo = [_result_fields(run_experiment(spec)) for spec in specs]

        grouped_results = run_replica_group(
            [_replica_for(spec) for spec in specs],
            warmup_cycles=specs[0].sim.warmup_cycles,
            measurement_cycles=specs[0].sim.measurement_cycles,
            drain_cycles=specs[0].sim.drain_cycles,
            bit_exact=bit_exact,
        )
        grouped = [_result_fields(result) for result in grouped_results]
        assert grouped == solo

    def test_scenario_group_matches_solo_runs(self):
        scenario = ScenarioSpec.from_dict({
            "events": [
                {"kind": "rate_ramp", "cycle": 10, "end_cycle": 60,
                 "start_rate": 0.01, "end_rate": 0.02},
            ]
        })
        specs = [_spec(seed, scenario=scenario) for seed in SEEDS[:3]]
        solo = [_result_fields(run_experiment(spec)) for spec in specs]
        grouped_results = run_replica_group(
            [_replica_for(spec) for spec in specs],
            warmup_cycles=specs[0].sim.warmup_cycles,
            measurement_cycles=specs[0].sim.measurement_cycles,
            drain_cycles=specs[0].sim.drain_cycles,
        )
        assert [_result_fields(r) for r in grouped_results] == solo

    def test_single_replica_is_the_vectorized_path(self):
        spec = _spec(7)
        solo = _result_fields(run_experiment(spec))
        [result] = run_replica_group(
            [_replica_for(spec)],
            warmup_cycles=spec.sim.warmup_cycles,
            measurement_cycles=spec.sim.measurement_cycles,
            drain_cycles=spec.sim.drain_cycles,
        )
        fields = _result_fields(result)
        # backend_name is presentation-only and absent from summaries.
        assert fields == solo
        assert result.backend_name == "batched"

    def test_backend_registered_as_vectorized_subclass(self):
        from repro.sim.backends import resolve_backend
        from repro.sim.backends.vectorized import VectorizedBackend

        backend = resolve_backend("batched")
        assert isinstance(backend, BatchedBackend)
        assert isinstance(backend, VectorizedBackend)

    def test_empty_group_returns_empty(self):
        assert run_replica_group(
            [], warmup_cycles=10, measurement_cycles=10, drain_cycles=10
        ) == []

    def test_invalid_cycles_raise(self):
        with pytest.raises(ValueError, match="invalid cycle configuration"):
            run_replica_group(
                [_replica_for(_spec(1))],
                warmup_cycles=10, measurement_cycles=0, drain_cycles=10,
            )

    def test_structurally_different_replicas_raise(self):
        small = ExperimentSpec(
            placement=PlacementSpec(
                name="replica-small", mesh=(2, 2, 2), columns=((0, 0),)
            ),
            traffic=TrafficSpec(pattern="uniform", injection_rate=0.01),
            sim=SimSpec(warmup_cycles=20, measurement_cycles=80,
                        drain_cycles=120, seed=1, backend="vectorized"),
        )
        with pytest.raises(ValueError, match="structurally identical"):
            run_replica_group(
                [_replica_for(_spec(1)), _replica_for(small)],
                warmup_cycles=20, measurement_cycles=80, drain_cycles=120,
            )


# ---------------------------------------------------------------------- #
# Structural-key grouping partition (hypothesis)
# ---------------------------------------------------------------------- #
def _mixed_grid(seeds, rates, backends):
    return [
        _spec(seed, rate=rate, backend=backend)
        for backend in backends
        for rate in rates
        for seed in seeds
    ]


class TestStructuralKeyGrouping:
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1, max_size=6, unique=True,
        ),
        rates=st.lists(
            st.sampled_from([0.005, 0.01, 0.02]),
            min_size=1, max_size=2, unique=True,
        ),
        backends=st.lists(
            st.sampled_from(["vectorized", "batched", "optimized", "reference"]),
            min_size=1, max_size=3, unique=True,
        ),
        replica_batch=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_plan_units_partitions_any_mixed_grid(
        self, seeds, rates, backends, replica_batch
    ):
        specs = _mixed_grid(seeds, rates, backends)
        batch = ExperimentBatch(specs, replica_batch=replica_batch)
        _, _, _, _, pending = batch._scan()
        tasks = list(pending.values())
        units = batch._plan_units(tasks)

        flattened = []
        for unit in units:
            members = list(getattr(unit, "tasks", (unit,)))
            flattened.extend(members)
            if len(members) > 1:
                # Groups: bounded width, one structural key, kernel family.
                assert 2 <= len(members) <= replica_batch
                keys = {
                    structural_key(task.spec, extra=batch._key_extra())
                    for task in members
                }
                assert len(keys) == 1
                for task in members:
                    assert task.spec.sim.backend in ("vectorized", "batched")
        # Exact partition: every pending task appears exactly once.
        assert sorted(task.key for task in flattened) == sorted(
            task.key for task in tasks
        )

    @given(
        seed_a=st.integers(min_value=0, max_value=1000),
        seed_b=st.integers(min_value=0, max_value=1000),
        rate_a=st.sampled_from([0.005, 0.01]),
        rate_b=st.sampled_from([0.005, 0.01]),
    )
    @settings(max_examples=50, deadline=None)
    def test_structural_key_ignores_exactly_the_seed(
        self, seed_a, seed_b, rate_a, rate_b
    ):
        spec_a = _spec(seed_a, rate=rate_a)
        spec_b = _spec(seed_b, rate=rate_b)
        same_key = structural_key(spec_a) == structural_key(spec_b)
        assert same_key == (structural_config(spec_a) == structural_config(spec_b))
        assert same_key == (rate_a == rate_b)
        # The structural config is the canonical config minus the seed.
        canonical = canonical_config(spec_a)
        canonical["sim"].pop("seed", None)
        structural = structural_config(spec_a)
        assert "seed" not in structural["sim"]
        assert structural == canonical


# ---------------------------------------------------------------------- #
# Grouped execution writes byte-identical caches
# ---------------------------------------------------------------------- #
def _seed_grid():
    """A multi-seed grid with per-spec seeds (the replica workload)."""
    return [
        _spec(seed, policy=policy, rate=rate)
        for policy in ("elevator_first", "cda")
        for rate in (0.005, 0.01)
        for seed in (1, 2, 3)
    ]


def _cache_bytes(directory: str) -> dict:
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
        if name.startswith(("result-", "design-"))
    }


class TestGroupedCacheByteIdentity:
    def test_grouped_sweep_cache_matches_ungrouped(self, tmp_path):
        grid = _seed_grid()
        plain_dir = str(tmp_path / "plain")
        ExperimentBatch(grid, result_cache=ResultCache(plain_dir)).run()

        grouped_dir = str(tmp_path / "grouped")
        batch = ExperimentBatch(
            grid, result_cache=ResultCache(grouped_dir), replica_batch=3
        )
        outcomes = batch.run()
        assert batch.last_replica_groups == 4  # 2 policies x 2 rates
        assert batch.last_executed == len(grid)
        assert len(outcomes) == len(grid)
        assert _cache_bytes(grouped_dir) == _cache_bytes(plain_dir)

    def test_killed_grouped_run_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        grid = _seed_grid()
        plain_dir = str(tmp_path / "plain")
        ExperimentBatch(grid, result_cache=ResultCache(plain_dir)).run()

        grouped_dir = str(tmp_path / "grouped")
        monkeypatch.setenv(ABORT_AFTER_CHUNKS_ENV, "1")
        with pytest.raises(ChunkAbort):
            ExperimentBatch(
                grid, result_cache=ResultCache(grouped_dir),
                replica_batch=3, chunk_size=4,
            ).run()
        monkeypatch.delenv(ABORT_AFTER_CHUNKS_ENV)
        # The kill left a partial cache behind.
        partial = _cache_bytes(grouped_dir)
        assert 0 < len(partial) < len(_cache_bytes(plain_dir))

        resumed = ExperimentBatch(
            grid, result_cache=ResultCache(grouped_dir),
            replica_batch=3, chunk_size=4,
        )
        outcomes = resumed.run()
        assert len(outcomes) == len(grid)
        assert _cache_bytes(grouped_dir) == _cache_bytes(plain_dir)

    def test_mixed_backend_grid_groups_only_kernel_family(self, tmp_path):
        grid = [
            _spec(seed, backend=backend)
            for backend in ("vectorized", "optimized")
            for seed in (1, 2, 3)
        ]
        plain_dir = str(tmp_path / "plain")
        ExperimentBatch(grid, result_cache=ResultCache(plain_dir)).run()
        grouped_dir = str(tmp_path / "grouped")
        batch = ExperimentBatch(
            grid, result_cache=ResultCache(grouped_dir), replica_batch=4
        )
        batch.run()
        assert batch.last_replica_groups == 1  # only the vectorized seeds
        assert _cache_bytes(grouped_dir) == _cache_bytes(plain_dir)


# ---------------------------------------------------------------------- #
# Warm-worker setup memoization
# ---------------------------------------------------------------------- #
class TestSetupMemo:
    def test_memo_hits_on_rerun_and_results_match(self, tmp_path):
        clear_setup_memo()
        grid = [_spec(seed) for seed in (1, 2, 3)]
        cold_dir = str(tmp_path / "cold")
        cold = ExperimentBatch(grid, result_cache=ResultCache(cold_dir))
        cold.run()
        assert cold.last_memo_misses >= 1

        warm_dir = str(tmp_path / "warm")
        warm = ExperimentBatch(grid, result_cache=ResultCache(warm_dir))
        warm.run()
        assert warm.last_memo_hits >= 1
        assert _cache_bytes(warm_dir) == _cache_bytes(cold_dir)

    def test_timing_counters_accumulate(self, tmp_path):
        grid = [_spec(seed) for seed in (1, 2)]
        batch = ExperimentBatch(
            grid, result_cache=ResultCache(str(tmp_path / "cache"))
        )
        batch.run()
        assert batch.last_setup_s > 0.0
        assert batch.last_kernel_s > 0.0
        assert batch.last_memo_hits + batch.last_memo_misses >= len(grid)

        # Fully cached reruns execute nothing and reset the counters.
        rerun = ExperimentBatch(
            grid, result_cache=ResultCache(str(tmp_path / "cache"))
        )
        rerun.run()
        assert rerun.last_executed == 0
        assert rerun.last_setup_s == 0.0
        assert rerun.last_kernel_s == 0.0
