"""Tests for the CLI's machine-readable surfaces.

``--json`` must emit exactly one parseable JSON document on stdout for
``sweep`` / ``compare`` / ``run`` / ``scenario`` (no human tables mixed
in), ``optimize`` must fan multi-document spec files over the design
batch, and ``cache migrate`` must carry JSON entries into SQLite from the
command line.
"""

from __future__ import annotations

import json

import pytest

from repro.exec.cli import main
from repro.service.store import SqliteStore
from repro.spec import ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec

TINY = [
    "--mesh", "2", "2", "2", "--elevators", "0,0;1,1",
    "--warmup", "10", "--measure", "40", "--drain", "30",
]


def _capture_json(capsys):
    out = capsys.readouterr().out
    return json.loads(out)


def _spec_file(tmp_path, documents) -> str:
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(documents))
    return str(path)


class TestJsonOutput:
    def test_sweep_json(self, capsys):
        assert main([
            "sweep", *TINY, "--policies", "elevator_first,adele",
            "--rates", "0.001,0.002", "--json",
        ]) == 0
        document = _capture_json(capsys)
        assert document["command"] == "sweep"
        assert document["engine"]["executed"] + document["engine"]["cached"] == 4
        policies = [curve["policy"] for curve in document["curves"]]
        assert policies == ["elevator_first", "adele"]
        for curve in document["curves"]:
            assert len(curve["points"]) == 2
            assert curve["saturation_rate"] > 0

    def test_compare_json(self, capsys):
        assert main([
            "compare", *TINY, "--policies", "elevator_first,cda",
            "--rate", "0.002", "--json",
        ]) == 0
        document = _capture_json(capsys)
        assert document["command"] == "compare"
        assert document["baseline"] == "elevator_first"
        row = document["policies"]["cda"]
        assert "average_latency" in row and "average_latency_norm" in row

    def test_run_json(self, tmp_path, capsys):
        spec = ExperimentSpec(
            placement=PlacementSpec(
                name="cli-json", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
            ),
            traffic=TrafficSpec(pattern="uniform", injection_rate=0.002),
            sim=SimSpec(warmup_cycles=10, measurement_cycles=40, drain_cycles=30),
        )
        path = _spec_file(tmp_path, [spec.to_dict()])
        assert main(["run", "--spec", path, "--json"]) == 0
        document = _capture_json(capsys)
        assert document["command"] == "run"
        (outcome,) = document["outcomes"]
        assert outcome["spec"]["traffic"]["injection_rate"] == 0.002
        assert "average_latency" in outcome["summary"]
        assert isinstance(outcome["key"], str) and not outcome["from_cache"]

    def test_scenario_json(self, tmp_path, capsys):
        spec = ExperimentSpec(
            placement=PlacementSpec(
                name="cli-json", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
            ),
            traffic=TrafficSpec(pattern="uniform", injection_rate=0.002),
            sim=SimSpec(warmup_cycles=10, measurement_cycles=40, drain_cycles=30),
        )
        document = spec.to_dict()
        document["scenario"] = {
            "events": [
                {"kind": "rate_ramp", "cycle": 10, "end_cycle": 30,
                 "start_rate": 0.002, "end_rate": 0.001}
            ]
        }
        path = _spec_file(tmp_path, [document])
        assert main(["scenario", "--spec", path, "--json"]) == 0
        parsed = _capture_json(capsys)
        assert parsed["command"] == "scenario"
        assert len(parsed["outcomes"]) == 1

    def test_json_reruns_hit_the_sqlite_cache(self, tmp_path, capsys):
        args = [
            "compare", *TINY, "--policies", "elevator_first",
            "--rate", "0.002", "--json",
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
        ]
        assert main(args) == 0
        first = _capture_json(capsys)
        assert main(args) == 0
        second = _capture_json(capsys)
        # The engine block shape is pinned: counters plus the observability
        # timings/memo counts that ride along in every document (the timing
        # floats themselves are nondeterministic, so only their type is).
        expected_keys = {
            "executed", "cached", "workers",
            "setup_s", "kernel_s", "memo_hits", "memo_misses",
        }
        for engine, executed, cached in (
            (first["engine"], 1, 0), (second["engine"], 0, 1),
        ):
            assert set(engine) == expected_keys
            assert engine["executed"] == executed
            assert engine["cached"] == cached
            assert engine["workers"] == 1
            assert isinstance(engine["setup_s"], float)
            assert isinstance(engine["kernel_s"], float)
            assert isinstance(engine["memo_hits"], int)
            assert isinstance(engine["memo_misses"], int)
        # One executed task means exactly one setup-memo lookup; whether it
        # hits depends on what earlier tests warmed in this process.
        first_memo = first["engine"]["memo_hits"] + first["engine"]["memo_misses"]
        assert first_memo >= 1
        assert second["engine"] == {
            **second["engine"], "setup_s": 0.0, "kernel_s": 0.0,
            "memo_hits": 0, "memo_misses": 0,
        }
        assert first["policies"] == second["policies"]


class TestOptimizeGrid:
    def test_multi_document_spec_file_fans_out(self, tmp_path, capsys):
        placement = {
            "name": "cli-grid", "mesh": [2, 2, 2], "columns": [[0, 0], [1, 1]]
        }
        path = _spec_file(tmp_path, [
            {"placement": placement, "optimizer": "greedy-swap"},
            {"placement": placement, "optimizer": "greedy-swap",
             "max_subset_size": 1},
        ])
        assert main(["optimize", "--spec", path, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 optimized, 0 served from cache (2 workers)" in out

    def test_single_document_output_is_unchanged(self, tmp_path, capsys):
        # CI smoke greps these exact strings; the grid path must not leak
        # into single serial runs.
        args = [
            "optimize", "--mesh", "2", "2", "2", "--elevators", "0,0;1,1",
            "--optimizer", "greedy-swap", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        assert "[repro.exec] design optimized" in capsys.readouterr().out
        assert main(args) == 0
        assert "[repro.exec] design served from cache" in capsys.readouterr().out


class TestCacheMigrateCommand:
    def test_migrate_via_cli(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "result-abc.json").write_text(
            json.dumps({"summary": {"average_latency": 4.0}})
        )
        assert main(["cache", "migrate", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "migrated 1 result(s) and 0 design(s)" in out
        store = SqliteStore(str(cache_dir / "repro.sqlite3"))
        try:
            assert store.get_result("abc") == {"average_latency": 4.0}
        finally:
            store.close()

    def test_migrate_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="not a directory"):
            main(["cache", "migrate", "--cache-dir", str(tmp_path / "nope")])
