"""PhaseStats / SimulationStats merge edge cases and engine bit-identity.

The satellite contract of the scenario subsystem's statistics layer:

* empty phases merge cleanly (and absorb into stats that lack them);
* a phase boundary exactly at warm-up end produces an empty-but-present
  baseline window;
* reservoir-bounded latencies stay bounded when merged across phases;
* a scenario-attached batch is bit-identical serial vs. 4 workers vs. a
  warm disk cache.
"""

from __future__ import annotations

import math

import pytest

from repro.exec.batch import ExperimentBatch
from repro.exec.cache import ResultCache
from repro.scenario import (
    BASELINE_PHASE_LABEL,
    ElevatorFault,
    ScenarioSpec,
    StatsMarker,
    TrafficPhase,
)
from repro.analysis.runner import run_experiment
from repro.sim.stats import PhaseStats, SimulationStats
from repro.spec import ExperimentSpec, PlacementSpec, PolicySpec, SimSpec, TrafficSpec


def _spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        placement=PlacementSpec(name="phase-test", mesh=(3, 3, 2),
                                columns=((0, 0), (2, 2))),
        policy=PolicySpec(name="elevator_first"),
        traffic=TrafficSpec(pattern="uniform", injection_rate=0.02),
        sim=SimSpec(
            warmup_cycles=30, measurement_cycles=150, drain_cycles=200, seed=11
        ),
    )
    return spec.with_(**overrides) if overrides else spec


class TestPhaseMergeEdgeCases:
    def test_empty_phases_merge(self):
        a = PhaseStats(label="x", start_cycle=0, end_cycle=10)
        b = PhaseStats(label="x", start_cycle=0, end_cycle=10)
        a.merge(b)
        assert a.packets_created == 0
        assert a.latencies == []
        assert a.average_latency == math.inf
        assert a.delivery_ratio == 1.0
        assert a.cycles == 10

    def test_open_phase_merge_keeps_window_open(self):
        a = PhaseStats(label="x", start_cycle=5, end_cycle=None)
        b = PhaseStats(label="x", start_cycle=3, end_cycle=50)
        a.merge(b)
        assert a.start_cycle == 3
        assert a.end_cycle is None

    def test_merge_into_stats_without_phases_absorbs(self):
        into = SimulationStats()
        other = SimulationStats()
        other.begin_phase("p0", 0)
        other.record_packet_created(_FakePacket(), 5)
        other.end_phase(40)
        into.merge(other)
        assert [phase.label for phase in into.phases] == ["p0"]
        assert into.phases[0].packets_created == 1
        # Absorbing again accumulates index-aligned.
        into.merge(other)
        assert into.phases[0].packets_created == 2

    def test_reservoir_bound_holds_across_phase_merges(self):
        a = PhaseStats(label="x", start_cycle=0, latency_reservoir_size=8)
        b = PhaseStats(label="x", start_cycle=0, latency_reservoir_size=8)
        for i in range(30):
            a._observe_latency(float(i))
            b._observe_latency(float(100 + i))
        assert len(a.latencies) == 8 and a.latency_samples_seen == 30
        a.merge(b)
        assert len(a.latencies) == 8
        assert a.latency_samples_seen == 60
        # Merging is deterministic: a fresh repeat produces the same samples.
        c = PhaseStats(label="x", start_cycle=0, latency_reservoir_size=8)
        d = PhaseStats(label="x", start_cycle=0, latency_reservoir_size=8)
        for i in range(30):
            c._observe_latency(float(i))
            d._observe_latency(float(100 + i))
        c.merge(d)
        assert c.latencies == a.latencies

    def test_energy_merges_additively_or_resets_to_none(self):
        a = PhaseStats(label="x", start_cycle=0, energy_j=1.5)
        b = PhaseStats(label="x", start_cycle=0, energy_j=0.5)
        a.merge(b)
        assert a.energy_j == pytest.approx(2.0)
        c = PhaseStats(label="x", start_cycle=0, energy_j=1.5)
        c.merge(PhaseStats(label="x", start_cycle=0))
        assert c.energy_j is None


class _FakePacket:
    creation_cycle = 5
    elevator_index = None
    hops = 0
    vertical_hops = 0
    latency = 7.0
    network_latency = 5.0


class TestPhaseWindows:
    def test_boundary_exactly_at_warmup_end(self):
        # The baseline window [0, warmup) exists but is empty: every record
        # gate excludes pre-measurement events, and the first marker fires
        # exactly when measurement starts.
        spec = _spec(scenario=ScenarioSpec(events=(
            StatsMarker(cycle=30, label="measured"),
        )))
        result = run_experiment(spec)
        baseline, measured = result.stats.phases
        assert baseline.label == BASELINE_PHASE_LABEL
        assert (baseline.start_cycle, baseline.end_cycle) == (0, 30)
        assert baseline.packets_created == 0
        assert baseline.packets_delivered == 0
        assert baseline.latencies == []
        assert measured.start_cycle == 30
        assert measured.packets_created == result.stats.packets_created
        assert measured.packets_delivered == result.stats.packets_delivered

    def test_phase_counters_partition_whole_run_totals(self):
        spec = _spec(scenario=ScenarioSpec(events=(
            StatsMarker(cycle=80, label="a"),
            TrafficPhase(cycle=120, pattern="shuffle", injection_rate=0.03),
        )))
        result = run_experiment(spec)
        stats = result.stats
        for field in (
            "packets_created",
            "packets_delivered",
            "flits_injected",
            "flits_delivered",
            "total_latency",
            "horizontal_link_traversals",
            "vertical_link_traversals",
        ):
            total = getattr(stats, field)
            partitioned = sum(getattr(phase, field) for phase in stats.phases)
            assert partitioned == pytest.approx(total), field
        assert sum(p.router_traversals for p in stats.phases) == sum(
            stats.router_traversals.values()
        )
        assert sum(p.energy_j for p in stats.phases) == pytest.approx(
            result.total_energy
        )


class TestBatchBitIdentity:
    def test_serial_equals_workers_equals_warm_cache(self, tmp_path):
        scenario = ScenarioSpec(events=(
            ElevatorFault(cycle=60, elevator=0),
            TrafficPhase(cycle=100, pattern="shuffle", injection_rate=0.03),
        ))
        specs = [
            _spec(policy=policy, scenario=scenario, injection_rate=rate)
            for policy in ("elevator_first", "adele")
            for rate in (0.01, 0.02)
        ]

        serial = ExperimentBatch(specs, workers=1, base_seed=3).run()
        parallel = ExperimentBatch(specs, workers=4, base_seed=3).run()
        cache_dir = str(tmp_path / "cache")
        cold = ExperimentBatch(
            specs, workers=2, base_seed=3, result_cache=ResultCache(cache_dir)
        ).run()
        warm_batch = ExperimentBatch(
            specs, workers=1, base_seed=3, result_cache=ResultCache(cache_dir)
        )
        warm = warm_batch.run()

        rows = [[outcome.summary for outcome in run]
                for run in (serial, parallel, cold, warm)]
        assert rows[0] == rows[1] == rows[2] == rows[3]
        assert warm_batch.last_executed == 0
        assert all(outcome.from_cache for outcome in warm)
        # Phase rows survived the disk round trip bit for bit.
        assert all("phases" in row for row in rows[0])
