"""Tests for the durable job queue: dedup, retries, crash-resume.

Exercises the queue purely at the store level (completions are injected
with synthetic summaries, no simulations run), plus one subprocess test
where a worker claims a task and is hard-killed mid-run to prove that
``recover_running`` / ``requeue_stale`` resume the sweep without losing
completed work or looping forever on a crashing task.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import pytest

from repro.exec.batch import key_extra_for
from repro.exec.cache import config_key, derive_seed
from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    job_hash_for,
)
from repro.service.store import SqliteStore
from repro.spec import ExperimentSpec, PlacementSpec, TrafficSpec


def _spec(rate: float = 0.002, policy: str = "elevator_first") -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="queue-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
    ).with_(policy=policy)


@pytest.fixture
def store(tmp_path) -> SqliteStore:
    s = SqliteStore(str(tmp_path / "queue.sqlite3"))
    yield s
    s.close()


@pytest.fixture
def queue(store) -> JobQueue:
    return JobQueue(store)


# ---------------------------------------------------------------------- #
# Submission and dedup
# ---------------------------------------------------------------------- #
class TestSubmit:
    def test_submit_creates_queued_tasks(self, queue):
        receipt = queue.submit([_spec(0.001), _spec(0.002)])
        assert receipt.created
        assert receipt.job.state == QUEUED
        assert receipt.job.num_tasks == 2
        assert receipt.job.counts[QUEUED] == 2

    def test_single_spec_is_accepted(self, queue):
        receipt = queue.submit(_spec())
        assert receipt.job.num_tasks == 1

    def test_identical_resubmission_dedups(self, queue):
        first = queue.submit([_spec(0.001), _spec(0.002)], base_seed=7)
        second = queue.submit([_spec(0.001), _spec(0.002)], base_seed=7)
        assert first.created and not second.created
        assert first.job.id == second.job.id

    def test_different_seed_is_a_different_job(self, queue):
        first = queue.submit([_spec()], base_seed=1)
        second = queue.submit([_spec()], base_seed=2)
        assert second.created
        assert first.job.id != second.job.id

    def test_task_keys_match_direct_batch_keys(self, queue):
        # The service must key tasks exactly like ExperimentBatch, or the
        # serial == parallel == service bit-identity contract breaks.
        spec = _spec()
        queue.submit([spec], base_seed=9)
        effective = spec.with_(seed=derive_seed(spec, 9))
        expected = config_key(effective, extra=key_extra_for(None))
        (task,) = queue.tasks(1)
        assert task.key == expected
        assert task.spec == effective

    def test_warm_submission_is_instantly_done(self, queue, store):
        spec = _spec()
        key = config_key(spec, extra=key_extra_for(None))
        store.put_result(key, None, {"average_latency": 5.0})
        receipt = queue.submit([spec])
        assert receipt.job.state == DONE
        assert queue.results(receipt.job.id)[0]["summary"] == {
            "average_latency": 5.0
        }

    def test_empty_submission_is_rejected(self, queue):
        with pytest.raises(ValueError, match="at least one"):
            queue.submit([])

    def test_job_hash_depends_on_order(self):
        assert job_hash_for(["a", "b"]) != job_hash_for(["b", "a"])


# ---------------------------------------------------------------------- #
# Claim / complete / fail lifecycle
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_claim_complete_round_trip(self, queue):
        receipt = queue.submit([_spec(0.001), _spec(0.002)])
        task = queue.claim("w1")
        assert task is not None and task.state == RUNNING and task.attempts == 1
        assert queue.job(receipt.job.id).state == RUNNING
        queue.complete(task, {"average_latency": 1.0})
        other = queue.claim("w1")
        queue.complete(other, {"average_latency": 2.0})
        job = queue.job(receipt.job.id)
        assert job.state == DONE
        summaries = [doc["summary"] for doc in queue.results(job.id)]
        assert summaries == [{"average_latency": 1.0}, {"average_latency": 2.0}]

    def test_claims_hand_out_each_task_once(self, queue):
        queue.submit([_spec(0.001), _spec(0.002)])
        first, second = queue.claim("w1"), queue.claim("w2")
        assert {first.index, second.index} == {0, 1}
        assert queue.claim("w3") is None

    def test_completion_satisfies_same_key_tasks_across_jobs(self, queue):
        queue.submit([_spec()])
        # Same spec under a different job hash (extra distinct task).
        receipt = queue.submit([_spec(), _spec(0.009)])
        task = queue.claim("w1")
        queue.complete(task, {"average_latency": 3.0})
        # The overlapping task in job 2 was absorbed, never to be claimed.
        states = [t.state for t in queue.tasks(receipt.job.id)]
        assert states[0] == DONE
        remaining = queue.claim("w1")
        assert remaining is not None and remaining.index == 1

    def test_failed_attempts_requeue_until_the_limit(self, store):
        queue = JobQueue(store, max_attempts=2)
        receipt = queue.submit([_spec()])
        task = queue.claim("w1")
        queue.fail(task, "boom 1")
        (requeued,) = queue.tasks(receipt.job.id)
        assert requeued.state == QUEUED and requeued.attempts == 1
        task = queue.claim("w1")
        assert task.attempts == 2
        queue.fail(task, "boom 2")
        job = queue.job(receipt.job.id)
        assert job.state == FAILED
        assert queue.tasks(job.id)[0].error == "boom 2"
        assert queue.claim("w1") is None

    def test_cancel_stops_queued_tasks(self, queue):
        receipt = queue.submit([_spec(0.001), _spec(0.002)])
        running = queue.claim("w1")
        cancelled = queue.cancel(receipt.job.id)
        assert cancelled.counts[CANCELLED] == 1
        # The running task finishes its attempt normally.
        queue.complete(running, {"average_latency": 1.0})
        assert queue.job(receipt.job.id).state == CANCELLED

    def test_unknown_job_raises_key_error(self, queue):
        with pytest.raises(KeyError):
            queue.job(999)
        with pytest.raises(KeyError):
            queue.cancel(999)


# ---------------------------------------------------------------------- #
# Crash resume
# ---------------------------------------------------------------------- #
_CRASH_WORKER = textwrap.dedent(
    """
    import os, sys
    from repro.service.queue import JobQueue
    from repro.service.store import SqliteStore

    queue = JobQueue(SqliteStore(sys.argv[1]))
    task = queue.claim("crasher")
    assert task is not None
    # Simulate a hard crash mid-simulation: no fail(), no complete(),
    # no clean shutdown -- the claim row is left dangling.
    os._exit(42)
    """
)


class TestCrashResume:
    def _crash_one_claim(self, store):
        result = subprocess.run(
            [sys.executable, "-c", _CRASH_WORKER, store.path],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 42

    def test_recover_running_requeues_killed_workers_task(self, queue, store):
        receipt = queue.submit([_spec(0.001), _spec(0.002)])
        done = queue.claim("w1")
        queue.complete(done, {"average_latency": 1.0})
        self._crash_one_claim(store)
        counts = queue.counts()
        assert counts[RUNNING] == 1 and counts[DONE] == 1
        # Daemon restart: the orphaned claim is re-queued, completed work
        # is kept, and attempts are preserved (it was claimed once).
        assert queue.recover_running() == 1
        task = queue.claim("w2")
        assert task is not None and task.attempts == 2
        assert queue.results(receipt.job.id)[0]["summary"] == {
            "average_latency": 1.0
        }

    def test_requeue_stale_only_touches_expired_leases(self, queue, store):
        queue.submit([_spec()])
        self._crash_one_claim(store)
        # A generous lease: the dead worker's claim is still fresh.
        assert queue.requeue_stale(3600.0) == 0
        # A zero lease expires it immediately.
        assert queue.requeue_stale(0.0) == 1
        assert queue.claim("w2") is not None

    def test_crash_looping_task_exhausts_attempts(self, store):
        queue = JobQueue(store, max_attempts=2)
        receipt = queue.submit([_spec()])
        for _ in range(2):
            self._crash_one_claim(store)
            queue.recover_running()
        # Two claims burned; the next claim fails the task in place
        # instead of handing it out a third time.
        assert queue.claim("w9") is None
        assert queue.job(receipt.job.id).state == FAILED


# ---------------------------------------------------------------------- #
# Sharded claims
# ---------------------------------------------------------------------- #
class TestShardedClaims:
    def _grid(self, n: int = 8):
        return [
            _spec(0.001 * (i + 1), policy)
            for policy in ("elevator_first", "cda")
            for i in range(n // 2)
        ]

    def test_sharded_queues_split_a_job_disjointly(self, store):
        from repro.exec.shard import ShardSpec

        specs = self._grid()
        JobQueue(store).submit(specs, base_seed=3)
        claimed = {}
        for index in range(1, 4):
            shard = ShardSpec(index=index, count=3)
            queue = JobQueue(store, shard=shard)
            while True:
                task = queue.claim(f"w{index}")
                if task is None:
                    break
                assert shard.owns(task.key)
                assert task.key not in claimed
                claimed[task.key] = index
                queue.complete(task, {"average_latency": 1.0})
        extra = key_extra_for(None)
        expected = {
            config_key(spec.with_(seed=derive_seed(spec, 3)), extra=extra)
            for spec in specs
        }
        assert set(claimed) == expected

    def test_sharded_queue_leaves_foreign_tasks_queued(self, store):
        from repro.exec.shard import ShardSpec

        specs = self._grid()
        receipt = JobQueue(store).submit(specs, base_seed=3)
        shard = ShardSpec(index=1, count=3)
        queue = JobQueue(store, shard=shard)
        owned = 0
        while queue.claim("w1") is not None:
            owned += 1
        assert 0 < owned < len(specs)
        # Foreign tasks are untouched -- still claimable by the others.
        counts = JobQueue(store).job(receipt.job.id).counts
        assert counts[QUEUED] == len(specs) - owned

    def test_unsharded_queue_drains_everything(self, store):
        specs = self._grid(4)
        JobQueue(store).submit(specs)
        queue = JobQueue(store)
        seen = 0
        while True:
            task = queue.claim("w")
            if task is None:
                break
            seen += 1
            queue.complete(task, {"average_latency": 1.0})
        assert seen == len(specs)
