"""Drain/saturation edge cases guarding the parallel runner's aggregation.

The batch engine serializes ``SimulationResult.summary()`` rows to JSON and
replays them from cache, so degenerate runs -- zero packets created, or a
network that never drains -- must produce well-defined values (``inf``
latency, delivery ratios) that survive the round trip unchanged.
"""

from __future__ import annotations

import math

from repro.analysis.runner import ExperimentConfig, run_experiment
from repro.exec.batch import ExperimentBatch, run_batch
from repro.exec.cache import ResultCache
from repro.sim.engine import SimulationResult
from repro.sim.stats import SimulationStats
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D


def _tiny_config(**overrides) -> ExperimentConfig:
    placement = ElevatorPlacement(Mesh3D(2, 2, 2), [(0, 0)], name="edge-tiny")
    defaults = dict(
        placement="edge-tiny",
        placement_obj=placement,
        policy="elevator_first",
        traffic="uniform",
        injection_rate=0.05,
        warmup_cycles=10,
        measurement_cycles=100,
        drain_cycles=100,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _result_with(stats: SimulationStats) -> SimulationResult:
    return SimulationResult(
        stats=stats,
        warmup_cycles=0,
        measurement_cycles=10,
        drain_cycles_used=0,
        num_nodes=8,
        average_latency=stats.average_latency,
        throughput=0.0,
    )


class TestZeroTraffic:
    def test_delivery_ratio_is_one_when_nothing_was_created(self):
        stats = SimulationStats()
        assert stats.packets_created == 0
        assert stats.delivery_ratio == 1.0
        result = _result_with(stats)
        assert result.saturated is False
        assert math.isinf(result.average_latency)

    def test_zero_injection_rate_run(self):
        result = run_experiment(_tiny_config(injection_rate=0.0))
        assert result.stats.packets_created == 0
        assert result.stats.delivery_ratio == 1.0
        assert result.saturated is False
        assert math.isinf(result.average_latency)
        assert result.throughput == 0.0

    def test_zero_injection_summary_survives_the_batch_and_cache(self, tmp_path):
        config = _tiny_config(injection_rate=0.0)
        outcomes = run_batch([config], result_cache=ResultCache(str(tmp_path)))
        summary = outcomes[0].summary
        assert summary["packets_created"] == 0.0
        assert summary["delivery_ratio"] == 1.0
        assert math.isinf(summary["average_latency"])

        warm = ExperimentBatch([config], result_cache=ResultCache(str(tmp_path)))
        warm_outcomes = warm.run()
        assert warm.last_executed == 0
        assert warm_outcomes[0].summary == summary
        assert math.isinf(warm_outcomes[0].summary["average_latency"])


class TestNeverDrains:
    def test_saturated_flag_when_most_packets_never_arrive(self):
        stats = SimulationStats()
        stats.packets_created = 10
        stats.packets_delivered = 2
        assert stats.delivery_ratio == 0.2
        assert _result_with(stats).saturated is True

    def test_undelivered_packets_have_defined_metrics(self):
        stats = SimulationStats()
        stats.packets_created = 5
        assert stats.packets_delivered == 0
        assert stats.delivery_ratio == 0.0
        assert math.isinf(stats.average_latency)
        assert stats.average_hops == 0.0

    def test_oversaturated_network_with_no_drain_budget(self):
        # Far past saturation and drain_cycles=0: the network cannot drain,
        # so most measured packets never arrive -- the saturation heuristic
        # must trip and every summary value must stay finite or inf, not NaN.
        config = _tiny_config(
            injection_rate=0.5,
            buffer_depth=1,
            measurement_cycles=150,
            drain_cycles=0,
        )
        result = run_experiment(config)
        assert result.drain_cycles_used == 0
        assert result.stats.packets_created > 0
        assert result.stats.delivery_ratio < 0.5
        assert result.saturated is True
        summary = result.summary()
        assert all(not math.isnan(value) for value in summary.values())

    def test_saturated_summary_round_trips_through_the_cache(self, tmp_path):
        config = _tiny_config(
            injection_rate=0.5,
            buffer_depth=1,
            measurement_cycles=150,
            drain_cycles=0,
        )
        cold = run_batch([config], result_cache=ResultCache(str(tmp_path)))
        warm = run_batch([config], result_cache=ResultCache(str(tmp_path)))
        assert warm[0].from_cache
        assert warm[0].summary == cold[0].summary
        assert warm[0].summary["delivery_ratio"] < 0.5
