"""Tracer mechanics, recorders, exports, and span coverage end-to-end.

The coverage test is the acceptance criterion of the observability layer:
one in-process exercise of the stack (batch engine with a warm cache +
the HTTP service with a real job) must record spans for every hot
boundary family -- setup, kernel, cache, chunk flush, queue, HTTP -- so
``repro trace report`` actually shows where the time goes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exec.batch import ExperimentBatch
from repro.exec.cache import DiskDesignCache, ResultCache
from repro.obs.tracing import (
    JsonlRecorder,
    RingRecorder,
    SpanRecord,
    Tracer,
    chrome_trace_document,
    current_tracer,
    install_tracer,
    load_span_records,
    span,
    trace_report,
    uninstall_tracer,
)
from repro.service.client import ServiceClient
from repro.service.http import ServiceContext, make_server
from repro.service.queue import JobQueue
from repro.service.store import SqliteStore
from repro.service.workers import WorkerPool
from repro.spec import ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec


@pytest.fixture
def tracer():
    installed = install_tracer(Tracer(RingRecorder()))
    try:
        yield installed
    finally:
        uninstall_tracer()


def _spec(rate: float = 0.002) -> ExperimentSpec:
    return ExperimentSpec(
        placement=PlacementSpec(
            name="trace-tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1))
        ),
        traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
        sim=SimSpec(warmup_cycles=10, measurement_cycles=40, drain_cycles=30),
    )


class TestTracerMechanics:
    def test_span_nesting_records_depth_and_order(self, tracer):
        with span("outer", kind="test"):
            with span("inner"):
                pass
        records = tracer.spans()
        # Inner spans close (and record) first.
        assert [r.name for r in records] == ["inner", "outer"]
        assert records[0].depth == 1
        assert records[1].depth == 0
        assert records[1].args == {"kind": "test"}
        assert all(r.dur_us >= 0 for r in records)

    def test_span_is_a_noop_without_a_tracer(self):
        assert current_tracer() is None
        with span("ignored") as record:
            assert record is None

    def test_span_records_error_type(self, tracer):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.spans()
        assert record.args["error"] == "RuntimeError"

    def test_ring_recorder_is_bounded(self):
        tracer = Tracer(RingRecorder(capacity=3))
        install_tracer(tracer)
        try:
            for index in range(10):
                with span(f"s{index}"):
                    pass
        finally:
            uninstall_tracer()
        assert [r.name for r in tracer.spans()] == ["s7", "s8", "s9"]

    def test_jsonl_recorder_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlRecorder(path))
        install_tracer(tracer)
        try:
            with span("alpha", key="k1"):
                with span("beta"):
                    pass
        finally:
            uninstall_tracer()
            tracer.close()
        loaded = load_span_records(path)
        assert [r.name for r in loaded] == ["beta", "alpha"]
        assert loaded[1].args == {"key": "k1"}
        # A record survives dict round-tripping losslessly.
        for record in loaded:
            assert SpanRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()

    def test_malformed_jsonl_line_is_rejected_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "ts_us": 0, "dur_us": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_span_records(str(path))


class TestExports:
    def _records(self):
        return [
            SpanRecord(name="kernel.run", ts_us=10, dur_us=100, pid=1, tid=2),
            SpanRecord(name="setup.network", ts_us=0, dur_us=10, pid=1, tid=2),
            SpanRecord(name="kernel.run", ts_us=200, dur_us=300, pid=1, tid=3),
        ]

    def test_chrome_trace_document_shape(self):
        document = chrome_trace_document(self._records())
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        assert all(event["ph"] == "X" for event in events)
        # Sorted by (pid, tid, ts) so perfetto nests by containment.
        assert [(e["tid"], e["ts"]) for e in events] == [(2, 0), (2, 10), (3, 200)]
        json.dumps(document)  # must be pure-JSON serializable

    def test_trace_report_rows(self):
        rows = trace_report(self._records())
        assert [row["name"] for row in rows] == ["kernel.run", "setup.network"]
        kernel = rows[0]
        assert kernel["count"] == 2
        assert kernel["total_us"] == 400
        assert kernel["p50_us"] == 100
        assert kernel["p95_us"] == 300
        assert kernel["max_us"] == 300


class TestSpanCoverage:
    def test_stack_exercise_covers_every_boundary_family(self, tmp_path, tracer):
        # Batch engine against a warm disk cache: setup/kernel/cache/flush.
        batch = ExperimentBatch(
            [_spec(0.001), _spec(0.002)],
            result_cache=ResultCache(str(tmp_path / "cache")),
            design_cache=DiskDesignCache(str(tmp_path / "cache")),
            chunk_size=1,
        )
        batch.run()

        # The HTTP service with one real job: http/queue (+ worker-side
        # engine spans, recorded because workers are threads, not procs).
        store = SqliteStore(str(tmp_path / "service.sqlite3"))
        queue = JobQueue(store)
        pool = WorkerPool(store, workers=1, queue=queue, poll_interval=0.02)
        server = make_server(ServiceContext(store, queue, pool), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        pool.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            job_id = client.submit([_spec(0.003)])
            client.wait(job_id, timeout=120)
        finally:
            server.shutdown()
            server.server_close()
            pool.stop()
            store.close()
            thread.join(timeout=5)

        names = {record.name for record in tracer.spans()}
        required = {
            "setup.network", "kernel.run", "cache.get", "cache.put",
            "chunk.flush", "queue.claim", "queue.complete", "http.request",
        }
        assert required <= names, f"missing spans: {sorted(required - names)}"
        # And the report surfaces them: >= 6 distinct span names across
        # setup / kernel / cache / queue / http (the acceptance bar).
        report_names = {row["name"] for row in trace_report(tracer.spans())}
        assert len(report_names & required) >= 6
