"""DesignSpec: serialization, cache keying, disk round trips and the CLI."""

import json

import pytest

from repro.analysis import runner
from repro.analysis.runner import design_for, design_key_for
from repro.core.optimizers import DEFAULT_OFFLINE_AMOSA
from repro.exec.cache import DiskDesignCache, canonical_config, config_key
from repro.exec.cli import main as cli_main
from repro.registry import UnknownComponentError
from repro.spec import DesignSpec, ExperimentSpec, PlacementSpec

TINY_PLACEMENT = PlacementSpec(name="tiny", mesh=(2, 2, 2), columns=((0, 0), (1, 1)))

FAST_DESIGN = DesignSpec(
    placement=TINY_PLACEMENT,
    optimizer="random-search",
    options={"evaluations": 60, "seed": 2},
    max_subset_size=2,
)


# --------------------------------------------------------------------- #
# Validation and serialization
# --------------------------------------------------------------------- #
class TestDesignSpecValidation:
    def test_defaults(self):
        spec = DesignSpec()
        assert spec.traffic == "uniform"
        assert spec.optimizer == "amosa"
        assert spec.selection == "knee"
        assert spec.max_subset_size == 4

    def test_round_trip(self):
        spec = FAST_DESIGN.with_(selection="energy", traffic="shuffle")
        rebuilt = DesignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown design spec"):
            DesignSpec.from_dict({"optimiser": "amosa"})

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            DesignSpec(optimizer="")
        with pytest.raises(ValueError):
            DesignSpec(selection="balanced")
        with pytest.raises(ValueError):
            DesignSpec(max_subset_size=0)
        with pytest.raises(ValueError):
            DesignSpec(options={"x": object()})

    def test_optimizer_name_normalized(self):
        assert DesignSpec(optimizer="  AMOSA ").optimizer == "amosa"

    def test_none_max_subset_size_round_trips(self):
        spec = DesignSpec(max_subset_size=None)
        assert DesignSpec.from_dict(spec.to_dict()).max_subset_size is None


class TestExperimentSpecNesting:
    def test_default_spec_serialization_unchanged(self):
        data = ExperimentSpec().to_dict()
        assert "design" not in data
        assert set(data) == {"format", "placement", "policy", "traffic", "sim"}

    def test_nested_design_enters_serialization_without_placement(self):
        spec = ExperimentSpec().with_(design=FAST_DESIGN)
        data = spec.to_dict()
        assert "design" in data
        assert "placement" not in data["design"]
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.design is not None
        assert rebuilt.design.optimizer == "random-search"
        assert config_key(rebuilt) == config_key(spec)

    def test_design_splits_the_cache_key(self):
        base = ExperimentSpec()
        assert config_key(base) != config_key(base.with_(design=FAST_DESIGN))
        assert config_key(base.with_(design=FAST_DESIGN)) != config_key(
            base.with_(design=FAST_DESIGN.with_(selection="energy"))
        )

    def test_canonical_config_normalizes_design(self):
        from dataclasses import asdict

        explicit = ExperimentSpec().with_(
            design=DesignSpec(optimizer="AMOSA", options=asdict(DEFAULT_OFFLINE_AMOSA))
        )
        implicit = ExperimentSpec().with_(design=DesignSpec(optimizer="amosa"))
        assert canonical_config(explicit) == canonical_config(implicit)
        assert config_key(explicit) == config_key(implicit)

    def test_with_design_none_restores_default_key(self):
        spec = ExperimentSpec().with_(design=FAST_DESIGN)
        assert config_key(spec.with_(design=None)) == config_key(ExperimentSpec())

    def test_explicit_default_design_collapses_onto_no_design(self):
        # Spelling out the implicit offline defaults must not split the
        # cache (nor change derived seeds) for AdEle policies without their
        # own max_subset_size option.
        from repro.exec.cache import derive_seed
        from repro.spec import PolicySpec

        base = ExperimentSpec(policy=PolicySpec(name="adele"))
        explicit = base.with_(design=DesignSpec())
        assert config_key(explicit) == config_key(base)
        assert derive_seed(explicit, 7) == derive_seed(base, 7)
        # ...but a policy-level cap makes the two semantically different
        # (the design's cap would win), so they must split.
        capped = ExperimentSpec(
            policy=PolicySpec(name="adele", options={"max_subset_size": 2})
        )
        assert config_key(capped.with_(design=DesignSpec())) != config_key(capped)

    def test_design_ignored_for_non_design_policies(self):
        # Non-AdEle policies never consult the design: attaching one must
        # not split their cache entries.
        base = ExperimentSpec().with_(policy="elevator_first")
        assert config_key(base.with_(design=FAST_DESIGN)) == config_key(base)

    def test_design_must_be_design_spec(self):
        with pytest.raises(ValueError, match="DesignSpec"):
            ExperimentSpec().with_(design="amosa")


# --------------------------------------------------------------------- #
# Cache keying and disk round trips
# --------------------------------------------------------------------- #
class TestDesignCacheRoundTrip:
    def test_design_key_stable_and_optimizer_sensitive(self):
        key_a = design_key_for(FAST_DESIGN)
        assert key_a == design_key_for(FAST_DESIGN)
        key_b = design_key_for(FAST_DESIGN.with_(options={"evaluations": 61, "seed": 2}))
        assert key_a != key_b
        key_c = design_key_for(FAST_DESIGN.with_(optimizer="greedy-swap", options={}))
        assert key_a != key_c

    def test_selection_does_not_split_the_design_cache(self):
        assert design_key_for(FAST_DESIGN) == design_key_for(
            FAST_DESIGN.with_(selection="energy")
        )

    def test_unknown_optimizer_raises_did_you_mean(self):
        with pytest.raises(UnknownComponentError, match="did you mean"):
            design_key_for(FAST_DESIGN.with_(optimizer="amosaa"))
        with pytest.raises(ValueError):
            design_for(FAST_DESIGN.with_(optimizer="amosaa"))

    def test_disk_round_trip_skips_reoptimization(self, tmp_path, monkeypatch):
        warm = DiskDesignCache(str(tmp_path))
        original = design_for(FAST_DESIGN, cache=warm)

        def _fail(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("offline optimization re-ran on a warm cache")

        monkeypatch.setattr(runner, "optimize_elevator_subsets", _fail)
        fresh = DiskDesignCache(str(tmp_path))
        reloaded = design_for(FAST_DESIGN, cache=fresh)
        assert reloaded.pareto_points() == original.pareto_points()
        assert reloaded.selected_subsets() == original.selected_subsets()

    def test_non_uniform_named_pattern_round_trips(self, tmp_path, monkeypatch):
        spec = FAST_DESIGN.with_(traffic="shuffle")
        warm = DiskDesignCache(str(tmp_path))
        original = design_for(spec, cache=warm)
        monkeypatch.setattr(
            runner,
            "optimize_elevator_subsets",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("re-ran")),
        )
        reloaded = design_for(spec, cache=DiskDesignCache(str(tmp_path)))
        assert reloaded.pareto_points() == original.pareto_points()

    def test_selection_reapplied_on_warm_fetch(self, tmp_path):
        cache = DiskDesignCache(str(tmp_path))
        design_for(FAST_DESIGN, cache=cache)
        energy = design_for(FAST_DESIGN.with_(selection="energy"), cache=cache)
        archive = energy.result.archive
        assert energy.selected.objectives == min(
            (e.objectives for e in archive), key=lambda o: (o[-1], o[0])
        )
        latency = design_for(FAST_DESIGN.with_(selection="latency"), cache=cache)
        assert latency.selected.objectives == min(
            (e.objectives for e in archive), key=lambda o: (o[0], o[-1])
        )

    def test_warm_fetch_with_other_selection_never_mutates_earlier_design(
        self, tmp_path
    ):
        # A later caller's selection must not flip `selected` underneath a
        # design already handed to an earlier caller.
        cache = DiskDesignCache(str(tmp_path))
        latency = design_for(FAST_DESIGN.with_(selection="latency"), cache=cache)
        held = latency.selected
        energy = design_for(FAST_DESIGN.with_(selection="energy"), cache=cache)
        assert latency.selected is held
        if energy.selected.objectives != held.objectives:
            assert energy is not latency

    def test_nested_design_drives_build_policy(self):
        spec = ExperimentSpec().with_(
            placement=TINY_PLACEMENT,
            policy="adele",
            design=FAST_DESIGN,
        )
        placement = spec.placement.resolve()
        cache = runner.DesignCache()
        policy = runner.build_policy(spec, placement, design_cache=cache)
        assert policy is not None
        assert len(cache) == 1
        # The cache entry is keyed by the design spec, not the legacy
        # default-AMOSA key.
        (key,) = list(cache._designs)
        assert "random-search" in key


# --------------------------------------------------------------------- #
# CLI: python -m repro optimize
# --------------------------------------------------------------------- #
class TestOptimizeCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "design.json"
        path.write_text(json.dumps(FAST_DESIGN.to_dict()))
        return str(path)

    def test_cold_then_warm_cache_hit(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["optimize", "--spec", spec_file, "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "design optimized" in cold
        assert cli_main(["optimize", "--spec", spec_file, "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "design served from cache" in warm
        # Identical report apart from the cache line.
        def strip(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("[repro.exec]")
            ]

        assert strip(cold) == strip(warm)

    def test_optimizer_flag_overrides_spec(self, spec_file, capsys):
        assert (
            cli_main(
                ["optimize", "--spec", spec_file, "--optimizer", "greedy-swap"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "optimizer=greedy-swap" in out

    def test_unknown_optimizer_raises_value_error(self, spec_file):
        with pytest.raises(UnknownComponentError, match="did you mean"):
            cli_main(["optimize", "--spec", spec_file, "--optimizer", "amosaa"])

    def test_adhoc_mesh_flags(self, capsys):
        assert (
            cli_main(
                [
                    "optimize",
                    "--mesh", "2", "2", "2",
                    "--elevators", "0,0;1,1",
                    "--optimizer", "random-search",
                    "--max-subset-size", "2",
                    "--selection", "energy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "selection=energy" in out
        assert "selected" in out

    def test_progress_flag_reports(self, spec_file, capsys):
        assert cli_main(["optimize", "--spec", spec_file, "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[optimize]" in err

    def test_malformed_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            cli_main(["optimize", "--spec", str(bad)])
        bad.write_text(json.dumps({"optimiser": "amosa"}))
        with pytest.raises(SystemExit, match="unknown design spec"):
            cli_main(["optimize", "--spec", str(bad)])

    def test_list_shows_optimizers(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "optimizers:" in out
        assert "amosa" in out and "random-search" in out and "greedy-swap" in out


# --------------------------------------------------------------------- #
# Promoted offline knobs (weight_distance_by_traffic / num_representatives)
# --------------------------------------------------------------------- #
class TestPromotedOfflineKnobs:
    def test_defaults_omitted_from_canonical_serialization(self):
        data = DesignSpec().to_dict()
        assert "weight_distance_by_traffic" not in data
        assert "num_representatives" not in data

    def test_non_defaults_round_trip(self):
        spec = FAST_DESIGN.with_(
            weight_distance_by_traffic=True, num_representatives=3
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert data["weight_distance_by_traffic"] is True
        assert data["num_representatives"] == 3
        assert DesignSpec.from_dict(data) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpec(weight_distance_by_traffic=1)
        with pytest.raises(ValueError):
            DesignSpec(num_representatives=0)
        with pytest.raises(ValueError):
            DesignSpec(num_representatives=True)

    def test_default_knobs_keep_design_cache_key(self):
        explicit = FAST_DESIGN.with_(
            weight_distance_by_traffic=False, num_representatives=6
        )
        assert design_key_for(explicit) == design_key_for(FAST_DESIGN)

    def test_weighting_extends_key_but_representatives_do_not(self):
        weighted = FAST_DESIGN.with_(weight_distance_by_traffic=True)
        assert design_key_for(weighted) != design_key_for(FAST_DESIGN)
        fewer = FAST_DESIGN.with_(num_representatives=2)
        assert design_key_for(fewer) == design_key_for(FAST_DESIGN)

    def test_representatives_reapplied_on_cache_hit(self):
        baseline = design_for(FAST_DESIGN)
        fewer = design_for(FAST_DESIGN.with_(num_representatives=2))
        assert len(fewer.representatives) == min(2, len(baseline.result.archive))
        again = design_for(FAST_DESIGN)
        assert len(again.representatives) == len(baseline.representatives)

    def test_weighted_design_survives_disk_round_trip(self, tmp_path):
        cache = DiskDesignCache(str(tmp_path / "designs"))
        spec = FAST_DESIGN.with_(weight_distance_by_traffic=True)
        first = runner.design_for(spec, cache=cache)
        fresh = DiskDesignCache(str(tmp_path / "designs"))
        second = runner.design_for(spec, cache=fresh)
        assert second.result.evaluations == first.result.evaluations
        assert [e.objectives for e in second.result.archive] == [
            e.objectives for e in first.result.archive
        ]
        assert second.problem.evaluator.weight_distance_by_traffic is True

    def test_experiment_nesting_defaults_collapse(self):
        nested = ExperimentSpec(
            placement=TINY_PLACEMENT,
            design=DesignSpec(
                weight_distance_by_traffic=False, num_representatives=6
            ),
        )
        bare = ExperimentSpec(placement=TINY_PLACEMENT)
        assert config_key(nested) == config_key(bare)
        weighted = ExperimentSpec(
            placement=TINY_PLACEMENT,
            design=DesignSpec(weight_distance_by_traffic=True),
        )
        assert config_key(weighted) != config_key(bare)

    def test_cli_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "design.json"
        spec_path.write_text(json.dumps(FAST_DESIGN.to_dict()))
        assert (
            cli_main(
                [
                    "optimize", "--spec", str(spec_path),
                    "--weight-by-traffic", "--representatives", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "S0" in out
        assert "S2" not in out
