"""Unit tests for the elevator-selection policies."""

import pytest

from repro.routing import make_policy
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy, AdEleRouterState
from repro.routing.base import ElevatorSelectionPolicy
from repro.routing.cda import CDAPolicy
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.routing.minimal import MinimalPathPolicy
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D


@pytest.fixture
def placement():
    mesh = Mesh3D(4, 4, 2)
    return ElevatorPlacement(mesh, [(0, 0), (3, 3), (1, 2)], name="test")


class TestBasePolicy:
    def test_same_layer_returns_none(self, placement):
        policy = ElevatorFirstPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 0)
        assert policy.select_elevator(src, dst) is None

    def test_annotate_packet(self, placement):
        policy = ElevatorFirstPolicy(placement)
        packet = Packet(source=0, destination=1, length=2, creation_cycle=0)
        policy.annotate_packet(packet, placement.elevator_by_index(2))
        assert packet.elevator_index == 2
        assert packet.elevator_column == (1, 2)
        policy.annotate_packet(packet, None)
        assert packet.elevator_index is None

    def test_base_select_not_implemented(self, placement):
        policy = ElevatorSelectionPolicy(placement)
        with pytest.raises(NotImplementedError):
            policy.select_elevator(0, placement.mesh.num_nodes - 1)


class TestElevatorFirstPolicy:
    def test_selects_nearest_to_source(self, placement):
        policy = ElevatorFirstPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        chosen = policy.select_elevator(src, dst)
        assert chosen.column == (0, 0)

    def test_selection_ignores_destination(self, placement):
        policy = ElevatorFirstPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        near_dst = mesh.node_id_xyz(0, 0, 1)
        far_dst = mesh.node_id_xyz(3, 3, 1)
        assert (
            policy.select_elevator(src, near_dst).index
            == policy.select_elevator(src, far_dst).index
        )

    def test_static_assignment_covers_all_nodes(self, placement):
        policy = ElevatorFirstPolicy(placement)
        assignment = policy.static_assignment()
        assert set(assignment.keys()) == set(placement.mesh.nodes())

    def test_faulty_elevator_avoided(self, placement):
        policy = ElevatorFirstPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        placement.mark_faulty(0)
        chosen = policy.select_elevator(src, dst)
        assert chosen.index != 0


class TestMinimalPathPolicy:
    def test_selects_distance_optimal_elevator(self, placement):
        policy = MinimalPathPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(3, 2, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        assert policy.select_elevator(src, dst).column == (3, 3)

    def test_destination_changes_selection(self, placement):
        policy = MinimalPathPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(2, 2, 0)
        toward_origin = mesh.node_id_xyz(0, 0, 1)
        toward_corner = mesh.node_id_xyz(3, 3, 1)
        assert (
            policy.select_elevator(src, toward_origin).index
            != policy.select_elevator(src, toward_corner).index
        )


class TestCDAPolicy:
    def test_zero_load_degrades_to_nearest(self, placement):
        policy = CDAPolicy(placement)
        network = Network(placement, policy)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        chosen = policy.select_elevator(src, dst, network=network)
        assert chosen.column == (0, 0)

    def test_congestion_redirects_selection(self, placement):
        policy = CDAPolicy(placement)
        network = Network(placement, policy)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        # Congest the nearest elevator's router heavily.
        congested_node = mesh.node_id_xyz(0, 0, 0)
        from repro.sim.router import Port

        buf = network.router(congested_node).buffer(Port.LOCAL, 0)
        filler = Packet(source=congested_node, destination=mesh.node_id_xyz(3, 0, 0),
                        length=4, creation_cycle=0)
        for flit in filler.make_flits():
            buf.stage(flit)
        buf.commit()
        chosen = policy.select_elevator(src, dst, network=network)
        assert chosen.column != (0, 0)

    def test_without_network_uses_distance_only(self, placement):
        policy = CDAPolicy(placement)
        mesh = placement.mesh
        src = mesh.node_id_xyz(2, 3, 0)
        dst = mesh.node_id_xyz(0, 0, 1)
        assert policy.select_elevator(src, dst, network=None).column == (3, 3)

    def test_invalid_parameters(self, placement):
        with pytest.raises(ValueError):
            CDAPolicy(placement, congestion_weight=-1)
        with pytest.raises(ValueError):
            CDAPolicy(placement, update_period=0)

    def test_stale_snapshot_respects_update_period(self, placement):
        policy = CDAPolicy(placement, update_period=10)
        network = Network(placement, policy)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 0, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        # First selection snapshots an empty network.
        assert policy.select_elevator(src, dst, network=network, cycle=0).column == (0, 0)
        # Congest the nearest elevator; within the update period the stale
        # snapshot still shows it as free.
        from repro.sim.router import Port

        congested_node = mesh.node_id_xyz(0, 0, 0)
        buf = network.router(congested_node).buffer(Port.LOCAL, 0)
        filler = Packet(source=congested_node, destination=mesh.node_id_xyz(3, 0, 0),
                        length=4, creation_cycle=0)
        for flit in filler.make_flits():
            buf.stage(flit)
        buf.commit()
        assert policy.select_elevator(src, dst, network=network, cycle=5).column == (0, 0)
        # After the period expires the snapshot refreshes and CDA redirects.
        assert policy.select_elevator(src, dst, network=network, cycle=11).column != (0, 0)

    def test_reset_clears_snapshot(self, placement):
        policy = CDAPolicy(placement, update_period=100)
        network = Network(placement, policy)
        policy.select_elevator(0, placement.mesh.num_nodes - 1, network=network, cycle=0)
        policy.reset()
        assert policy._snapshot == {}


class TestAdEleRouterState:
    def test_requires_nonempty_subset(self):
        with pytest.raises(ValueError):
            AdEleRouterState(subset=[])

    def test_relative_cost_uniform_when_untrained(self, placement):
        state = AdEleRouterState(subset=placement.elevators[:2])
        assert state.relative_cost(0) == pytest.approx(0.5)

    def test_cost_update_is_ewma(self, placement):
        state = AdEleRouterState(subset=placement.elevators[:2])
        state.update_cost(0, 1.0, alpha=0.2)
        assert state.costs[0] == pytest.approx(0.2)
        state.update_cost(0, 1.0, alpha=0.2)
        assert state.costs[0] == pytest.approx(0.36)

    def test_negative_metric_clamped(self, placement):
        state = AdEleRouterState(subset=placement.elevators[:2])
        state.update_cost(0, -0.5, alpha=0.2)
        assert state.costs[0] == 0.0

    def test_all_costs_below(self, placement):
        state = AdEleRouterState(subset=placement.elevators[:2])
        assert state.all_costs_below(0.1)
        state.update_cost(1, 5.0, alpha=1.0)
        assert not state.all_costs_below(0.1)


class TestAdElePolicy:
    def test_invalid_parameters(self, placement):
        with pytest.raises(ValueError):
            AdElePolicy(placement, alpha=1.5)
        with pytest.raises(ValueError):
            AdElePolicy(placement, xi=1.0)

    def test_default_subsets_cover_all_nodes(self, placement):
        policy = AdElePolicy(placement)
        for node in placement.mesh.nodes():
            assert policy.subset_indices(node) == [0, 1, 2]

    def test_explicit_subsets_respected(self, placement):
        subsets = {node: (0,) for node in placement.mesh.nodes()}
        policy = AdElePolicy(placement, subsets=subsets)
        mesh = placement.mesh
        chosen = policy.select_elevator(
            mesh.node_id_xyz(3, 3, 0), mesh.node_id_xyz(0, 0, 1)
        )
        assert chosen.index == 0

    def test_low_traffic_override_picks_minimal_path(self, placement):
        policy = AdElePolicy(placement, low_traffic_threshold=10.0)
        mesh = placement.mesh
        src = mesh.node_id_xyz(3, 2, 0)
        dst = mesh.node_id_xyz(3, 3, 1)
        # With untrained (zero) costs the override is active.
        assert policy.select_elevator(src, dst).column == (3, 3)

    def test_round_robin_when_override_disabled(self, placement):
        subsets = {node: (0, 1) for node in placement.mesh.nodes()}
        policy = AdElePolicy(placement, subsets=subsets, low_traffic_threshold=None, seed=1)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        picks = [policy.select_elevator(src, dst).index for _ in range(8)]
        # With zero costs the skip probability is zero -> strict alternation.
        assert picks[:4] in ([0, 1, 0, 1], [1, 0, 1, 0])

    def test_skip_probability_follows_eq9(self, placement):
        policy = AdElePolicy(placement, xi=0.05)
        state = AdEleRouterState(subset=placement.elevators[:2])
        # Untrained: uniform relative cost -> no skipping.
        assert policy.skip_probability(state, 0) == 0.0
        # One elevator carries all the cost -> maximum skip probability.
        state.costs[0] = 1.0
        state.costs[1] = 0.0
        assert policy.skip_probability(state, 0) == pytest.approx(0.95)
        assert policy.skip_probability(state, 1) == 0.0
        # Intermediate relative cost -> linear region of Eq. 9.
        state.costs[1] = 0.5
        rel = 1.0 / 1.5
        expected = 2 * (rel - 0.5) * 0.95
        assert policy.skip_probability(state, 0) == pytest.approx(expected)

    def test_congested_elevator_is_skipped_more(self, placement):
        subsets = {node: (0, 1) for node in placement.mesh.nodes()}
        policy = AdElePolicy(placement, subsets=subsets, low_traffic_threshold=None, seed=3)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        # Report heavy blocking through elevator 0 repeatedly.
        for _ in range(20):
            policy.notify_source_latency(src, 0, 5.0)
        picks = [policy.select_elevator(src, dst).index for _ in range(200)]
        share_of_zero = picks.count(0) / len(picks)
        assert share_of_zero < 0.3

    def test_exploration_keeps_congested_elevator_alive(self, placement):
        subsets = {node: (0, 1) for node in placement.mesh.nodes()}
        policy = AdElePolicy(placement, subsets=subsets, low_traffic_threshold=None,
                             xi=0.05, seed=5)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        for _ in range(20):
            policy.notify_source_latency(src, 0, 10.0)
        picks = [policy.select_elevator(src, dst).index for _ in range(400)]
        assert picks.count(0) > 0  # xi guarantees occasional selection

    def test_notify_unknown_source_is_ignored(self, placement):
        policy = AdElePolicy(placement)
        policy.notify_source_latency(999999, 0, 1.0)  # must not raise

    def test_reset_restores_untrained_state(self, placement):
        policy = AdElePolicy(placement, seed=2)
        policy.notify_source_latency(0, 0, 3.0)
        assert policy.cost(0, 0) > 0
        policy.reset()
        assert policy.cost(0, 0) == 0.0

    def test_faulty_elevator_removed_from_subsets(self, placement):
        placement.mark_faulty(1)
        policy = AdElePolicy(placement, subsets={0: (0, 1)})
        assert policy.subset_indices(0) == [0]

    def test_single_elevator_subset_shortcut(self, placement):
        policy = AdElePolicy(placement, subsets={n: (2,) for n in placement.mesh.nodes()},
                             low_traffic_threshold=None)
        mesh = placement.mesh
        chosen = policy.select_elevator(mesh.node_id_xyz(0, 3, 0), mesh.node_id_xyz(0, 0, 1))
        assert chosen.index == 2


class TestAdEleRoundRobinPolicy:
    def test_plain_round_robin_ignores_feedback(self, placement):
        subsets = {node: (0, 1, 2) for node in placement.mesh.nodes()}
        policy = AdEleRoundRobinPolicy(placement, subsets=subsets)
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        for _ in range(10):
            policy.notify_source_latency(src, 0, 100.0)
        picks = [policy.select_elevator(src, dst).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_cost_state_never_trained(self, placement):
        policy = AdEleRoundRobinPolicy(placement)
        policy.notify_source_latency(0, 0, 10.0)
        assert policy.cost(0, 0) == 0.0


class TestPolicyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("elevator_first", ElevatorFirstPolicy),
            ("cda", CDAPolicy),
            ("adele", AdElePolicy),
            ("adele_rr", AdEleRoundRobinPolicy),
            ("minimal", MinimalPathPolicy),
        ],
    )
    def test_make_policy(self, placement, name, cls):
        assert isinstance(make_policy(name, placement), cls)

    def test_unknown_policy(self, placement):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("random", placement)
