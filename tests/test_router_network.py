"""Unit tests for the router microarchitecture and network wiring."""

import pytest

from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.sim.network import Network
from repro.sim.router import OPPOSITE_PORT, Port, Router
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Coordinate, Mesh3D


def make_network(columns=((0, 0),), shape=(2, 2, 2)):
    mesh = Mesh3D(*shape)
    placement = ElevatorPlacement(mesh, list(columns))
    return Network(placement, ElevatorFirstPolicy(placement))


class TestRouterBasics:
    def test_requires_vc(self):
        with pytest.raises(ValueError):
            Router(0, Coordinate(0, 0, 0), num_vcs=0)

    def test_buffers_created_for_all_ports_and_vcs(self):
        router = Router(0, Coordinate(0, 0, 0), num_vcs=2, buffer_depth=4)
        assert len(router.input_buffers) == len(Port) * 2
        assert router.buffer(Port.LOCAL, 0).depth == 4

    def test_occupancy_queries(self):
        router = Router(0, Coordinate(0, 0, 0))
        assert router.buffer_occupancy() == 0
        assert router.total_occupancy() == 0
        assert not router.has_traffic()

    def test_reset_clears_state(self, small_network):
        router = small_network.router(0)
        packet = small_network.create_packet(0, 4, 2, cycle=0)
        small_network.inject(0)
        router.commit_arrivals()
        assert router.has_traffic()
        router.reset()
        assert not router.has_traffic()
        assert packet.delivery_cycle is None


class TestOppositePorts:
    @pytest.mark.parametrize(
        "port,opposite",
        [
            (Port.EAST, Port.WEST),
            (Port.WEST, Port.EAST),
            (Port.NORTH, Port.SOUTH),
            (Port.SOUTH, Port.NORTH),
            (Port.UP, Port.DOWN),
            (Port.DOWN, Port.UP),
        ],
    )
    def test_pairs(self, port, opposite):
        assert OPPOSITE_PORT[port] == opposite


class TestNetworkWiring:
    def test_requires_two_vcs(self):
        mesh = Mesh3D(2, 2, 2)
        placement = ElevatorPlacement(mesh, [(0, 0)])
        with pytest.raises(ValueError):
            Network(placement, ElevatorFirstPolicy(placement), num_vcs=1)

    def test_horizontal_links_everywhere(self):
        network = make_network()
        mesh = network.mesh
        origin = mesh.node_id_xyz(0, 0, 0)
        assert network.neighbor(origin, Port.EAST) == mesh.node_id_xyz(1, 0, 0)
        assert network.neighbor(origin, Port.NORTH) == mesh.node_id_xyz(0, 1, 0)
        assert network.neighbor(origin, Port.WEST) is None  # mesh edge
        assert network.neighbor(origin, Port.SOUTH) is None

    def test_vertical_links_only_at_elevators(self):
        network = make_network()
        mesh = network.mesh
        elevator_node = mesh.node_id_xyz(0, 0, 0)
        plain_node = mesh.node_id_xyz(1, 1, 0)
        assert network.neighbor(elevator_node, Port.UP) == mesh.node_id_xyz(0, 0, 1)
        assert network.neighbor(plain_node, Port.UP) is None
        assert not network.link_exists(plain_node, Port.UP)
        assert network.link_exists(elevator_node, Port.UP)

    def test_local_port_always_exists(self):
        network = make_network()
        assert network.link_exists(0, Port.LOCAL)

    def test_downstream_has_space_checks_vc_buffer(self):
        network = make_network()
        mesh = network.mesh
        origin = mesh.node_id_xyz(0, 0, 0)
        east = mesh.node_id_xyz(1, 0, 0)
        assert network.downstream_has_space(origin, Port.EAST, 0)
        # Fill the east router's WEST/vc0 buffer.
        target = network.router(east).buffer(Port.WEST, 0)
        packet = network.create_packet(origin, east, target.depth, cycle=0)
        for flit in packet.make_flits():
            target.stage(flit)
        assert not network.downstream_has_space(origin, Port.EAST, 0)
        assert network.downstream_has_space(origin, Port.EAST, 1)

    def test_downstream_missing_link_has_no_space(self):
        network = make_network()
        plain_node = network.mesh.node_id_xyz(1, 1, 0)
        assert not network.downstream_has_space(plain_node, Port.UP, 0)

    def test_elevator_nodes_by_index(self):
        network = make_network(columns=((0, 0), (1, 1)))
        nodes = network.elevator_nodes_by_index()
        assert set(nodes.keys()) == {0, 1}
        assert all(len(column) == network.mesh.num_layers for column in nodes.values())


class TestPacketInjectionAndDelivery:
    def test_create_packet_assigns_vn_and_elevator(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        packet = network.create_packet(src, dst, 4, cycle=0)
        assert packet.virtual_network == 0
        assert packet.elevator_index == 0
        assert packet.elevator_column == (0, 0)

    def test_same_layer_packet_has_no_elevator(self):
        network = make_network()
        mesh = network.mesh
        packet = network.create_packet(
            mesh.node_id_xyz(0, 0, 0), mesh.node_id_xyz(1, 1, 0), 4, cycle=0
        )
        assert packet.elevator_index is None

    def test_inject_moves_flits_into_local_buffer(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        packet = network.create_packet(src, dst, 3, cycle=0)
        assert network.pending_injections() == 3
        network.inject(cycle=0)
        # Buffer depth 4 accepts the whole packet.
        assert network.pending_injections() == 0
        assert packet.injection_cycle == 0

    def test_inject_respects_buffer_depth(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        network.create_packet(src, dst, 10, cycle=0)
        network.inject(cycle=0)
        assert network.pending_injections() == 6  # 4-flit deep LOCAL buffer

    def test_single_hop_delivery(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        packet = network.create_packet(src, dst, 2, cycle=0)
        for cycle in range(20):
            network.inject(cycle)
            network.step(cycle)
            if packet.delivery_cycle is not None:
                break
        assert packet.delivery_cycle is not None
        assert packet.hops == 1
        assert packet.vertical_hops == 0
        assert network.is_idle()
        assert network.in_flight_packets == 0

    def test_interlayer_delivery_uses_elevator(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 0, 1)
        packet = network.create_packet(src, dst, 3, cycle=0)
        for cycle in range(60):
            network.inject(cycle)
            network.step(cycle)
            if packet.delivery_cycle is not None:
                break
        assert packet.delivery_cycle is not None
        assert packet.vertical_hops == 1
        # Path: (1,1,0)->(0,1,0)->(0,0,0)->up->(0,0,1)->(1,0,1): 4 hops.
        assert packet.hops == 4

    def test_downward_packet_uses_descend_vn(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(1, 1, 1)
        dst = mesh.node_id_xyz(1, 1, 0)
        packet = network.create_packet(src, dst, 2, cycle=0)
        assert packet.virtual_network == 1
        for cycle in range(60):
            network.inject(cycle)
            network.step(cycle)
            if packet.delivery_cycle is not None:
                break
        assert packet.delivery_cycle is not None

    def test_head_and_tail_exit_cycles_recorded(self):
        network = make_network()
        mesh = network.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 1, 0)
        packet = network.create_packet(src, dst, 3, cycle=0)
        for cycle in range(30):
            network.inject(cycle)
            network.step(cycle)
        assert packet.head_exit_cycle is not None
        assert packet.tail_exit_cycle is not None
        assert packet.tail_exit_cycle >= packet.head_exit_cycle + packet.length - 1

    def test_reset_restores_empty_network(self):
        network = make_network()
        mesh = network.mesh
        network.create_packet(
            mesh.node_id_xyz(0, 0, 0), mesh.node_id_xyz(1, 1, 1), 4, cycle=0
        )
        network.inject(0)
        network.step(0)
        network.reset()
        assert network.is_idle()
        assert network.in_flight_packets == 0
        assert network.stats.packets_created == 0


class TestWormholeDiscipline:
    def test_packets_do_not_interleave_on_a_link(self):
        """Two packets sharing an output link must not interleave flits."""
        network = make_network(shape=(3, 1, 1), columns=())
        mesh = network.mesh
        left = mesh.node_id_xyz(0, 0, 0)
        middle = mesh.node_id_xyz(1, 0, 0)
        right = mesh.node_id_xyz(2, 0, 0)
        # Both packets traverse middle -> right on the same VC.
        a = network.create_packet(left, right, 4, cycle=0)
        b = network.create_packet(middle, right, 4, cycle=0)
        arrivals = []
        original = network.deliver_flit

        def tracking_deliver(node_id, in_key, out_port, out_vc, flit, cycle):
            if node_id == right and out_port == Port.LOCAL:
                arrivals.append(flit.packet.packet_id)
            return original(node_id, in_key, out_port, out_vc, flit, cycle)

        network.deliver_flit = tracking_deliver
        for cycle in range(60):
            network.inject(cycle)
            network.step(cycle)
        assert a.delivery_cycle is not None and b.delivery_cycle is not None
        # All flits of one packet arrive contiguously.
        switches = sum(
            1 for i in range(1, len(arrivals)) if arrivals[i] != arrivals[i - 1]
        )
        assert switches == 1
