"""Unit tests for the generic component registry and its four instances."""

from __future__ import annotations

import pytest

from repro.registry import (
    DuplicateComponentError,
    Registry,
    RegistryEntry,
    UnknownComponentError,
)
from repro.routing import POLICY_REGISTRY, available_policies, make_policy
from repro.topology.elevators import (
    PLACEMENT_REGISTRY,
    ElevatorPlacement,
    available_placements,
    register_placement,
)
from repro.topology.mesh3d import Mesh3D
from repro.traffic.applications import (
    APPLICATION_REGISTRY,
    application_spec,
    available_applications,
)
from repro.traffic.patterns import (
    PATTERN_REGISTRY,
    available_patterns,
    make_pattern,
)


class TestGenericRegistry:
    def test_register_and_lookup(self):
        registry = Registry("widget")
        registry.add("alpha", object())
        assert "alpha" in registry
        assert "ALPHA" in registry  # normalization
        assert registry.names() == ["alpha"]

    def test_decorator_registration_returns_value(self):
        registry = Registry("widget")

        @registry.register("thing", description="a thing")
        class Thing:
            pass

        assert registry.get("thing") is Thing
        assert registry.entry("thing").description == "a thing"

    def test_decorator_infers_name_attribute(self):
        registry = Registry("widget")

        @registry.register()
        class Named:
            name = "from_attr"

        assert registry.get("from_attr") is Named

    def test_aliases_resolve_to_canonical_entry(self):
        registry = Registry("widget")
        registry.add("canonical", 42, aliases=("other", "Second"))
        assert registry.get("other") == 42
        assert registry.get("SECOND") == 42
        assert registry.entry("other").name == "canonical"
        # Aliases are not canonical names.
        assert registry.names() == ["canonical"]

    def test_unknown_name_is_value_error_with_sorted_names(self):
        registry = Registry("widget")
        registry.add("bravo", 2)
        registry.add("alpha", 1)
        with pytest.raises(ValueError) as excinfo:
            registry.get("charlie")
        assert isinstance(excinfo.value, UnknownComponentError)
        assert "alpha, bravo" in str(excinfo.value)
        assert excinfo.value.known == ["alpha", "bravo"]

    def test_unknown_name_suggests_close_matches(self):
        registry = Registry("widget")
        registry.add("uniform", 1)
        with pytest.raises(UnknownComponentError, match="did you mean 'uniform'"):
            registry.get("unifrom")

    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.add("taken", 1)
        with pytest.raises(DuplicateComponentError):
            registry.add("taken", 2)
        with pytest.raises(DuplicateComponentError):
            registry.add("fresh", 2, aliases=("taken",))
        assert registry.get("taken") == 1

    def test_overwrite_replaces_entry_and_aliases(self):
        registry = Registry("widget")
        registry.add("name", 1, aliases=("old_alias",))
        registry.add("name", 2, aliases=("new_alias",), overwrite=True)
        assert registry.get("name") == 2
        assert registry.get("new_alias") == 2
        with pytest.raises(UnknownComponentError):
            registry.get("old_alias")

    def test_unregister_removes_entry_and_aliases(self):
        registry = Registry("widget")
        registry.add("gone", 1, aliases=("bye",))
        registry.unregister("gone")
        assert "gone" not in registry and "bye" not in registry
        with pytest.raises(UnknownComponentError):
            registry.unregister("gone")

    def test_entries_and_iteration_are_sorted(self):
        registry = Registry("widget")
        registry.add("b", 2)
        registry.add("a", 1)
        assert list(registry) == ["a", "b"]
        assert [e.name for e in registry.entries()] == ["a", "b"]
        assert len(registry) == 2
        assert all(isinstance(e, RegistryEntry) for e in registry.entries())

    def test_create_instantiates_the_factory(self):
        registry = Registry("widget")
        registry.add("pair", tuple)
        assert registry.create("pair", (1, 2)) == (1, 2)


class TestBuiltinRegistries:
    # Other test modules may legitimately register extra components in the
    # process-global registries, so these assertions are superset-based.
    def test_builtin_policies_are_registered(self):
        assert set(available_policies()) >= {
            "adele", "adele_rr", "cda", "elevator_first", "minimal",
        }
        assert available_policies() == sorted(available_policies())
        assert POLICY_REGISTRY.get("elevatorfirst") is POLICY_REGISTRY.get(
            "elevator_first"
        )
        assert POLICY_REGISTRY.entry("adele").metadata["needs_design"] is True

    def test_builtin_patterns_are_registered(self):
        assert set(available_patterns()) >= {
            "bit_complement", "hotspot", "neighbor", "shuffle", "transpose",
            "uniform",
        }
        assert PATTERN_REGISTRY.get("neighbour") is PATTERN_REGISTRY.get("neighbor")

    def test_builtin_applications_are_registered(self):
        assert set(available_applications()) >= {
            "canneal", "fft", "fluidanimate", "lu", "radix", "water",
        }
        # The paper's abbreviated Fig. 7 spelling resolves as an alias.
        assert application_spec("fluid.").name == "fluidanimate"
        assert APPLICATION_REGISTRY.entry("fluid.").name == "fluidanimate"

    def test_builtin_placements_are_registered(self):
        assert set(available_placements()) >= {"PM", "PS1", "PS2", "PS3"}
        placement = PLACEMENT_REGISTRY.get("ps1")()
        assert placement.name == "PS1"
        assert placement.num_elevators == 3

    def test_unknown_lookups_raise_value_error_everywhere(self):
        mesh = Mesh3D(2, 2, 2)
        placement = ElevatorPlacement(mesh, [(0, 0)], name="t")
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope", placement)
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_pattern("nope", mesh)
        with pytest.raises(ValueError, match="unknown application"):
            application_spec("nope")
        with pytest.raises(ValueError, match="unknown placement"):
            PLACEMENT_REGISTRY.get("nope")

    def test_register_placement_instance_roundtrip(self):
        custom = ElevatorPlacement(Mesh3D(2, 2, 2), [(0, 1)], name="REG-TEST")
        register_placement(custom)
        try:
            assert PLACEMENT_REGISTRY.get("reg-test")() is custom
            assert "REG-TEST" in available_placements()
        finally:
            PLACEMENT_REGISTRY.unregister("REG-TEST")

    def test_register_placement_factory_decorator(self):
        @register_placement(name="RING4", description="four corner elevators")
        def ring4() -> ElevatorPlacement:
            return ElevatorPlacement(
                Mesh3D(3, 3, 2), [(0, 0), (2, 0), (0, 2), (2, 2)], name="RING4"
            )

        try:
            built = PLACEMENT_REGISTRY.get("ring4")()
            assert built.num_elevators == 4
            assert PLACEMENT_REGISTRY.entry("RING4").description == (
                "four corner elevators"
            )
        finally:
            PLACEMENT_REGISTRY.unregister("RING4")
