"""Unit tests for the experiment harness (runner, sweep, load, comparison)."""

import pytest

from repro.analysis.comparison import (
    average_improvement,
    format_table,
    normalize_to_baseline,
    policy_comparison_table,
    relative_improvement,
)
from repro.analysis.load import elevator_load_distribution
from repro.analysis.runner import (
    ExperimentConfig,
    adele_design_for,
    build_network,
    build_packet_source,
    build_policy,
    build_traffic,
    resolve_placement,
    run_experiment,
)
from repro.analysis.sweep import LatencyCurve, latency_sweep, saturation_rate, zero_load_latency
from repro.core.amosa import AmosaConfig
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy
from repro.routing.cda import CDAPolicy
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.sim.engine import SimulationResult
from repro.sim.stats import SimulationStats
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.applications import ApplicationTraffic
from repro.traffic.patterns import ShuffleTraffic, UniformTraffic

TINY_AMOSA = AmosaConfig(
    initial_temperature=5.0,
    final_temperature=0.5,
    cooling_rate=0.6,
    iterations_per_temperature=10,
    hard_limit=6,
    soft_limit=12,
    initial_solutions=3,
    seed=2,
)


@pytest.fixture
def tiny_config():
    mesh = Mesh3D(2, 2, 2)
    placement = ElevatorPlacement(mesh, [(0, 0), (1, 1)], name="TINY")
    return ExperimentConfig(
        placement="TINY",
        placement_obj=placement,
        policy="elevator_first",
        traffic="uniform",
        injection_rate=0.05,
        warmup_cycles=20,
        measurement_cycles=150,
        drain_cycles=200,
        seed=3,
    )


class TestRunnerBuilders:
    def test_resolve_placement_by_name(self):
        config = ExperimentConfig(placement="PS2")
        assert resolve_placement(config).num_elevators == 4

    def test_resolve_placement_object_override(self, tiny_config):
        assert resolve_placement(tiny_config).name == "TINY"

    def test_build_traffic_patterns(self, tiny_config):
        placement = resolve_placement(tiny_config)
        assert isinstance(build_traffic(tiny_config, placement), UniformTraffic)
        assert isinstance(
            build_traffic(tiny_config.with_(traffic="shuffle"), placement), ShuffleTraffic
        )
        assert isinstance(
            build_traffic(tiny_config.with_(traffic="fft"), placement), ApplicationTraffic
        )
        assert isinstance(
            build_traffic(tiny_config.with_(traffic="fluid."), placement), ApplicationTraffic
        )

    @pytest.mark.parametrize(
        "policy,cls",
        [
            ("elevator_first", ElevatorFirstPolicy),
            ("cda", CDAPolicy),
        ],
    )
    def test_build_policy_baselines(self, tiny_config, policy, cls):
        placement = resolve_placement(tiny_config)
        assert isinstance(build_policy(tiny_config.with_(policy=policy), placement), cls)

    def test_build_policy_adele_uses_offline_design(self, tiny_config, monkeypatch):
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement = resolve_placement(tiny_config)
        policy = build_policy(tiny_config.with_(policy="adele"), placement)
        assert isinstance(policy, AdElePolicy)
        rr = build_policy(tiny_config.with_(policy="adele_rr"), placement)
        assert isinstance(rr, AdEleRoundRobinPolicy)

    def test_adele_design_cache(self, tiny_config):
        placement = resolve_placement(tiny_config)
        first = adele_design_for(placement, max_subset_size=2, amosa_config=TINY_AMOSA)
        second = adele_design_for(placement, max_subset_size=2, amosa_config=TINY_AMOSA)
        assert first is second

    def test_build_network_and_source(self, tiny_config):
        placement = resolve_placement(tiny_config)
        network = build_network(tiny_config, placement=placement)
        assert network.mesh is placement.mesh
        source = build_packet_source(tiny_config, placement)
        assert source.packet_probability == pytest.approx(0.05)

    def test_with_copies_config(self, tiny_config):
        changed = tiny_config.with_(injection_rate=0.1)
        assert changed.injection_rate == 0.1
        assert tiny_config.injection_rate == 0.05


class TestRunExperiment:
    def test_end_to_end_run(self, tiny_config):
        result = run_experiment(tiny_config)
        assert result.delivered_packets > 0
        assert result.average_latency > 0
        assert result.energy_per_flit is not None
        assert result.policy_name == "elevator_first"

    def test_network_reuse_resets_state(self, tiny_config):
        placement = resolve_placement(tiny_config)
        network = build_network(tiny_config, placement=placement)
        first = run_experiment(tiny_config, network=network)
        second = run_experiment(tiny_config, network=network)
        assert first.delivered_packets == second.delivered_packets
        assert first.average_latency == pytest.approx(second.average_latency)


class TestSweep:
    def test_latency_curve_accessors(self):
        curve = LatencyCurve(policy="x")
        stats = SimulationStats()
        result = SimulationResult(
            stats=stats, warmup_cycles=0, measurement_cycles=10, drain_cycles_used=0,
            num_nodes=4, average_latency=12.0, throughput=0.1,
        )
        curve.add(0.001, result)
        assert curve.rates() == [0.001]
        assert curve.latencies() == [12.0]
        assert curve.latency_at(0.001) == 12.0
        with pytest.raises(KeyError):
            curve.latency_at(0.5)

    def test_zero_load_and_saturation(self):
        curve = LatencyCurve(policy="x")
        for rate, latency in [(0.001, 10.0), (0.002, 12.0), (0.003, 150.0)]:
            stats = SimulationStats()
            result = SimulationResult(
                stats=stats, warmup_cycles=0, measurement_cycles=10,
                drain_cycles_used=0, num_nodes=4, average_latency=latency,
                throughput=0.0,
            )
            curve.add(rate, result)
        assert zero_load_latency(curve) == 10.0
        assert saturation_rate(curve) == 0.003
        assert saturation_rate(curve, factor=20.0) == 0.003  # never reaches 200 -> max rate

    def test_saturation_validation(self):
        with pytest.raises(ValueError):
            saturation_rate(LatencyCurve(policy="x"))
        curve = LatencyCurve(policy="x")
        stats = SimulationStats()
        curve.add(0.001, SimulationResult(
            stats=stats, warmup_cycles=0, measurement_cycles=1, drain_cycles_used=0,
            num_nodes=1, average_latency=1.0, throughput=0.0))
        with pytest.raises(ValueError):
            saturation_rate(curve, factor=1.0)

    def test_latency_sweep_runs_all_policies(self, tiny_config):
        curves = latency_sweep(tiny_config, ["elevator_first", "cda"], [0.02, 0.05])
        assert set(curves) == {"elevator_first", "cda"}
        for curve in curves.values():
            assert len(curve.points) == 2
            assert all(latency > 0 for latency in curve.latencies())

    def test_latency_sweep_requires_rates(self, tiny_config):
        with pytest.raises(ValueError):
            latency_sweep(tiny_config, ["cda"], [])


class TestLoadDistribution:
    def test_elevator_load_distribution(self, tiny_config):
        placement = resolve_placement(tiny_config)
        network = build_network(tiny_config, placement=placement)
        result = run_experiment(tiny_config, network=network)
        distribution = elevator_load_distribution(network, result)
        assert set(distribution.loads) == {0, 1}
        assert distribution.max_load >= distribution.min_load
        assert distribution.ordered_loads() == [
            distribution.loads[0], distribution.loads[1]
        ]
        assert distribution.imbalance >= 1.0 or distribution.imbalance == float("inf")


class TestComparison:
    def test_normalize_to_baseline(self):
        normalized = normalize_to_baseline({"a": 10.0, "b": 5.0}, "a")
        assert normalized == {"a": 1.0, "b": 0.5}
        with pytest.raises(KeyError):
            normalize_to_baseline({"a": 1.0}, "missing")
        with pytest.raises(ValueError):
            normalize_to_baseline({"a": 0.0}, "a")

    def test_relative_improvement(self):
        assert relative_improvement(100.0, 89.1) == pytest.approx(0.109)
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)

    def test_average_improvement(self):
        assert average_improvement([100, 200], [90, 150]) == pytest.approx(
            (0.1 + 0.25) / 2
        )
        with pytest.raises(ValueError):
            average_improvement([1], [1, 2])
        with pytest.raises(ValueError):
            average_improvement([], [])

    def test_policy_comparison_table(self, tiny_config):
        results = {}
        for policy in ("elevator_first", "cda"):
            results[policy] = run_experiment(tiny_config.with_(policy=policy))
        table = policy_comparison_table(results, baseline="elevator_first")
        assert table["elevator_first"]["average_latency_norm"] == pytest.approx(1.0)
        assert "average_latency" in table["cda"]
        text = format_table(table)
        assert "policy" in text and "cda" in text
