"""Pluggable simulation kernels: registry, equivalence, active-set invariants.

The backend contract is strict: every registered kernel must produce
*bit-identical* results -- statistics counters, latency samples, drain
accounting -- for the same network, packet source and seed.  These tests pin
that contract down with a cross-backend matrix over policies, traffic
patterns and injection rates (including saturation), hypothesis-generated
random specs, and direct checks of the active-set bookkeeping the optimized
kernel relies on.

The ``vectorized`` kernel joins the matrix in its ``bit_exact`` mode (the
mode the equivalence contract covers); its default fast mode honors a
documented tolerance contract instead, pinned by
:class:`TestVectorizedFastMode`.  All vectorized tests degrade to the
two-kernel matrix on numpy-less installs, where the backend stays
unregistered.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import run_experiment
from repro.registry import UnknownComponentError
from repro.routing import make_policy
from repro.routing.base import PrecomputedRoutes, compute_output_port
from repro.sim.backends import (
    BACKEND_REGISTRY,
    DEFAULT_BACKEND,
    SimulatorBackend,
    available_backends,
    resolve_backend,
)
from repro.sim.backends.optimized import OptimizedBackend
from repro.sim.backends.reference import ReferenceBackend
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.stats import SimulationStats
from repro.spec import ExperimentSpec, PlacementSpec, PolicySpec, SimSpec, TrafficSpec
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.generator import BernoulliPacketSource, TracePacketSource
from repro.traffic.patterns import UniformTraffic
from repro.traffic.trace import TraceEvent, TrafficTrace

try:
    from repro.sim.backends.vectorized import VectorizedBackend

    HAVE_VECTORIZED = True
except ImportError:  # pragma: no cover - numpy-less installs
    VectorizedBackend = None
    HAVE_VECTORIZED = False

#: Backends under the bit-identity contract (the numpy kernels via their
#: bit_exact mode; ``batched`` with one replica IS the vectorized path).
ALL_BACKENDS = ["reference", "optimized"] + (
    ["vectorized", "batched"] if HAVE_VECTORIZED else []
)

#: Kernels whose bit-identity membership requires the bit_exact flag.
BIT_EXACT_BACKENDS = frozenset({"vectorized", "batched"})

requires_vectorized = pytest.mark.skipif(
    not HAVE_VECTORIZED, reason="numpy (and the vectorized kernel) unavailable"
)


def _placement(shape=(3, 3, 2), columns=((0, 0), (2, 2))) -> ElevatorPlacement:
    return ElevatorPlacement(Mesh3D(*shape), list(columns), name="backend-test")


def _spec(backend: str, **overrides) -> ExperimentSpec:
    placement = _placement()
    spec = ExperimentSpec(
        placement=PlacementSpec.from_placement(placement),
        policy=PolicySpec(name="elevator_first"),
        traffic=TrafficSpec(pattern="uniform", injection_rate=0.02),
        sim=SimSpec(
            warmup_cycles=30,
            measurement_cycles=150,
            drain_cycles=200,
            seed=11,
            backend=backend,
            # The equivalence matrix runs the vectorized kernel in its
            # bit-exact mode; the other kernels ignore the flag.
            bit_exact=(backend in BIT_EXACT_BACKENDS),
        ),
    )
    return spec.with_(**overrides) if overrides else spec


def _full_stats_fields(stats: SimulationStats) -> dict:
    """Every comparable stats field (excludes only the reservoir RNG)."""
    return {
        "packets_created": stats.packets_created,
        "packets_delivered": stats.packets_delivered,
        "flits_injected": stats.flits_injected,
        "flits_delivered": stats.flits_delivered,
        "total_latency": stats.total_latency,
        "total_network_latency": stats.total_network_latency,
        "total_hops": stats.total_hops,
        "total_vertical_hops": stats.total_vertical_hops,
        "router_traversals": stats.router_traversals,
        "horizontal_link_traversals": stats.horizontal_link_traversals,
        "vertical_link_traversals": stats.vertical_link_traversals,
        "elevator_assignments": stats.elevator_assignments,
        "latencies": stats.latencies,
        "latency_samples_seen": stats.latency_samples_seen,
    }


class TestRegistry:
    def test_bundled_backends_registered(self):
        assert "reference" in BACKEND_REGISTRY
        assert "optimized" in BACKEND_REGISTRY
        expected = ["optimized", "reference"]
        if HAVE_VECTORIZED:
            expected = ["batched", "optimized", "reference", "vectorized"]
        assert available_backends() == expected

    @requires_vectorized
    def test_vectorized_aliases_resolve(self):
        assert isinstance(resolve_backend("vectorized"), VectorizedBackend)
        assert isinstance(resolve_backend("numpy"), VectorizedBackend)
        assert isinstance(resolve_backend("flat-array"), VectorizedBackend)
        assert resolve_backend("vectorized").bit_exact is False

    @requires_vectorized
    def test_batched_aliases_resolve(self):
        from repro.sim.backends.batched import BatchedBackend

        assert isinstance(resolve_backend("batched"), BatchedBackend)
        assert isinstance(resolve_backend("replica"), BatchedBackend)
        assert isinstance(resolve_backend("multi-seed"), BatchedBackend)
        # BatchedBackend subclasses VectorizedBackend: a solo spec routed
        # through "batched" takes the identical single-replica kernel path.
        assert isinstance(resolve_backend("batched"), VectorizedBackend)

    def test_default_is_optimized(self):
        assert DEFAULT_BACKEND == "optimized"
        assert resolve_backend(None).name == "optimized"

    def test_resolve_accepts_name_alias_instance_and_class(self):
        assert isinstance(resolve_backend("reference"), ReferenceBackend)
        assert isinstance(resolve_backend("active-set"), OptimizedBackend)
        instance = ReferenceBackend()
        assert resolve_backend(instance) is instance
        assert isinstance(resolve_backend(OptimizedBackend), OptimizedBackend)

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(UnknownComponentError):
            resolve_backend("warp-drive")
        with pytest.raises(ValueError):
            resolve_backend("warp-drive")

    def test_simulator_resolves_backend_by_name(self):
        placement = _placement()
        network = Network(placement, make_policy("elevator_first", placement))
        source = BernoulliPacketSource(UniformTraffic(placement.mesh), 0.0)
        sim = Simulator(network, source, 10, 20, 10, backend="reference")
        assert isinstance(sim.backend, ReferenceBackend)
        assert sim.run().backend_name == "reference"

    def test_custom_backend_registration_roundtrip(self):
        @BACKEND_REGISTRY.register("test-noop", description="for tests")
        class NoopBackend(SimulatorBackend):
            name = "test-noop"

            def execute(self, network, packet_source, *, warmup_cycles,
                        measurement_cycles, drain_cycles):
                return 0

        try:
            assert isinstance(resolve_backend("test-noop"), NoopBackend)
        finally:
            BACKEND_REGISTRY.unregister("test-noop")


class TestPrecomputedRoutes:
    def test_exhaustively_matches_compute_output_port(self):
        mesh = Mesh3D(3, 3, 3)
        routes = PrecomputedRoutes(mesh)
        columns = [(x, y) for x in range(3) for y in range(3)]
        for current in range(mesh.num_nodes):
            for destination in range(mesh.num_nodes):
                if current == destination:
                    continue
                if mesh.same_layer(current, destination):
                    assert routes.port_for(current, destination, None) == (
                        compute_output_port(mesh, current, destination, None)
                    )
                else:
                    for column in columns:
                        assert routes.port_for(current, destination, column) == (
                            compute_output_port(mesh, current, destination, column)
                        )

    def test_interlayer_without_elevator_raises(self):
        mesh = Mesh3D(2, 2, 2)
        routes = PrecomputedRoutes(mesh)
        up = mesh.node_id_xyz(0, 0, 1)
        with pytest.raises(ValueError):
            routes.port_for(0, up, None)


class TestCrossBackendEquivalence:
    """reference == optimized == vectorized (bit-exact mode), bit for bit,
    over a policy x traffic x rate matrix that spans empty, flowing and
    saturated networks."""

    @pytest.mark.parametrize("policy", ["elevator_first", "cda", "minimal"])
    @pytest.mark.parametrize("rate", [0.0, 0.01, 0.08])
    def test_summary_and_stats_identical(self, policy, rate):
        results = {
            backend: run_experiment(
                _spec(backend, policy=policy, injection_rate=rate)
            )
            for backend in ALL_BACKENDS
        }
        ref = results["reference"]
        for backend in ALL_BACKENDS[1:]:
            other = results[backend]
            assert ref.summary() == other.summary(), backend
            assert ref.drain_cycles_used == other.drain_cycles_used, backend
            assert _full_stats_fields(ref.stats) == (
                _full_stats_fields(other.stats)
            ), backend

    @pytest.mark.parametrize("pattern", ["shuffle", "hotspot", "transpose"])
    def test_patterns_identical(self, pattern):
        results = [
            run_experiment(_spec(backend, traffic=pattern))
            for backend in ALL_BACKENDS
        ]
        for other in results[1:]:
            assert results[0].summary() == other.summary()
            assert _full_stats_fields(results[0].stats) == (
                _full_stats_fields(other.stats)
            )

    def test_trace_source_identical(self):
        placement = _placement()
        mesh = placement.mesh
        events = [
            TraceEvent(cycle=c, source=s, destination=(s + 5) % mesh.num_nodes, length=4)
            for c in (0, 1, 1, 7)
            for s in (0, 3)
        ]
        trace = TrafficTrace(events)
        results = []
        for backend in ALL_BACKENDS:
            network = Network(placement, make_policy("elevator_first", placement))
            sim = Simulator(
                network, TracePacketSource(trace), 5, 40, 100,
                backend=backend, bit_exact=(backend in BIT_EXACT_BACKENDS),
            )
            results.append(sim.run())
        for other in results[1:]:
            assert results[0].summary() == other.summary()
            assert results[0].drain_cycles_used == other.drain_cycles_used

    def test_second_run_on_saturated_network_identical(self):
        """The optimized and vectorized kernels sync allocation state back
        into the routers, so re-running a network left mid-wormhole
        (saturated, drain exhausted) behaves exactly like the reference
        kernel."""
        results = {}
        for backend in ALL_BACKENDS:
            placement = _placement()
            network = Network(placement, make_policy("elevator_first", placement))
            source = BernoulliPacketSource(
                UniformTraffic(placement.mesh, seed=7), 0.2, seed=7
            )
            sim = Simulator(
                network, source, 10, 80, 30,
                backend=backend, bit_exact=(backend in BIT_EXACT_BACKENDS),
            )
            first = sim.run()
            assert first.drain_cycles_used == 30  # saturated: drain exhausted
            results[backend] = sim.run()  # resumes from in-flight state
        ref = results["reference"]
        for backend in ALL_BACKENDS[1:]:
            assert ref.summary() == results[backend].summary(), backend
            assert _full_stats_fields(ref.stats) == (
                _full_stats_fields(results[backend].stats)
            ), backend

    def test_adele_policy_identical(self, tiny_amosa):
        spec = _spec(
            "reference",
            policy=PolicySpec(name="adele", options={"max_subset_size": 2}),
        )
        ref = run_experiment(spec)
        for backend in ALL_BACKENDS[1:]:
            other = run_experiment(
                spec.with_(backend=backend, bit_exact=(backend in BIT_EXACT_BACKENDS))
            )
            assert ref.summary() == other.summary(), backend
            assert _full_stats_fields(ref.stats) == (
                _full_stats_fields(other.stats)
            ), backend


@pytest.fixture
def tiny_amosa(monkeypatch):
    from repro.analysis import runner
    from repro.core.amosa import AmosaConfig

    monkeypatch.setattr(
        runner,
        "DEFAULT_OFFLINE_AMOSA",
        AmosaConfig(
            initial_temperature=5.0,
            final_temperature=0.5,
            cooling_rate=0.6,
            iterations_per_temperature=8,
            hard_limit=6,
            soft_limit=12,
            initial_solutions=3,
            seed=2,
        ),
    )
    runner.clear_design_cache()
    yield
    runner.clear_design_cache()


class TestHypothesisEquivalence:
    """Random small specs agree across backends (property-based)."""

    @given(
        shape=st.tuples(
            st.integers(min_value=2, max_value=3),
            st.integers(min_value=2, max_value=3),
            st.integers(min_value=2, max_value=3),
        ),
        rate=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
        policy=st.sampled_from(["elevator_first", "cda"]),
        columns=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_specs_agree(self, shape, rate, seed, policy, columns):
        column_list = [(0, 0), (shape[0] - 1, shape[1] - 1)][:columns]
        placement = ElevatorPlacement(Mesh3D(*shape), column_list, name="hyp")
        spec = ExperimentSpec(
            placement=PlacementSpec.from_placement(placement),
            policy=PolicySpec(name=policy),
            traffic=TrafficSpec(pattern="uniform", injection_rate=rate),
            sim=SimSpec(
                warmup_cycles=10,
                measurement_cycles=60,
                drain_cycles=80,
                seed=seed,
                backend="reference",
            ),
        )
        ref = run_experiment(spec)
        for backend in ALL_BACKENDS[1:]:
            other = run_experiment(
                spec.with_(backend=backend, bit_exact=(backend in BIT_EXACT_BACKENDS))
            )
            assert ref.summary() == other.summary(), backend
            assert ref.drain_cycles_used == other.drain_cycles_used, backend
            assert _full_stats_fields(ref.stats) == (
                _full_stats_fields(other.stats)
            ), backend


class TestActiveSetInvariants:
    def test_fresh_network_is_idle_with_empty_active_set(self):
        placement = _placement()
        network = Network(placement, make_policy("elevator_first", placement))
        assert network.is_idle()
        assert network.active_routers() == set()
        assert network.pending_injections() == 0

    def test_create_packet_marks_live_queue_then_inject_activates_router(self):
        placement = _placement()
        network = Network(placement, make_policy("elevator_first", placement))
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        network.create_packet(src, dst, 3, cycle=0)
        assert not network.is_idle()
        assert network.pending_injections() == 3
        network.inject(0)
        assert src in network.active_routers()
        assert network.pending_injections() == 0
        assert not network.is_idle()

    def test_is_idle_prunes_drained_routers(self):
        placement = _placement()
        network = Network(placement, make_policy("elevator_first", placement))
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(1, 0, 0)
        packet = network.create_packet(src, dst, 2, cycle=0)
        for cycle in range(20):
            network.inject(cycle)
            network.step(cycle)
            if packet.delivery_cycle is not None:
                break
        assert packet.delivery_cycle is not None
        assert network.is_idle()
        # Every router was verified empty and pruned by the idle check.
        assert network.active_routers() == set()

    def test_optimized_run_leaves_truthful_idle_state(self):
        spec = _spec("optimized", injection_rate=0.01)
        result = run_experiment(spec)
        assert result.stats.packets_delivered > 0

    def test_reset_clears_active_tracking(self):
        placement = _placement()
        network = Network(placement, make_policy("elevator_first", placement))
        mesh = placement.mesh
        network.create_packet(
            mesh.node_id_xyz(0, 0, 0), mesh.node_id_xyz(2, 2, 1), 4, cycle=0
        )
        network.inject(0)
        network.step(0)
        network.reset()
        assert network.active_routers() == set()
        assert network.is_idle()


class TestDrainAccounting:
    """Regression: drain_cycles_used must be 0 -- never stale -- when the
    network is already idle at injection end."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_zero_rate_uses_zero_drain_cycles(self, backend):
        result = run_experiment(_spec(backend, injection_rate=0.0))
        assert result.drain_cycles_used == 0
        assert result.stats.packets_created == 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_early_trace_drained_before_injection_end(self, backend):
        # One early packet, then a long quiet measurement window: everything
        # is delivered long before injection stops, so no drain cycle runs.
        placement = _placement()
        mesh = placement.mesh
        trace = TrafficTrace(
            [TraceEvent(cycle=0, source=0, destination=mesh.node_id_xyz(1, 0, 0), length=2)]
        )
        network = Network(placement, make_policy("elevator_first", placement))
        sim = Simulator(
            network, TracePacketSource(trace), 0, 200, 300, backend=backend
        )
        result = sim.run()
        assert result.stats.packets_delivered == 1
        assert result.drain_cycles_used == 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_late_packet_uses_positive_drain(self, backend):
        # A packet injected on the last measured cycle needs drain cycles.
        placement = _placement()
        mesh = placement.mesh
        far = mesh.node_id_xyz(2, 2, 1)
        trace = TrafficTrace(
            [TraceEvent(cycle=49, source=0, destination=far, length=3)]
        )
        network = Network(placement, make_policy("elevator_first", placement))
        sim = Simulator(
            network, TracePacketSource(trace), 0, 50, 300, backend=backend
        )
        result = sim.run()
        assert result.stats.packets_delivered == 1
        assert result.drain_cycles_used > 0


class TestSaturatedDrainAccounting:
    """Satellite regression: a saturated mesh must exhaust its drain budget
    and report identical drain / undelivered-packet accounting on every
    backend (vectorized in bit-exact mode)."""

    RATE = 0.2

    def _run(self, backend):
        return run_experiment(
            _spec(
                backend,
                injection_rate=self.RATE,
                warmup_cycles=10,
                measurement_cycles=80,
                drain_cycles=40,
            )
        )

    def test_drain_budget_exhausted_and_undelivered_counted(self):
        results = {backend: self._run(backend) for backend in ALL_BACKENDS}
        ref = results["reference"]
        # Saturated: the drain budget is used in full and a backlog of
        # measured packets never arrives.
        assert ref.drain_cycles_used == 40
        assert ref.stats.packets_created > ref.stats.packets_delivered
        assert ref.saturated
        undelivered = ref.stats.packets_created - ref.stats.packets_delivered
        assert undelivered > 0
        for backend in ALL_BACKENDS[1:]:
            other = results[backend]
            assert other.drain_cycles_used == 40, backend
            assert other.stats.packets_created == (
                ref.stats.packets_created
            ), backend
            assert other.stats.packets_delivered == (
                ref.stats.packets_delivered
            ), backend
            assert other.stats.flits_injected == ref.stats.flits_injected, backend
            assert other.stats.flits_delivered == (
                ref.stats.flits_delivered
            ), backend


@requires_vectorized
class TestVectorizedFastMode:
    """The vectorized kernel's default (fast) mode tolerance contract.

    The fast allocation phase arbitrates against the cycle-start occupancy
    snapshot, so under contention individual allocation orders may differ
    from the reference kernel.  The contract it must still honor: packet
    creation is bit-identical (the traffic RNG never observes network
    state), flits are conserved, and runs that fully drain deliver every
    packet.
    """

    def test_packet_creation_identical_to_reference(self):
        for rate in (0.01, 0.08):
            ref = run_experiment(_spec("reference", injection_rate=rate))
            fast = run_experiment(
                _spec("vectorized", injection_rate=rate, bit_exact=False)
            )
            assert fast.stats.packets_created == ref.stats.packets_created
            assert (
                fast.stats.elevator_assignments == ref.stats.elevator_assignments
            )

    def test_drained_run_conserves_packets(self):
        fast = run_experiment(
            _spec("vectorized", injection_rate=0.01, bit_exact=False)
        )
        assert fast.drain_cycles_used < 200  # drained before the budget
        assert fast.stats.packets_delivered == fast.stats.packets_created
        assert fast.stats.packets_delivered > 0

    def test_fast_mode_is_deterministic(self):
        spec = _spec("vectorized", injection_rate=0.08, bit_exact=False)
        first = run_experiment(spec)
        second = run_experiment(spec.with_(seed=11))  # same spec, fresh run
        assert first.summary() == second.summary()
        assert _full_stats_fields(first.stats) == _full_stats_fields(second.stats)

    def test_fast_mode_throughput_close_to_reference(self):
        ref = run_experiment(_spec("reference", injection_rate=0.04))
        fast = run_experiment(
            _spec("vectorized", injection_rate=0.04, bit_exact=False)
        )
        assert fast.throughput == pytest.approx(ref.throughput, rel=0.05)
        assert fast.average_latency == pytest.approx(
            ref.average_latency, rel=0.15
        )


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        stats = SimulationStats(latency_reservoir_size=10)
        for value in range(7):
            stats._observe_latency(float(value))
        assert stats.latencies == [float(v) for v in range(7)]
        assert stats.latency_samples_seen == 7
        assert stats.latency_percentile(100.0) == 6.0

    def test_bounded_beyond_capacity(self):
        stats = SimulationStats(latency_reservoir_size=16)
        for value in range(1000):
            stats._observe_latency(float(value))
        assert len(stats.latencies) == 16
        assert stats.latency_samples_seen == 1000
        # Samples are a subset of what was offered.
        assert all(0.0 <= v < 1000.0 for v in stats.latencies)
        assert stats.latency_percentile(50.0) < 1000.0

    def test_reservoir_is_deterministic(self):
        def fill():
            stats = SimulationStats(latency_reservoir_size=8)
            for value in range(500):
                stats._observe_latency(float(value))
            return stats.latencies

        assert fill() == fill()

    def test_merge_preserves_bound_and_counts(self):
        a = SimulationStats(latency_reservoir_size=8)
        b = SimulationStats(latency_reservoir_size=8)
        for value in range(100):
            a._observe_latency(float(value))
            b._observe_latency(float(value + 1000))
        a.merge(b)
        assert len(a.latencies) == 8
        assert a.latency_samples_seen == 200

    def test_simulation_respects_small_reservoir(self):
        placement = _placement()
        network = Network(
            placement,
            make_policy("elevator_first", placement),
            stats=SimulationStats(latency_reservoir_size=5),
        )
        source = BernoulliPacketSource(
            UniformTraffic(placement.mesh, seed=4), 0.05, seed=4
        )
        result = Simulator(network, source, 10, 300, 200).run()
        assert result.stats.packets_delivered > 5
        assert len(result.stats.latencies) == 5
        assert result.stats.latency_samples_seen == result.stats.packets_delivered
        # Streaming totals are exact even though samples are reservoir-kept.
        assert result.average_latency < float("inf")
