"""Unit tests for the energy and area models."""

import pytest

from repro.area.model import AreaModel
from repro.energy.model import EnergyModel
from repro.sim.flit import Packet
from repro.sim.stats import SimulationStats


class TestEnergyModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(flit_width_bits=0)
        with pytest.raises(ValueError):
            EnergyModel(router_energy_per_bit=-1.0)

    def test_per_flit_energies_scale_with_width(self):
        narrow = EnergyModel(flit_width_bits=32)
        wide = EnergyModel(flit_width_bits=64)
        assert wide.router_energy_per_flit == pytest.approx(
            2 * narrow.router_energy_per_flit
        )

    def test_breakdown_counts_events(self):
        model = EnergyModel()
        stats = SimulationStats()
        packet = Packet(source=0, destination=1, length=2, creation_cycle=0)
        for _ in range(3):
            stats.record_router_traversal(0, packet, cycle=0)
        stats.record_link_traversal(vertical=False, packet=packet, cycle=0)
        stats.record_link_traversal(vertical=True, packet=packet, cycle=0)
        breakdown = model.breakdown(stats)
        assert breakdown.router_energy == pytest.approx(3 * model.router_energy_per_flit)
        assert breakdown.horizontal_link_energy == pytest.approx(model.link_energy_per_flit)
        assert breakdown.vertical_link_energy == pytest.approx(model.tsv_energy_per_flit)
        assert breakdown.total == pytest.approx(
            breakdown.router_energy
            + breakdown.horizontal_link_energy
            + breakdown.vertical_link_energy
        )
        assert set(breakdown.as_dict()) == {
            "router",
            "horizontal_link",
            "vertical_link",
            "total",
        }

    def test_energy_per_flit_zero_without_deliveries(self):
        assert EnergyModel().energy_per_flit(SimulationStats()) == 0.0

    def test_energy_per_flit_nj(self):
        model = EnergyModel()
        stats = SimulationStats()
        packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
        stats.record_router_traversal(0, packet, cycle=0)
        stats.record_flit_delivered(packet, cycle=0)
        assert model.energy_per_flit_nj(stats) == pytest.approx(
            model.router_energy_per_flit * 1e9
        )

    def test_path_energy(self):
        model = EnergyModel()
        energy = model.path_energy(horizontal_hops=2, vertical_hops=1)
        expected = (
            4 * model.router_energy_per_flit
            + 2 * model.link_energy_per_flit
            + 1 * model.tsv_energy_per_flit
        )
        assert energy == pytest.approx(expected)
        with pytest.raises(ValueError):
            model.path_energy(-1, 0)

    def test_longer_paths_cost_more(self):
        model = EnergyModel()
        assert model.path_energy(4, 1) > model.path_energy(2, 1)
        assert model.path_energy(2, 2) > model.path_energy(2, 1)

    def test_tsv_cheaper_than_horizontal_link(self):
        model = EnergyModel()
        assert model.tsv_energy_per_flit < model.link_energy_per_flit


class TestAreaModel:
    def test_baseline_matches_calibration_target(self):
        model = AreaModel()
        report = model.baseline_report()
        assert report.area_um2 == pytest.approx(35550.0, rel=1e-6)
        assert report.overhead == 0.0
        assert report.cycles == 1

    def test_adele_overhead_small(self):
        # Table III: AdEle adds ~3.1 % with no extra pipeline cycle.
        report = AreaModel().adele_report()
        assert 0.005 < report.overhead < 0.08
        assert report.cycles == 1
        assert report.breakdown.policy_logic > 0

    def test_cda_overhead_larger_than_adele(self):
        model = AreaModel()
        adele = model.adele_report()
        cda = model.cda_report()
        assert cda.overhead > 2 * adele.overhead
        assert cda.cycles == 2

    def test_cda_overhead_order_of_magnitude(self):
        # Table III: CDA adds ~14.4 %.
        report = AreaModel().cda_report()
        assert 0.05 < report.overhead < 0.30

    def test_table_contains_three_rows(self):
        table = AreaModel().table()
        assert set(table) == {"ElevFirst", "CDA", "AdEle"}
        assert table["ElevFirst"].area_um2 < table["AdEle"].area_um2 < table["CDA"].area_um2

    def test_cda_table_scales_with_network_size(self):
        small = AreaModel(num_routers_per_layer=16)
        large = AreaModel(num_routers_per_layer=64)
        assert large.cda_report().overhead > small.cda_report().overhead

    def test_adele_area_scales_with_subset_size(self):
        small = AreaModel(subset_size=2)
        large = AreaModel(subset_size=6)
        assert large.adele_report().overhead > small.adele_report().overhead

    def test_breakdown_total_consistent(self):
        report = AreaModel().adele_report()
        parts = report.breakdown.as_dict()
        assert parts["total"] == pytest.approx(
            parts["buffers"]
            + parts["crossbar"]
            + parts["allocators"]
            + parts["routing_logic"]
            + parts["policy_logic"]
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AreaModel(num_ports=0)
