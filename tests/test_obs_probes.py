"""Kernel probes: validation, bounding, and per-backend channel filling.

Every backend family must fill the same channels with plausible values --
the reference kernel by scanning the network, the active-set kernel from
its incremental counters, the flat-array kernel with numpy reductions
(one series per replica under the batched backend).  Neutrality (probed
== unprobed, bit for bit) is pinned in ``test_obs_neutrality.py``; this
file covers the probe machinery itself.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import run_experiment
from repro.exec.batch import ExperimentBatch
from repro.obs.probes import (
    PROBE_CHANNELS,
    ProbeSeries,
    ProbeSpec,
    series_document,
)
from repro.spec import ExperimentSpec, PlacementSpec, PolicySpec, SimSpec, TrafficSpec

try:
    import numpy  # noqa: F401

    HAVE_VECTORIZED = True
except ImportError:  # pragma: no cover - numpy-less installs
    HAVE_VECTORIZED = False

ALL_BACKENDS = ["reference", "optimized"] + (
    ["vectorized", "batched"] if HAVE_VECTORIZED else []
)

NUM_LAYERS = 2


def _spec(backend: str = "optimized", **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        placement=PlacementSpec(
            name="probe-tiny", mesh=(3, 3, NUM_LAYERS), columns=((0, 0), (2, 2))
        ),
        policy=PolicySpec(name="adele"),
        traffic=TrafficSpec(pattern="uniform", injection_rate=0.02),
        sim=SimSpec(
            warmup_cycles=20,
            measurement_cycles=100,
            drain_cycles=80,
            seed=5,
            backend=backend,
        ),
    )
    return spec.with_(**overrides) if overrides else spec


class TestProbeSpecValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            ProbeSpec(interval=0)

    def test_max_samples_must_be_positive(self):
        with pytest.raises(ValueError, match="max_samples"):
            ProbeSpec(max_samples=0)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown probe channel"):
            ProbeSpec(channels=("active_routers", "warp_factor"))

    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError, match="at least one channel"):
            ProbeSpec(channels=())

    def test_parse_channels(self):
        assert ProbeSpec.parse_channels(
            " active_routers , layer_occupancy "
        ) == ("active_routers", "layer_occupancy")
        with pytest.raises(ValueError):
            ProbeSpec.parse_channels("nope")

    def test_should_sample_follows_interval(self):
        probe = ProbeSpec(interval=3)
        sampled = [c for c in range(10) if probe.should_sample(c)]
        assert sampled == [0, 3, 6, 9]


class TestProbeSeries:
    def test_bounded_and_counts_drops(self):
        series = ProbeSpec(
            interval=1, channels=("active_routers",), max_samples=3
        ).series()
        for cycle in range(10):
            series.append(cycle, {"active_routers": cycle})
        assert series.cycles == [0, 1, 2]
        assert series.values["active_routers"] == [0, 1, 2]
        assert series.full
        assert series.dropped == 7
        assert series.to_dict()["samples"] == 3
        assert series.to_dict()["dropped"] == 7

    def test_rows_shape(self):
        series = ProbeSpec(interval=1, channels=("in_flight_flits",)).series()
        series.append(0, {"in_flight_flits": 4})
        series.append(1, {"in_flight_flits": 7})
        assert series.rows() == [
            {"cycle": 0, "in_flight_flits": 4},
            {"cycle": 1, "in_flight_flits": 7},
        ]

    def test_series_document(self):
        series = ProbeSpec(interval=2, channels=("active_routers",)).series()
        series.append(0, {"active_routers": 1})
        document = series_document([series])
        assert len(document["series"]) == 1
        assert document["series"][0]["interval"] == 2


class TestBackendsFillChannels:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_channel_filled_and_plausible(self, backend):
        probe = ProbeSpec(interval=25)
        result = run_experiment(_spec(backend), probe=probe)
        series = result.probe
        assert isinstance(series, ProbeSeries)
        assert len(series.cycles) > 0
        assert all(cycle % probe.interval == 0 for cycle in series.cycles)
        assert series.cycles == sorted(set(series.cycles))
        for channel in PROBE_CHANNELS:
            assert len(series.values[channel]) == len(series.cycles)
        for occupancy in series.values["layer_occupancy"]:
            assert len(occupancy) == NUM_LAYERS
            assert all(level >= 0 for level in occupancy)
        for cycle_index in range(len(series.cycles)):
            active = series.values["active_routers"][cycle_index]
            flits = series.values["in_flight_flits"][cycle_index]
            assert 0 <= active <= 3 * 3 * NUM_LAYERS
            assert flits == sum(series.values["layer_occupancy"][cycle_index])
            # A router counts as active only while it holds flits.
            assert (active > 0) == (flits > 0)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_channel_subset_respected(self, backend):
        probe = ProbeSpec(interval=40, channels=("injection_backlog",))
        series = run_experiment(_spec(backend), probe=probe).probe
        assert set(series.values) == {"injection_backlog"}

    def test_unprobed_run_has_no_series(self):
        assert run_experiment(_spec("optimized")).probe is None


@pytest.mark.skipif(not HAVE_VECTORIZED, reason="numpy unavailable")
class TestReplicaGroupProbes:
    def test_one_series_per_replica(self):
        specs = [_spec("batched", seed=seed) for seed in (1, 2, 3)]
        batch = ExperimentBatch(
            specs, replica_batch=3, probe=ProbeSpec(interval=50)
        )
        outcomes = batch.run()
        assert batch.last_replica_groups == 1
        assert sorted(batch.last_probes) == sorted(o.key for o in outcomes)
        lengths = {
            len(series.cycles) for series in batch.last_probes.values()
        }
        assert all(length > 0 for length in lengths)
