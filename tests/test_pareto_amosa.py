"""Unit tests for Pareto utilities and the AMOSA optimizer."""

import random

import pytest

from repro.core.amosa import AmosaConfig, AmosaOptimizer
from repro.core.pareto import ParetoArchive, dominates, pareto_front
from repro.core.selection import (
    knee_point,
    select_energy_leaning,
    select_latency_leaning,
    spread_selection,
)
from repro.core.amosa import ArchiveEntry


class TestDominance:
    def test_strict_domination(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((2, 2), (1, 1))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (1, 3))

    def test_trade_off_is_non_dominating(self):
        assert not dominates((1, 3), (2, 1))
        assert not dominates((2, 1), (1, 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestParetoFront:
    def test_front_extraction(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(points)
        assert set(front) == {(1, 5), (2, 2), (5, 1)}

    def test_duplicates_collapse(self):
        front = pareto_front([(1, 1), (1, 1)])
        assert front == [(1, 1)]

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestParetoArchive:
    def test_dominated_point_rejected(self):
        archive = ParetoArchive(hard_limit=5)
        assert archive.add("a", (1, 1))
        assert not archive.add("b", (2, 2))
        assert len(archive) == 1

    def test_dominating_point_replaces(self):
        archive = ParetoArchive(hard_limit=5)
        archive.add("a", (2, 2))
        archive.add("b", (1, 1))
        assert len(archive) == 1
        assert archive.points()[0].solution == "b"

    def test_duplicate_objectives_not_added_twice(self):
        archive = ParetoArchive(hard_limit=5)
        assert archive.add("a", (1, 2))
        assert not archive.add("b", (1, 2))

    def test_non_dominated_points_coexist(self):
        archive = ParetoArchive(hard_limit=5)
        archive.add("a", (1, 5))
        archive.add("b", (5, 1))
        archive.add("c", (3, 3))
        assert len(archive) == 3
        assert archive.invariant_holds()

    def test_thinning_respects_hard_limit_and_extremes(self):
        archive = ParetoArchive(hard_limit=4, soft_limit=6)
        rng = random.Random(0)
        # Build a dense convex front so many mutually non-dominated points exist.
        for i in range(30):
            x = i / 10.0
            y = 10.0 - x + rng.random() * 1e-9
            archive.add(f"p{i}", (x, y))
        assert len(archive) <= 6
        vectors = archive.objective_vectors()
        xs = [v[0] for v in vectors]
        assert min(xs) == pytest.approx(0.0)
        assert archive.invariant_holds()

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            ParetoArchive(hard_limit=0)
        with pytest.raises(ValueError):
            ParetoArchive(hard_limit=5, soft_limit=2)

    def test_counters(self):
        archive = ParetoArchive(hard_limit=5)
        archive.add("a", (1, 5))
        archive.add("b", (5, 1))
        assert archive.dominated_by_archive((6, 6)) == 2
        assert archive.dominates_in_archive((0, 0)) == 2


class _ToyProblem:
    """min (x^2, (x-2)^2) over integers scaled to [0, 2]: a known front."""

    def random_solution(self, rng):
        return rng.uniform(-1.0, 3.0)

    def perturb(self, solution, rng):
        return solution + rng.uniform(-0.3, 0.3)

    def evaluate(self, solution):
        return (solution ** 2, (solution - 2.0) ** 2)


class TestAmosa:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AmosaConfig(initial_temperature=1.0, final_temperature=2.0)
        with pytest.raises(ValueError):
            AmosaConfig(cooling_rate=1.5)
        with pytest.raises(ValueError):
            AmosaConfig(hard_limit=10, soft_limit=5)

    def test_temperature_levels_and_iterations(self):
        config = AmosaConfig(
            initial_temperature=10.0, final_temperature=0.1, cooling_rate=0.5,
            iterations_per_temperature=7,
        )
        assert config.temperature_levels() == 7
        assert config.total_iterations() == 49

    def test_toy_front_recovered(self):
        config = AmosaConfig(
            initial_temperature=5.0, final_temperature=0.05, cooling_rate=0.8,
            iterations_per_temperature=30, hard_limit=10, soft_limit=20,
            initial_solutions=5, seed=3,
        )
        result = AmosaOptimizer(_ToyProblem(), config=config).run()
        assert len(result.archive) > 1
        # The true Pareto set is x in [0, 2]; archived solutions should lie
        # within (or very near) that interval.
        for entry in result.archive:
            assert -0.2 <= entry.solution <= 2.2
        # Archive must be mutually non-dominated.
        vectors = result.pareto_objectives()
        for a in vectors:
            assert not any(dominates(b, a) for b in vectors if b != a)

    def test_seeded_runs_are_deterministic(self):
        config = AmosaConfig(
            initial_temperature=5.0, final_temperature=0.5, cooling_rate=0.7,
            iterations_per_temperature=10, seed=11,
        )
        first = AmosaOptimizer(_ToyProblem(), config=config).run()
        second = AmosaOptimizer(_ToyProblem(), config=config).run()
        assert first.pareto_objectives() == second.pareto_objectives()

    def test_seeds_enter_archive(self):
        config = AmosaConfig(
            initial_temperature=2.0, final_temperature=0.5, cooling_rate=0.5,
            iterations_per_temperature=2, initial_solutions=2, seed=1,
        )
        result = AmosaOptimizer(_ToyProblem(), config=config).run(seeds=[1.0])
        assert result.evaluations > 0
        assert any(abs(entry.solution - 1.0) < 1e-9 for entry in result.archive) or len(
            result.archive
        ) > 0

    def test_explored_sampling_bounds(self):
        config = AmosaConfig(
            initial_temperature=2.0, final_temperature=0.5, cooling_rate=0.5,
            iterations_per_temperature=20, initial_solutions=3, seed=2,
        )
        optimizer = AmosaOptimizer(_ToyProblem(), config=config, explored_sample_rate=1.0)
        result = optimizer.run()
        assert len(result.explored) >= result.evaluations - 1

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            AmosaOptimizer(_ToyProblem(), explored_sample_rate=2.0)


class TestSelection:
    def _entries(self):
        points = [(0.0, 10.0), (1.0, 6.0), (2.0, 4.0), (4.0, 2.5), (8.0, 2.0)]
        return [ArchiveEntry(solution=i, objectives=p) for i, p in enumerate(points)]

    def test_spread_selection_includes_extremes(self):
        entries = self._entries()
        picked = spread_selection(entries, 3)
        objectives = [entry.objectives for entry in picked]
        assert (0.0, 10.0) in objectives
        assert (8.0, 2.0) in objectives
        assert len(picked) == 3

    def test_spread_selection_count_larger_than_front(self):
        entries = self._entries()
        assert len(spread_selection(entries, 10)) == len(entries)

    def test_spread_selection_validation(self):
        with pytest.raises(ValueError):
            spread_selection([], 3)
        with pytest.raises(ValueError):
            spread_selection(self._entries(), 0)

    def test_latency_and_energy_leaning(self):
        entries = self._entries()
        assert select_latency_leaning(entries).objectives == (0.0, 10.0)
        assert select_energy_leaning(entries).objectives == (8.0, 2.0)

    def test_knee_point_prefers_balanced_solution(self):
        entries = self._entries()
        knee = knee_point(entries)
        assert knee.objectives in {(1.0, 6.0), (2.0, 4.0), (4.0, 2.5)}

    def test_knee_point_small_fronts(self):
        entries = self._entries()[:2]
        assert knee_point(entries).objectives == (0.0, 10.0)
        with pytest.raises(ValueError):
            knee_point([])
