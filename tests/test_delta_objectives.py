"""Bit-identity contract of the incremental objective evaluator.

The central invariant of the refactored offline stage: for any placement,
traffic matrix and perturbation history,
:class:`repro.core.objectives.DeltaObjectiveEvaluator` returns **exactly**
(``==`` on floats, not approx) what a fresh full
:class:`~repro.core.objectives.ObjectiveEvaluator` recomputation returns.
Both reduce the same multisets of per-router terms through exactly rounded
sums, so the equality is by construction -- these tests enforce it over
random meshes, traffic weights (including denormal-adjacent magnitudes that
force the scaled-integer representation to rescale) and long accept/reject
perturbation sequences.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import (
    DeltaObjectiveEvaluator,
    ExactSum,
    ObjectiveEvaluator,
    variance_of,
)
from repro.core.subset_search import ElevatorSubsetProblem
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


def _placement(mesh_dims, column_count, seed):
    mesh = Mesh3D(*mesh_dims)
    rng = random.Random(seed)
    cells = [(x, y) for x in range(mesh_dims[0]) for y in range(mesh_dims[1])]
    columns = rng.sample(cells, min(column_count, len(cells)))
    return ElevatorPlacement(mesh, columns, name="prop")


def _random_traffic(mesh, seed, magnitudes=(1.0,)):
    rng = random.Random(seed)
    traffic = {}
    for src in mesh.nodes():
        for dst in mesh.nodes():
            if src == dst:
                continue
            if rng.random() < 0.2:
                continue  # sparse zero entries
            traffic[(src, dst)] = rng.random() * rng.choice(magnitudes)
    return traffic


# --------------------------------------------------------------------- #
# ExactSum
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
        ),
        max_size=40,
    )
)
def test_exact_sum_matches_fsum(values):
    accumulator = ExactSum()
    for value in values:
        accumulator.add(value)
    assert accumulator.value() == math.fsum(values)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=2,
        max_size=30,
    ),
    st.data(),
)
def test_exact_sum_discard_is_exact_inverse(values, data):
    accumulator = ExactSum()
    for value in values:
        accumulator.add(value)
    removed = data.draw(
        st.lists(st.sampled_from(values), max_size=len(values), unique_by=id)
    )
    for value in removed:
        accumulator.discard(value)
    kept = list(values)
    for value in removed:
        kept.remove(value)
    assert accumulator.value() == math.fsum(kept)


def test_exact_sum_handles_extreme_magnitudes():
    accumulator = ExactSum()
    values = [5e-324, 1e300, -1e300, 2.5e-310, 1e-17, 3.0]
    for value in values:
        accumulator.add(value)
    assert accumulator.value() == math.fsum(values)
    accumulator.discard(1e300)
    accumulator.discard(-1e300)
    assert accumulator.value() == math.fsum([5e-324, 2.5e-310, 1e-17, 3.0])


def test_variance_of_empty_and_constant():
    assert variance_of([]) == 0.0
    assert variance_of([2.5, 2.5, 2.5]) == 0.0
    assert variance_of([1.0, 3.0]) == 1.0


# --------------------------------------------------------------------- #
# The bit-identity property
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from([(2, 2, 2), (3, 2, 2), (3, 3, 2), (4, 2, 3)]),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**30),
    st.booleans(),
    st.booleans(),
)
def test_delta_bit_identical_under_perturbation_sequences(
    mesh_dims, column_count, seed, weight_by_traffic, uniform
):
    placement = _placement(mesh_dims, column_count, seed)
    mesh = placement.mesh
    traffic = (
        UniformTraffic(mesh).traffic_matrix()
        if uniform
        else _random_traffic(mesh, seed + 1)
    )
    problem = ElevatorSubsetProblem(
        placement,
        traffic,
        weight_distance_by_traffic=weight_by_traffic,
        incremental=True,
    )
    full = ObjectiveEvaluator(
        placement, traffic, weight_distance_by_traffic=weight_by_traffic
    )
    rng = random.Random(seed + 2)
    current = problem.random_solution(rng)
    assert problem.evaluate(current) == full.evaluate(current.subsets())
    for step in range(60):
        # Mix the annealing access patterns: child of the last-evaluated
        # point, sibling after a reject, and an occasional step back.
        if rng.random() < 0.1 and current.parent is not None:
            candidate = current.parent
        else:
            candidate = problem.perturb(current, rng)
        incremental = problem.evaluate(candidate)
        recomputed = full.evaluate(candidate.subsets())
        assert incremental == recomputed, (step, incremental, recomputed)
        if rng.random() < 0.4:
            current = candidate


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**30))
def test_delta_bit_identical_with_extreme_traffic_magnitudes(seed):
    """Tiny and huge weights force the adaptive scaled-integer rescale."""
    placement = _placement((2, 2, 2), 2, seed)
    mesh = placement.mesh
    traffic = _random_traffic(
        mesh, seed, magnitudes=(1e-300, 5e-17, 1.0, 7e120)
    )
    problem = ElevatorSubsetProblem(placement, traffic, incremental=True)
    full = ObjectiveEvaluator(placement, traffic)
    rng = random.Random(seed + 1)
    solution = problem.random_solution(rng)
    for step in range(40):
        assert problem.evaluate(solution) == full.evaluate(solution.subsets()), step
        solution = problem.perturb(solution, rng)


# --------------------------------------------------------------------- #
# Direct DeltaObjectiveEvaluator API
# --------------------------------------------------------------------- #
class TestDeltaEvaluatorApi:
    @pytest.fixture
    def setup(self):
        mesh = Mesh3D(3, 3, 2)
        placement = ElevatorPlacement(mesh, [(0, 0), (2, 2), (1, 1)], name="api")
        traffic = UniformTraffic(mesh).traffic_matrix()
        return placement, traffic

    def test_empty_state_evaluates_to_zero(self, setup):
        placement, traffic = setup
        delta = DeltaObjectiveEvaluator(placement, traffic)
        assert delta.evaluate() == (0.0, 0.0)
        assert delta.utilizations() == [0.0] * placement.num_elevators

    def test_update_and_rebase_match_full(self, setup):
        placement, traffic = setup
        delta = DeltaObjectiveEvaluator(placement, traffic)
        full = ObjectiveEvaluator(placement, traffic)
        subsets = {node: (node % 3,) for node in placement.mesh.nodes()}
        delta.rebase(subsets)
        assert delta.evaluate() == full.evaluate(subsets)
        assert delta.utilizations() == full.utilizations(subsets)
        # Re-assign one router and compare against a fresh recompute.
        node = list(placement.mesh.nodes())[0]
        subsets = dict(subsets)
        subsets[node] = (0, 1)
        delta.update(node, (0, 1))
        assert delta.evaluate() == full.evaluate(subsets)

    def test_empty_subset_removes_contributions(self, setup):
        placement, traffic = setup
        delta = DeltaObjectiveEvaluator(placement, traffic)
        full = ObjectiveEvaluator(placement, traffic)
        nodes = list(placement.mesh.nodes())
        subsets = {node: (0,) for node in nodes}
        delta.rebase(subsets)
        subsets = dict(subsets)
        subsets[nodes[1]] = ()
        delta.update(nodes[1], ())
        assert delta.evaluate() == full.evaluate(subsets)

    def test_evaluate_assignment_diffs_by_identity(self, setup):
        placement, traffic = setup
        delta = DeltaObjectiveEvaluator(placement, traffic)
        full = ObjectiveEvaluator(placement, traffic)
        rng = random.Random(0)
        problem = ElevatorSubsetProblem(placement, traffic, incremental=False)
        solution = problem.random_solution(rng)
        assignment = dict(solution.assignment)
        assert delta.evaluate_assignment(assignment) == full.evaluate(
            solution.subsets()
        )
        # Change one router; untouched frozensets are shared objects.
        node = list(placement.mesh.nodes())[2]
        assignment = dict(assignment)
        assignment[node] = frozenset({0})
        expected = full.evaluate(
            {n: tuple(sorted(s)) for n, s in assignment.items()}
        )
        assert delta.evaluate_assignment(assignment) == expected

    def test_solution_without_derivation_falls_back_to_scan(self, setup):
        placement, traffic = setup
        problem = ElevatorSubsetProblem(placement, traffic, incremental=True)
        full = ObjectiveEvaluator(placement, traffic)
        rng = random.Random(1)
        a = problem.random_solution(rng)
        b = problem.random_solution(rng)  # independent root: no parent record
        assert problem.evaluate(a) == full.evaluate(a.subsets())
        assert problem.evaluate(b) == full.evaluate(b.subsets())
        assert problem.evaluate(a) == full.evaluate(a.subsets())

    def test_derivation_records_are_released_after_consumption(self, setup):
        placement, traffic = setup
        problem = ElevatorSubsetProblem(placement, traffic, incremental=True)
        rng = random.Random(2)
        current = problem.random_solution(rng)
        problem.evaluate(current)
        chain = [current]
        for _ in range(20):
            child = problem.perturb(chain[-1], rng)
            problem.evaluate(child)
            chain.append(child)
        # Every consumed solution has dropped its parent pointer, so accept
        # chains cannot pin the whole history in memory (only the current
        # base and the still-pending candidate may carry one).
        assert sum(1 for s in chain if s.parent is not None) <= 2
