"""Unit tests for the offline optimization objectives (Eq. 1-5)."""

import pytest

from repro.core.objectives import (
    ObjectiveEvaluator,
    average_distance,
    elevator_utilization,
    utilization_variance,
)
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import UniformTraffic


@pytest.fixture
def placement():
    mesh = Mesh3D(2, 2, 2)
    return ElevatorPlacement(mesh, [(0, 0), (1, 1)], name="two")


@pytest.fixture
def traffic(placement):
    return UniformTraffic(placement.mesh).traffic_matrix()


def singleton_subsets(placement, index):
    return {node: (index,) for node in placement.mesh.nodes()}


def full_subsets(placement):
    indices = tuple(range(placement.num_elevators))
    return {node: indices for node in placement.mesh.nodes()}


class TestElevatorUtilization:
    def test_single_elevator_carries_all_interlayer_traffic(self, placement, traffic):
        subsets = singleton_subsets(placement, 0)
        utilization = elevator_utilization(subsets, placement, traffic)
        interlayer_mass = sum(
            w for (s, d), w in traffic.items()
            if not placement.mesh.same_layer(s, d)
        )
        assert utilization[0] == pytest.approx(interlayer_mass)
        assert utilization[1] == 0.0

    def test_full_subsets_split_evenly(self, placement, traffic):
        utilization = elevator_utilization(full_subsets(placement), placement, traffic)
        assert utilization[0] == pytest.approx(utilization[1])

    def test_intra_layer_traffic_does_not_count(self, placement):
        mesh = placement.mesh
        traffic = {(0, 1): 1.0}  # same layer
        utilization = elevator_utilization(full_subsets(placement), placement, traffic)
        assert utilization[0] == 0.0 and utilization[1] == 0.0

    def test_empty_subset_contributes_nothing(self, placement, traffic):
        subsets = full_subsets(placement)
        subsets[0] = ()
        utilization = elevator_utilization(subsets, placement, traffic)
        assert all(value >= 0 for value in utilization.values())


class TestUtilizationVariance:
    def test_balanced_assignment_has_zero_variance(self, placement, traffic):
        assert utilization_variance(full_subsets(placement), placement, traffic) == pytest.approx(0.0)

    def test_unbalanced_assignment_has_positive_variance(self, placement, traffic):
        assert utilization_variance(singleton_subsets(placement, 0), placement, traffic) > 0.0

    def test_variance_matches_manual_computation(self, placement, traffic):
        subsets = singleton_subsets(placement, 0)
        utilization = elevator_utilization(subsets, placement, traffic)
        values = list(utilization.values())
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / len(values)
        assert utilization_variance(subsets, placement, traffic) == pytest.approx(expected)


class TestAverageDistance:
    def test_singleton_far_elevator_is_longer(self, placement, traffic):
        near_for_origin = average_distance(singleton_subsets(placement, 0), placement)
        far_mix = average_distance(full_subsets(placement), placement)
        # Using both elevators for every pair cannot be shorter than always
        # using the best single one for the dominant corner traffic.
        assert far_mix >= 0
        assert near_for_origin >= 0

    def test_known_value_single_pair(self, placement):
        mesh = placement.mesh
        src = mesh.node_id_xyz(0, 0, 0)
        dst = mesh.node_id_xyz(0, 0, 1)
        traffic = {(src, dst): 1.0}
        subsets = {src: (0,)}
        # Source sits on elevator 0; path is exactly one vertical hop.
        assert average_distance(subsets, placement, traffic) == pytest.approx(1.0)

    def test_weighted_vs_unweighted(self, placement, traffic):
        unweighted = average_distance(full_subsets(placement), placement, None)
        weighted = average_distance(full_subsets(placement), placement, traffic)
        # Uniform traffic weights every pair equally, so both agree.
        assert unweighted == pytest.approx(weighted)

    def test_empty_assignment_is_zero(self, placement):
        assert average_distance({}, placement) == 0.0


class TestObjectiveEvaluator:
    def test_matches_reference_functions(self, placement, traffic):
        evaluator = ObjectiveEvaluator(placement, traffic)
        for subsets in (
            singleton_subsets(placement, 0),
            singleton_subsets(placement, 1),
            full_subsets(placement),
        ):
            assert evaluator.utilization_variance(subsets) == pytest.approx(
                utilization_variance(subsets, placement, traffic)
            )
            assert evaluator.average_distance(subsets) == pytest.approx(
                average_distance(subsets, placement)
            )

    def test_evaluate_returns_both_objectives(self, placement, traffic):
        evaluator = ObjectiveEvaluator(placement, traffic)
        variance, distance = evaluator.evaluate(full_subsets(placement))
        assert variance == pytest.approx(0.0)
        assert distance > 0

    def test_utilizations_ordering(self, placement, traffic):
        evaluator = ObjectiveEvaluator(placement, traffic)
        utilization = evaluator.utilizations(singleton_subsets(placement, 1))
        assert utilization[1] > utilization[0]

    def test_traffic_weighted_distance_mode(self, placement):
        mesh = placement.mesh
        src = mesh.node_id_xyz(1, 1, 0)
        dst = mesh.node_id_xyz(1, 1, 1)
        traffic = {(src, dst): 1.0}
        evaluator = ObjectiveEvaluator(placement, traffic, weight_distance_by_traffic=True)
        # Only the on-elevator-1 pair counts; selecting elevator 1 gives distance 1.
        assert evaluator.average_distance({src: (1,)}) == pytest.approx(1.0)
        # Selecting the far elevator costs 2 + 1 + 2 hops.
        assert evaluator.average_distance({src: (0,)}) == pytest.approx(5.0)

    def test_larger_mesh_consistency(self):
        mesh = Mesh3D(3, 3, 3)
        placement = ElevatorPlacement(mesh, [(0, 0), (2, 2), (1, 1)])
        traffic = UniformTraffic(mesh).traffic_matrix()
        evaluator = ObjectiveEvaluator(placement, traffic)
        subsets = {node: (node % 3,) for node in mesh.nodes()}
        assert evaluator.utilization_variance(subsets) == pytest.approx(
            utilization_variance(subsets, placement, traffic)
        )
        assert evaluator.average_distance(subsets) == pytest.approx(
            average_distance(subsets, placement), rel=1e-9
        )
