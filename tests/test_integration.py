"""Integration tests: end-to-end behaviour the paper's evaluation relies on.

These run small but complete simulations (offline optimization + online
policy + simulator + energy model) and check the qualitative properties the
paper reports, at scales small enough for CI.
"""

import pytest

from repro.analysis.comparison import relative_improvement
from repro.analysis.load import elevator_load_distribution
from repro.analysis.runner import (
    ExperimentConfig,
    adele_design_for,
    build_network,
    build_packet_source,
    run_experiment,
)
from repro.core.amosa import AmosaConfig
from repro.energy.model import EnergyModel
from repro.routing.adele import AdElePolicy
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D

TINY_AMOSA = AmosaConfig(
    initial_temperature=10.0,
    final_temperature=0.5,
    cooling_rate=0.7,
    iterations_per_temperature=20,
    hard_limit=8,
    soft_limit=16,
    initial_solutions=5,
    seed=4,
)


@pytest.fixture
def arena():
    """A 3x3x2 PC-3DNoC with two elevators and a ready-made config."""
    mesh = Mesh3D(3, 3, 2)
    placement = ElevatorPlacement(mesh, [(0, 0), (2, 1)], name="ARENA")
    config = ExperimentConfig(
        placement="ARENA",
        placement_obj=placement,
        traffic="uniform",
        injection_rate=0.03,
        warmup_cycles=100,
        measurement_cycles=600,
        drain_cycles=400,
        seed=11,
        adele_max_subset_size=2,
    )
    return placement, config


class TestEndToEndDelivery:
    def test_all_packets_delivered_below_saturation(self, arena):
        placement, config = arena
        result = run_experiment(config.with_(policy="elevator_first",
                                             injection_rate=0.01))
        assert result.stats.delivery_ratio == pytest.approx(1.0)
        assert result.stats.packets_created > 10

    def test_every_policy_delivers_traffic(self, arena, monkeypatch):
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement, config = arena
        for policy in ("elevator_first", "cda", "adele", "adele_rr", "minimal"):
            result = run_experiment(config.with_(policy=policy, injection_rate=0.02))
            assert result.delivered_packets > 0, policy
            assert result.average_latency < 500, policy

    def test_latency_grows_with_injection_rate(self, arena):
        placement, config = arena
        low = run_experiment(config.with_(policy="elevator_first", injection_rate=0.005))
        high = run_experiment(config.with_(policy="elevator_first", injection_rate=0.06))
        assert high.average_latency > low.average_latency

    def test_results_reproducible_for_fixed_seed(self, arena):
        placement, config = arena
        a = run_experiment(config.with_(policy="cda"))
        b = run_experiment(config.with_(policy="cda"))
        assert a.average_latency == pytest.approx(b.average_latency)
        assert a.stats.packets_created == b.stats.packets_created


class TestPaperQualitativeShapes:
    def test_adaptive_policies_beat_elevator_first_under_load(self, arena, monkeypatch):
        """Fig. 4 shape: congestion-aware selection beats nearest-elevator."""
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement, config = arena
        loaded = config.with_(injection_rate=0.06, measurement_cycles=800)
        baseline = run_experiment(loaded.with_(policy="elevator_first"))
        cda = run_experiment(loaded.with_(policy="cda"))
        adele = run_experiment(loaded.with_(policy="adele"))
        assert cda.average_latency < baseline.average_latency
        assert adele.average_latency < baseline.average_latency

    def test_adele_balances_elevator_load_better(self, arena, monkeypatch):
        """Fig. 5 shape: AdEle's max-elevator load is lower than ElevFirst's."""
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement, config = arena
        loaded = config.with_(injection_rate=0.05, measurement_cycles=800)

        def load_for(policy_name):
            cfg = loaded.with_(policy=policy_name)
            network = build_network(cfg, placement=placement)
            result = run_experiment(cfg, network=network)
            return elevator_load_distribution(network, result)

        baseline = load_for("elevator_first")
        adele = load_for("adele")
        assert adele.max_load <= baseline.max_load * 1.05

    def test_minimal_override_saves_energy_at_low_load(self, arena, monkeypatch):
        """Fig. 6 shape: at low injection AdEle's energy is not above ElevFirst's."""
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        placement, config = arena
        quiet = config.with_(injection_rate=0.004, measurement_cycles=900)
        baseline = run_experiment(quiet.with_(policy="elevator_first"))
        adele = run_experiment(quiet.with_(policy="adele"))
        assert adele.energy_per_flit is not None and baseline.energy_per_flit is not None
        assert adele.energy_per_flit <= baseline.energy_per_flit * 1.1

    def test_offline_design_reduces_utilization_variance(self, arena):
        """Fig. 3 shape: the selected solution dominates Elevator-First on variance."""
        placement, _config = arena
        design = adele_design_for(placement, max_subset_size=2, amosa_config=TINY_AMOSA)
        assert design.selected.objectives[0] <= design.baseline_objectives[0]

    def test_relative_improvement_metric_sanity(self):
        assert 0.0 < relative_improvement(100.0, 89.1) < 0.2


class TestFaultToleranceExtension:
    def test_traffic_survives_elevator_fault(self, arena):
        """Section V: AdEle 'can be easily adjusted to consider faults'."""
        placement, config = arena
        placement.mark_faulty(0)
        try:
            policy = AdElePolicy(placement, low_traffic_threshold=None, seed=1)
            network = Network(placement, policy)
            source = build_packet_source(config.with_(injection_rate=0.01), placement)
            result = Simulator(network, source, 50, 400, 600, EnergyModel()).run()
            assert result.delivered_packets > 0
            assert result.stats.delivery_ratio > 0.9
            # No packet may have used the faulty elevator.
            assert 0 not in result.stats.elevator_assignments
        finally:
            placement.clear_faults()

    def test_elevator_first_reroutes_around_fault(self, arena):
        placement, config = arena
        placement.mark_faulty(0)
        try:
            result = run_experiment(config.with_(policy="elevator_first",
                                                 injection_rate=0.01))
            assert result.stats.delivery_ratio == pytest.approx(1.0)
        finally:
            placement.clear_faults()


class TestLargerConfigurationSmoke:
    def test_ps1_short_run_all_policies(self, monkeypatch):
        """A short 4x4x4 PS1 run exercises the paper's actual topology."""
        from repro.analysis import runner

        monkeypatch.setattr(runner, "DEFAULT_OFFLINE_AMOSA", TINY_AMOSA)
        config = ExperimentConfig(
            placement="PS1", traffic="uniform", injection_rate=0.003,
            warmup_cycles=50, measurement_cycles=300, drain_cycles=300, seed=5,
        )
        latencies = {}
        for policy in ("elevator_first", "cda", "adele"):
            result = run_experiment(config.with_(policy=policy))
            assert result.delivered_packets > 0
            latencies[policy] = result.average_latency
        assert all(latency < 400 for latency in latencies.values())

    def test_application_traffic_runs(self, monkeypatch):
        config = ExperimentConfig(
            placement="PS2", policy="cda", traffic="fft", injection_rate=0.004,
            warmup_cycles=50, measurement_cycles=300, drain_cycles=300, seed=6,
        )
        result = run_experiment(config)
        assert result.delivered_packets > 0
