"""Packaging for the AdEle (DAC 2021) reproduction.

Installing registers the ``repro`` console script, which is the same entry
point as ``python -m repro`` (the parallel experiment engine CLI:
``repro sweep`` / ``repro compare``).

The only third-party runtime dependency is numpy, which powers the
``vectorized`` simulation kernel and the array-based objective evaluation;
the package itself degrades gracefully without it (the kernel simply stays
unregistered), so source checkouts on numpy-less interpreters keep working.
"""

from setuptools import find_packages, setup

setup(
    name="repro-adele",
    version="1.10.0",
    description=(
        "Reproduction of AdEle: adaptive congestion- and energy-aware "
        "elevator selection for partially connected 3D NoCs (DAC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # 3.10+ for dataclass(slots=True) on the simulation hot-path objects.
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.exec.cli:main",
        ]
    },
)
