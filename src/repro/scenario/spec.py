"""The typed scenario timeline (:class:`ScenarioSpec`).

A :class:`ScenarioSpec` is an ordered timeline of
:class:`~repro.scenario.events.ScenarioEvent` values describing how an
experiment's world changes while the simulation runs: traffic phases,
injection-rate ramps, elevator faults and repairs, named measurement
windows.  It nests optionally into :class:`repro.spec.ExperimentSpec`
(``scenario`` field) and enters the canonical experiment serialization --
and therefore cache keys and derived seeds -- **only when set**, so every
spec without a scenario keeps the exact serialization (and disk-cache
entries) it has today.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.scenario.events import ScenarioEvent, event_from_dict


@dataclass(frozen=True)
class ScenarioSpec:
    """An ordered, serializable timeline of scenario events.

    Attributes:
        events: The timeline, ordered by non-decreasing cycle.  Events
            sharing a cycle are applied in listed order.  An *empty*
            timeline is allowed and still meaningful: it produces a single
            ``baseline`` measurement window covering the whole run.
    """

    events: Tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        previous = -1
        for event in events:
            if not isinstance(event, ScenarioEvent):
                raise ValueError(
                    f"scenario events must be ScenarioEvent instances, "
                    f"got {event!r}"
                )
            if event.cycle < previous:
                raise ValueError(
                    "scenario events must be ordered by non-decreasing "
                    f"cycle; {event.kind}@{event.cycle} follows cycle "
                    f"{previous}"
                )
            previous = event.cycle
        object.__setattr__(self, "events", events)

    # ------------------------------------------------------------------ #
    # Derivation and queries
    # ------------------------------------------------------------------ #
    def with_events(self, events: Iterable[ScenarioEvent]) -> "ScenarioSpec":
        """A copy with the timeline replaced (same validation)."""
        return ScenarioSpec(events=tuple(events))

    def last_cycle(self) -> int:
        """The largest cycle the timeline touches (0 when empty).

        Ramps extend to their ``end_cycle``; everything else ends at its
        firing cycle.  The runtime uses this to reject timelines reaching
        past the injection window.
        """
        last = 0
        for event in self.events:
            last = max(last, event.cycle, getattr(event, "end_cycle", 0))
        return last

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild from the canonical form (unknown keys rejected).

        Raises:
            ValueError: On unknown fields, unregistered event kinds or any
                event failing validation.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"scenario spec must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"events"})
        if unknown:
            raise ValueError(
                f"unknown scenario spec field(s): {', '.join(unknown)}; "
                f"expected a subset of ['events']"
            )
        events_data = data.get("events") or []
        if not isinstance(events_data, (list, tuple)):
            raise ValueError(
                f"scenario events must be a list, got {type(events_data).__name__}"
            )
        return cls(events=tuple(event_from_dict(item) for item in events_data))
