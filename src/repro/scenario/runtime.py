"""The cycle-indexed scenario event dispatcher.

:class:`ScenarioRuntime` executes a :class:`~repro.scenario.spec.ScenarioSpec`
against a live :class:`~repro.sim.network.Network` and packet source.  It is
threaded through **every** simulation backend without changing the
:class:`~repro.sim.backends.SimulatorBackend` contract: the runtime wraps the
packet source, and since both the ``reference`` and ``optimized`` kernels
poll ``packet_source.requests(cycle)`` exactly once at the start of every
injection cycle, event dispatch happens at the same point of the cycle on
every kernel -- before any packet of that cycle is created, injected or
moved.  That single dispatch point is what makes scenario runs bit-identical
across backends.

Determinism:

* Traffic-phase pattern objects are built with a seed derived from the
  experiment seed and the event cycle (:func:`phase_pattern_seed`), so a
  scenario produces the same destinations on every process and worker.
* The Bernoulli injection RNG stream is never restarted by an event: rate
  changes move the coin threshold, pattern changes swap the destination
  object.
* Topology events go through :meth:`Network.fail_elevator` /
  :meth:`Network.repair_elevator`, which mutate shared network state and
  notify registered kernels so cached routing structures are rebuilt
  incrementally.

The runtime restores everything it changed (fault markings, severed links,
pattern and rate) when :meth:`finalize` runs, so placements shared between
runs -- e.g. instances registered in the placement registry -- never leak
scenario state into the next experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.scenario.events import RateRamp
from repro.scenario.spec import ScenarioSpec
from repro.traffic.generator import BernoulliPacketSource, PacketSource
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

#: Label of the implicit first measurement window every scenario run opens.
BASELINE_PHASE_LABEL = "baseline"

#: Multiplier mixing the event cycle into phase pattern seeds (a large prime
#: keeps nearby (seed, cycle) pairs from colliding).
_PHASE_SEED_MIX = 1_000_003

#: Modulus keeping derived seeds in ``random.Random``-friendly range.
_SEED_SPACE = 2 ** 32


def phase_pattern_seed(base_seed: int, event_cycle: int) -> int:
    """Deterministic seed of a traffic pattern introduced at a cycle."""
    return (base_seed * _PHASE_SEED_MIX + event_cycle + 1) % _SEED_SPACE


class ScenarioPacketSource(PacketSource):
    """Packet-source wrapper dispatching scenario events each cycle.

    Both bundled kernels (and any correctly written custom kernel) call
    :meth:`requests` once at the start of every injection cycle, which is
    the dispatch point of the scenario timeline.
    """

    def __init__(self, runtime: "ScenarioRuntime", inner: PacketSource) -> None:
        self.runtime = runtime
        self.inner = inner

    def requests(self, cycle: int):
        self.runtime.advance(cycle)
        return self.inner.requests(cycle)

    def reset(self) -> None:
        self.runtime.rewind()
        self.inner.reset()


class ScenarioRuntime:
    """Executes one scenario timeline against a network + packet source.

    Args:
        scenario: The timeline to execute.
        network: The network under test (topology events mutate it).
        source: The experiment's packet source.  Traffic events
            (:class:`~repro.scenario.events.TrafficPhase` /
            :class:`~repro.scenario.events.RateRamp`) require a
            :class:`~repro.traffic.generator.BernoulliPacketSource`.
        base_seed: Experiment seed; phase pattern seeds derive from it.
        injection_end: Warm-up + measurement cycles.  The timeline must fit
            inside it -- events can never fire during drain (no backend
            polls the packet source there).

    Raises:
        ValueError: When the timeline reaches past ``injection_end`` or a
            traffic event targets a non-Bernoulli source.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        network: "Network",
        source: PacketSource,
        base_seed: int = 0,
        injection_end: Optional[int] = None,
    ) -> None:
        if not isinstance(scenario, ScenarioSpec):
            raise ValueError(f"scenario must be a ScenarioSpec, got {scenario!r}")
        self.scenario = scenario
        self.network = network
        self.source = source
        self.base_seed = base_seed
        if injection_end is not None and scenario.events:
            last = scenario.last_cycle()
            if last >= injection_end:
                raise ValueError(
                    f"scenario timeline reaches cycle {last} but injection "
                    f"stops at cycle {injection_end}; events cannot fire "
                    "during the drain phase"
                )
        needs_bernoulli = any(
            event.kind in ("traffic-phase", "rate-ramp")
            for event in scenario.events
        )
        if needs_bernoulli and not isinstance(source, BernoulliPacketSource):
            raise ValueError(
                "traffic-phase / rate-ramp events require a Bernoulli "
                f"packet source, got {type(source).__name__}"
            )
        for event in scenario.events:
            index = getattr(event, "elevator", None)
            if index is not None:
                # Fail fast on bad elevator indices instead of deep inside
                # the cycle loop (elevator_by_index raises ValueError).
                network.placement.elevator_by_index(index)
        self._events = scenario.events
        self._pointer = 0
        self._ramp: Optional[RateRamp] = None
        self._ramp_start_rate = 0.0
        self.packet_source = ScenarioPacketSource(self, source)

        # Pre-run snapshot, restored by finalize()/rewind() so scenario
        # mutations never leak into placements or sources shared with
        # later runs.
        placement = network.placement
        self._initial_faults = {
            e.index for e in placement.elevators if placement.is_faulty(e.index)
        }
        if isinstance(source, BernoulliPacketSource):
            self._initial_pattern = source.pattern
            self._initial_rate = source.packet_probability
        else:
            self._initial_pattern = None
            self._initial_rate = 0.0
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Lifecycle (driven by the Simulator)
    # ------------------------------------------------------------------ #
    def begin(self) -> None:
        """Open the implicit baseline measurement window (cycle 0)."""
        self.network.stats.begin_phase(BASELINE_PHASE_LABEL, 0)

    def advance(self, cycle: int) -> None:
        """Fire every event due at ``cycle`` and update an active ramp.

        Called once per injection cycle by the packet-source wrapper,
        before the cycle's traffic exists.
        """
        events = self._events
        pointer = self._pointer
        while pointer < len(events) and events[pointer].cycle <= cycle:
            event = events[pointer]
            pointer += 1
            self._pointer = pointer
            event.apply(self, cycle)
            if event.starts_phase:
                self.network.stats.begin_phase(event.phase_label(), cycle)
        self._pointer = pointer
        ramp = self._ramp
        if ramp is not None:
            self._apply_ramp_rate(ramp, cycle)

    def finalize(self, end_cycle: int) -> None:
        """Close the last measurement window and undo scenario mutations."""
        if self._finalized:
            return
        self._finalized = True
        self.network.stats.end_phase(end_cycle)
        self._restore()

    def rewind(self) -> None:
        """Reset the timeline and undo mutations (packet-source ``reset``)."""
        self._pointer = 0
        self._ramp = None
        self._finalized = False
        self._restore()

    # ------------------------------------------------------------------ #
    # Event effects (called by the event classes)
    # ------------------------------------------------------------------ #
    def set_traffic(
        self,
        pattern: Optional[str],
        options: Dict[str, Any],
        injection_rate: Optional[float],
        event_cycle: int,
    ) -> None:
        """Switch the Bernoulli source's pattern and/or rate in place."""
        source = self._bernoulli()
        if pattern is not None:
            seed = phase_pattern_seed(self.base_seed, event_cycle)
            source.pattern = self._build_pattern(pattern, options, seed)
        if injection_rate is not None:
            source.injection_rate = injection_rate
            source.packet_probability = injection_rate
            # An explicit rate overrides a running ramp; a pattern-only
            # phase is orthogonal to it and leaves the ramp running.
            self._ramp = None

    def start_ramp(self, ramp: RateRamp, cycle: Optional[int] = None) -> None:
        """Activate a rate ramp (interpolated on every following cycle).

        Overlap semantics: starting a ramp while another is active chains
        deterministically -- the outgoing ramp is first advanced to the
        handover cycle, so an implicit ``start_rate=None`` reads the old
        ramp's interpolated value *at* that cycle (not whatever rate the
        previous injection cycle happened to leave behind).  An explicit
        ``start_rate`` always wins, and :meth:`set_traffic` with an
        explicit rate still cancels any running ramp.
        """
        source = self._bernoulli()
        handover = ramp.cycle if cycle is None else cycle
        if self._ramp is not None:
            self._apply_ramp_rate(self._ramp, handover)
        self._ramp = ramp
        self._ramp_start_rate = (
            ramp.start_rate if ramp.start_rate is not None
            else source.packet_probability
        )

    def apply_fault(self, elevator_index: int) -> None:
        """Fail an elevator through the network (selection + links)."""
        self.network.fail_elevator(elevator_index)

    def apply_repair(self, elevator_index: int) -> None:
        """Repair an elevator through the network (selection + links)."""
        self.network.repair_elevator(elevator_index)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bernoulli(self) -> BernoulliPacketSource:
        if not isinstance(self.source, BernoulliPacketSource):
            raise ValueError(
                "traffic events require a Bernoulli packet source, got "
                f"{type(self.source).__name__}"
            )
        return self.source

    def _build_pattern(
        self, name: str, options: Dict[str, Any], seed: int
    ) -> TrafficPattern:
        """Instantiate a pattern/application on the network's mesh.

        Delegates to the same resolution rule as
        :meth:`repro.spec.TrafficSpec.build` (applications win when a name
        is registered in both registries), so an event's pattern name can
        never build something different than the same name in the spec's
        own traffic field.
        """
        from repro.traffic import build_traffic_pattern

        return build_traffic_pattern(
            name, self.network.mesh, seed=seed, options=options
        )

    def _apply_ramp_rate(self, ramp: RateRamp, cycle: int) -> None:
        if cycle >= ramp.end_cycle:
            rate = ramp.end_rate
            self._ramp = None
        elif cycle <= ramp.cycle:
            # Boundary: at exactly the ramp's start cycle (events fire at
            # the start of their cycle) the source runs at the start rate.
            rate = self._ramp_start_rate
        else:
            span = ramp.end_cycle - ramp.cycle
            fraction = (cycle - ramp.cycle) / span
            rate = self._ramp_start_rate + fraction * (
                ramp.end_rate - self._ramp_start_rate
            )
        source = self._bernoulli()
        source.injection_rate = rate
        source.packet_probability = rate

    def _restore(self) -> None:
        """Undo fault/link/traffic mutations (shared objects stay clean)."""
        network = self.network
        placement = network.placement
        # Repairs first: re-failing an initially faulty elevator could trip
        # the last-healthy-elevator guard while a scenario fault is still
        # marked; with every scenario fault repaired, re-marking the
        # pre-run faults always passes it.
        for elevator in placement.elevators:
            index = elevator.index
            if placement.is_faulty(index) and index not in self._initial_faults:
                network.repair_elevator(index)
        for elevator in placement.elevators:
            index = elevator.index
            if not placement.is_faulty(index) and index in self._initial_faults:
                network.fail_elevator(index)
        # Pre-run fault marks never sever links (old-API placements mark
        # faults before network construction), so link restoration comes
        # last to return re-marked elevators to their marked-but-linked
        # pre-run state.
        network.restore_all_links()
        source = self.source
        if isinstance(source, BernoulliPacketSource):
            if self._initial_pattern is not None:
                source.pattern = self._initial_pattern
            source.injection_rate = self._initial_rate
            source.packet_probability = self._initial_rate
