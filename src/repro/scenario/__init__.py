"""Event-driven dynamic scenarios: traffic phases + runtime fault injection.

The paper's evaluation runs each configuration against one static traffic
pattern on one static, healthy network.  This subsystem makes the *dynamic*
case -- "AdEle can be easily adjusted to consider faults, which is of great
interest in PC-3DNoCs" (Section V) -- a first-class, typed, cacheable part
of the experiment model:

* :mod:`repro.scenario.events` -- the registered event vocabulary
  (:class:`TrafficPhase`, :class:`RateRamp`, :class:`ElevatorFault`,
  :class:`ElevatorRepair`, :class:`StatsMarker`) and
  :func:`register_scenario_event` for plugins;
* :mod:`repro.scenario.spec` -- :class:`ScenarioSpec`, the ordered timeline
  that nests into :class:`repro.spec.ExperimentSpec` and enters canonical
  serialization (cache keys, derived seeds) only when set;
* :mod:`repro.scenario.runtime` -- the cycle-indexed dispatcher threading
  events through every simulation backend via the packet source, with
  per-phase measurement windows (:class:`repro.sim.stats.PhaseStats`).
"""

from repro.scenario.events import (
    SCENARIO_EVENT_REGISTRY,
    ElevatorFault,
    ElevatorRepair,
    RateRamp,
    ScenarioEvent,
    StatsMarker,
    TrafficPhase,
    available_scenario_events,
    event_from_dict,
    register_scenario_event,
)
from repro.scenario.runtime import (
    BASELINE_PHASE_LABEL,
    ScenarioPacketSource,
    ScenarioRuntime,
    phase_pattern_seed,
)
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "SCENARIO_EVENT_REGISTRY",
    "BASELINE_PHASE_LABEL",
    "ScenarioEvent",
    "ScenarioSpec",
    "ScenarioRuntime",
    "ScenarioPacketSource",
    "TrafficPhase",
    "RateRamp",
    "ElevatorFault",
    "ElevatorRepair",
    "StatsMarker",
    "available_scenario_events",
    "event_from_dict",
    "phase_pattern_seed",
    "register_scenario_event",
]
