"""Typed, serializable scenario events.

A scenario event is a point on a simulation's cycle timeline that changes
the world mid-run: the traffic pattern or injection rate switches
(:class:`TrafficPhase`), the rate ramps linearly (:class:`RateRamp`), an
elevator column fails or is repaired (:class:`ElevatorFault` /
:class:`ElevatorRepair`), or a named measurement window simply begins
(:class:`StatsMarker`).

Events are frozen dataclasses registered by *kind* in
:data:`SCENARIO_EVENT_REGISTRY` -- the same :class:`~repro.registry.Registry`
machinery behind policies, patterns, placements, backends and optimizers --
so ``python -m repro list`` shows them and plugins can contribute new kinds
with :func:`register_scenario_event`.  Every event round-trips losslessly
through ``to_dict()`` / ``from_dict()``; the dictionary form is what a
:class:`~repro.scenario.spec.ScenarioSpec` embeds into the canonical
experiment serialization (and therefore into cache keys and derived seeds).

Semantics shared by all events:

* ``cycle`` is the simulation cycle the event fires at.  Events are applied
  at the *start* of their cycle, before any packet of that cycle is
  created, injected or moved -- on every simulation backend, which is what
  keeps scenario runs bit-identical across kernels.
* Events may only fire during the injection window (warm-up + measurement
  cycles); the runtime rejects timelines that extend into the drain phase.
* An event whose ``starts_phase`` flag is set opens a new per-phase
  measurement window (:class:`~repro.sim.stats.PhaseStats`) labelled by
  :meth:`ScenarioEvent.phase_label`.

Registering a custom event kind::

    from repro.scenario import ScenarioEvent, register_scenario_event

    @register_scenario_event("my-event", description="...")
    @dataclass(frozen=True)
    class MyEvent(ScenarioEvent):
        kind = "my-event"

        def apply(self, runtime, cycle):
            ...  # mutate runtime.network / runtime.source
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import TYPE_CHECKING, Any, ClassVar, Dict, Mapping, Optional

from repro.jsonutil import check_json_native
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario.runtime import ScenarioRuntime

#: Registry of scenario event kinds.  Entries are event *classes* keyed by
#: their ``kind`` string; :meth:`ScenarioSpec.from_dict` resolves kinds
#: through it, and ``python -m repro list`` renders it.
SCENARIO_EVENT_REGISTRY: Registry = Registry("scenario event")

#: Decorator registering a scenario event class by kind::
#:
#:     @register_scenario_event("my-event", description="...")
#:     class MyEvent(ScenarioEvent): ...
register_scenario_event = SCENARIO_EVENT_REGISTRY.register


def _require_cycle(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValueError(f"{what} must be a non-negative integer, got {value!r}")
    return value


def _optional_rate(value: Any, what: str) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise ValueError(f"{what} must be a non-negative number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class of scenario events (see module docstring).

    Attributes:
        cycle: Simulation cycle the event fires at (applied at the start of
            that cycle, before any traffic of the cycle exists).
        kind: Registry kind string of the event class.
        starts_phase: Whether firing opens a new per-phase measurement
            window.
    """

    cycle: int = 0
    kind: ClassVar[str] = "event"
    starts_phase: ClassVar[bool] = True

    def __post_init__(self) -> None:
        _require_cycle(self.cycle, f"{self.kind} event cycle")

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #
    def apply(self, runtime: "ScenarioRuntime", cycle: int) -> None:
        """Apply the event's effect through the runtime (default: none)."""

    def phase_label(self) -> str:
        """Label of the measurement window this event opens."""
        label = getattr(self, "label", None)
        if label:
            return str(label)
        return f"{self.kind}@{self.cycle}"

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form (``kind`` + every dataclass field)."""
        data: Dict[str, Any] = {"kind": self.kind}
        for spec_field in dataclass_fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, dict):
                value = dict(value)
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioEvent":
        """Rebuild an event from its canonical form (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{cls.kind} event must be a mapping, got {type(data).__name__}"
            )
        allowed = {spec_field.name for spec_field in dataclass_fields(cls)}
        payload = {key: value for key, value in data.items() if key != "kind"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(
                f"unknown {cls.kind} event field(s): {', '.join(unknown)}; "
                f"expected a subset of {sorted(allowed)}"
            )
        return cls(**payload)


@register_scenario_event(
    "traffic-phase",
    aliases=("traffic_phase",),
    description="switch the traffic pattern and/or injection rate at a cycle",
)
@dataclass(frozen=True)
class TrafficPhase(ScenarioEvent):
    """Switch the traffic pattern and/or injection rate at a cycle.

    The underlying Bernoulli packet source keeps its RNG stream (injection
    coin flips and packet lengths continue uninterrupted); only the
    destination pattern object and/or the per-cycle injection probability
    change.  A new pattern is built with a seed derived deterministically
    from the experiment seed and the event cycle, so runs stay reproducible
    across processes and backends.

    Attributes:
        pattern: Registered traffic pattern or application name to switch
            to, or ``None`` to keep the current pattern.
        injection_rate: New packet injection rate, or ``None`` to keep the
            current rate.
        options: Extra keyword arguments for the pattern constructor (must
            be empty for application traffic or when ``pattern`` is None).
        label: Optional label of the measurement window this phase opens.
    """

    pattern: Optional[str] = None
    injection_rate: Optional[float] = None
    options: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    kind: ClassVar[str] = "traffic-phase"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pattern is None and self.injection_rate is None:
            raise ValueError(
                "a traffic-phase event must change the pattern, the "
                "injection rate, or both"
            )
        if self.pattern is not None and (
            not isinstance(self.pattern, str) or not self.pattern
        ):
            raise ValueError(f"pattern must be a non-empty string, got {self.pattern!r}")
        object.__setattr__(
            self, "injection_rate", _optional_rate(self.injection_rate, "injection_rate")
        )
        options = self.options or {}
        if not isinstance(options, Mapping):
            raise ValueError(f"options must be a mapping, got {type(options).__name__}")
        if options and self.pattern is None:
            raise ValueError("traffic-phase options require a pattern")
        object.__setattr__(
            self, "options", dict(check_json_native(dict(options), "traffic-phase options"))
        )

    def apply(self, runtime: "ScenarioRuntime", cycle: int) -> None:
        runtime.set_traffic(
            pattern=self.pattern,
            options=self.options,
            injection_rate=self.injection_rate,
            event_cycle=self.cycle,
        )

    def phase_label(self) -> str:
        if self.label:
            return self.label
        if self.pattern is not None:
            return f"{self.pattern}@{self.cycle}"
        return f"rate={self.injection_rate:g}@{self.cycle}"


@register_scenario_event(
    "rate-ramp",
    aliases=("rate_ramp",),
    description="linearly ramp the injection rate over a cycle window",
)
@dataclass(frozen=True)
class RateRamp(ScenarioEvent):
    """Linearly ramp the injection rate between two cycles.

    From ``cycle`` to ``end_cycle`` the packet injection probability is
    re-interpolated every cycle; at ``end_cycle`` it settles on
    ``end_rate``.  The destination pattern (and its RNG stream) is never
    touched.

    Attributes:
        end_cycle: Cycle the ramp completes at (exclusive of further
            interpolation; must be greater than ``cycle``).
        end_rate: Injection rate reached at ``end_cycle``.
        start_rate: Rate at ``cycle``; ``None`` starts from whatever the
            rate is when the ramp begins.
        label: Optional label of the measurement window the ramp opens.
    """

    end_cycle: int = 0
    end_rate: float = 0.0
    start_rate: Optional[float] = None
    label: Optional[str] = None

    kind: ClassVar[str] = "rate-ramp"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_cycle(self.end_cycle, "rate-ramp end_cycle")
        if self.end_cycle <= self.cycle:
            raise ValueError(
                f"rate-ramp end_cycle ({self.end_cycle}) must be greater "
                f"than its start cycle ({self.cycle})"
            )
        rate = _optional_rate(self.end_rate, "end_rate")
        if rate is None:
            raise ValueError("rate-ramp end_rate is required")
        object.__setattr__(self, "end_rate", rate)
        object.__setattr__(self, "start_rate", _optional_rate(self.start_rate, "start_rate"))

    def apply(self, runtime: "ScenarioRuntime", cycle: int) -> None:
        runtime.start_ramp(self, cycle)

    def phase_label(self) -> str:
        if self.label:
            return self.label
        return f"ramp->{self.end_rate:g}@{self.cycle}"


@register_scenario_event(
    "elevator-fault",
    aliases=("elevator_fault", "fault"),
    description="mark an elevator faulty mid-run (selection excluded, TSV "
    "links severed)",
)
@dataclass(frozen=True)
class ElevatorFault(ScenarioEvent):
    """Mark an elevator column faulty at a cycle.

    The elevator is excluded from all subsequent selections (AdEle routers
    rebuild their subset tables, keeping the learned costs of surviving
    elevators) and its vertical TSV links are severed.  Packets assigned to
    the elevator *before* the fault stall at the column until a matching
    :class:`ElevatorRepair` -- a network that cannot re-route them will not
    drain, which shows up as a dropped delivery ratio, exactly like a real
    mid-operation fault.  Failing the *last* healthy elevator of a
    multi-layer mesh is rejected with a :class:`ValueError` -- inter-layer
    packets could not even be assigned an elevator, so the degenerate
    network cannot be simulated.

    Attributes:
        elevator: Dense elevator index within the experiment's placement.
        label: Optional label of the measurement window the fault opens.
    """

    elevator: int = 0
    label: Optional[str] = None

    kind: ClassVar[str] = "elevator-fault"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_cycle(self.elevator, "elevator index")

    def apply(self, runtime: "ScenarioRuntime", cycle: int) -> None:
        runtime.apply_fault(self.elevator)

    def phase_label(self) -> str:
        if self.label:
            return self.label
        return f"fault:e{self.elevator}@{self.cycle}"


@register_scenario_event(
    "elevator-repair",
    aliases=("elevator_repair", "repair"),
    description="repair a faulty elevator mid-run (selection and TSV links "
    "restored)",
)
@dataclass(frozen=True)
class ElevatorRepair(ScenarioEvent):
    """Restore a faulty elevator column at a cycle.

    The inverse of :class:`ElevatorFault`: the elevator re-enters selection
    (AdEle routers rebuild their subset tables) and its vertical links are
    reconnected, so flits stalled at the column resume.

    Attributes:
        elevator: Dense elevator index within the experiment's placement.
        label: Optional label of the measurement window the repair opens.
    """

    elevator: int = 0
    label: Optional[str] = None

    kind: ClassVar[str] = "elevator-repair"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_cycle(self.elevator, "elevator index")

    def apply(self, runtime: "ScenarioRuntime", cycle: int) -> None:
        runtime.apply_repair(self.elevator)

    def phase_label(self) -> str:
        if self.label:
            return self.label
        return f"repair:e{self.elevator}@{self.cycle}"


@register_scenario_event(
    "stats-marker",
    aliases=("stats_marker", "marker"),
    description="open a named per-phase measurement window at a cycle",
)
@dataclass(frozen=True)
class StatsMarker(ScenarioEvent):
    """Open a named measurement window without changing anything else.

    Attributes:
        label: Name of the window (required).
    """

    label: str = ""

    kind: ClassVar[str] = "stats-marker"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.label, str) or not self.label:
            raise ValueError("a stats-marker event needs a non-empty label")

    def phase_label(self) -> str:
        return self.label


def event_from_dict(data: Mapping[str, Any]) -> ScenarioEvent:
    """Rebuild any registered event from its canonical dictionary.

    Raises:
        repro.registry.UnknownComponentError: For unregistered kinds.
        ValueError: For malformed event payloads.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"scenario event must be a mapping, got {type(data).__name__}")
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"scenario event needs a 'kind' string, got {kind!r}")
    event_cls = SCENARIO_EVENT_REGISTRY.get(kind)
    return event_cls.from_dict(data)


def available_scenario_events() -> list:
    """Sorted canonical kinds of every registered scenario event."""
    return SCENARIO_EVENT_REGISTRY.names()
