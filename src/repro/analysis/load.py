"""Per-elevator load distribution analysis (Fig. 5).

The paper's Fig. 5 plots, for each policy, the traffic load of the routers
sitting on elevator columns normalized to the average load of routers
without an elevator.  A balanced policy shows similar bars for every
elevator; Elevator-First shows one highly loaded elevator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.engine import SimulationResult
from repro.sim.network import Network


@dataclass
class ElevatorLoadDistribution:
    """Normalized per-elevator load of one simulation.

    Attributes:
        policy: Policy name that produced the run.
        loads: ``{elevator_index: normalized_load}`` -- mean forwarded-flit
            load of the elevator column's routers divided by the mean load
            of elevator-less routers.
        baseline: Always 1.0 (the elevator-less routers' own normalization),
            kept for symmetry with the figure's white bar.
    """

    policy: str
    loads: Dict[int, float]
    baseline: float = 1.0

    @property
    def max_load(self) -> float:
        """The most loaded elevator's normalized load."""
        return max(self.loads.values()) if self.loads else 0.0

    @property
    def min_load(self) -> float:
        """The least loaded elevator's normalized load."""
        return min(self.loads.values()) if self.loads else 0.0

    @property
    def imbalance(self) -> float:
        """Max/min load ratio (1.0 = perfectly balanced)."""
        minimum = self.min_load
        if minimum <= 0:
            return float("inf")
        return self.max_load / minimum

    def ordered_loads(self) -> List[float]:
        """Normalized loads in elevator-index order."""
        return [self.loads[index] for index in sorted(self.loads)]


def elevator_load_distribution(
    network: Network, result: SimulationResult
) -> ElevatorLoadDistribution:
    """Compute the Fig. 5 load distribution from a finished simulation."""
    elevator_nodes = network.elevator_nodes_by_index()
    loads = result.stats.normalized_elevator_load(elevator_nodes)
    return ElevatorLoadDistribution(policy=result.policy_name, loads=loads)
