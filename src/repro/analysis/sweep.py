"""Latency-vs-injection-rate sweeps and saturation detection (Fig. 4).

A *latency curve* records the average packet latency of one policy at a
series of injection rates.  The paper defines the saturation point as "the
injection rate at which latency is 10x zero-load latency"; the same
definition is implemented here (with the factor configurable) and used by
the Fig. 6 bench to place its low/high injection-rate operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import (
    ExperimentConfig,
    build_network,
    build_policy,
    resolve_placement,
    run_experiment,
)
from repro.energy.model import EnergyModel
from repro.sim.engine import SimulationResult


@dataclass
class LatencyCurve:
    """Average latency as a function of injection rate for one policy.

    Attributes:
        policy: Policy name.
        points: ``(injection_rate, average_latency)`` pairs in sweep order.
        results: Full simulation results keyed by injection rate.
    """

    policy: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    results: Dict[float, SimulationResult] = field(default_factory=dict)

    def add(self, injection_rate: float, result: SimulationResult) -> None:
        """Append one sweep point."""
        self.points.append((injection_rate, result.average_latency))
        self.results[injection_rate] = result

    def latencies(self) -> List[float]:
        """Latency values in sweep order."""
        return [latency for _, latency in self.points]

    def rates(self) -> List[float]:
        """Injection rates in sweep order."""
        return [rate for rate, _ in self.points]

    def latency_at(self, injection_rate: float) -> float:
        """Latency measured at a specific injection rate."""
        for rate, latency in self.points:
            if rate == injection_rate:
                return latency
        raise KeyError(f"injection rate {injection_rate} not in sweep")


def zero_load_latency(curve: LatencyCurve) -> float:
    """Zero-load latency estimate: the latency at the lowest swept rate."""
    if not curve.points:
        raise ValueError("empty latency curve")
    lowest_rate_point = min(curve.points, key=lambda point: point[0])
    return lowest_rate_point[1]


def saturation_rate(
    curve: LatencyCurve,
    factor: float = 10.0,
    zero_load: Optional[float] = None,
) -> float:
    """Saturation injection rate (paper definition).

    The first swept rate whose latency reaches ``factor`` times the zero-load
    latency; if no swept point saturates, the highest swept rate is returned
    (the configuration did not saturate within the sweep).
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    if not curve.points:
        raise ValueError("empty latency curve")
    reference = zero_load if zero_load is not None else zero_load_latency(curve)
    threshold = factor * reference
    for rate, latency in sorted(curve.points):
        if latency >= threshold:
            return rate
    return max(rate for rate, _ in curve.points)


def latency_sweep(
    base_config: ExperimentConfig,
    policies: Sequence[str],
    injection_rates: Sequence[float],
    energy_model: Optional[EnergyModel] = None,
) -> Dict[str, LatencyCurve]:
    """Sweep injection rates for several policies on one configuration.

    The same placement object is reused across the sweep; each policy gets a
    fresh network (so online state never leaks between policies), and each
    injection rate reuses that network after a reset (so a sweep is one
    network construction per policy, not per point).

    Args:
        base_config: Configuration whose ``injection_rate`` and ``policy``
            fields are overridden by the sweep.
        policies: Policy names to sweep.
        injection_rates: Flit injection rates per node per cycle.
        energy_model: Optional energy model recorded into each result.

    Returns:
        ``{policy: LatencyCurve}`` in the given policy order.
    """
    if not injection_rates:
        raise ValueError("injection_rates must not be empty")
    placement = resolve_placement(base_config)
    model = energy_model if energy_model is not None else EnergyModel()
    curves: Dict[str, LatencyCurve] = {}
    for policy_name in policies:
        policy_config = base_config.with_(policy=policy_name)
        policy = build_policy(policy_config, placement)
        network = build_network(policy_config, placement=placement, policy=policy)
        curve = LatencyCurve(policy=policy_name)
        for rate in injection_rates:
            config = policy_config.with_(injection_rate=rate)
            network.reset()
            result = run_experiment(config, energy_model=model, network=network)
            curve.add(rate, result)
        curves[policy_name] = curve
    return curves
