"""Latency-vs-injection-rate sweeps and saturation detection (Fig. 4).

A *latency curve* records the average packet latency of one policy at a
series of injection rates.  The paper defines the saturation point as "the
injection rate at which latency is 10x zero-load latency"; the same
definition is implemented here (with the factor configurable) and used by
the Fig. 6 bench to place its low/high injection-rate operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.runner import DesignCache, ExperimentConfig, as_spec
from repro.energy.model import EnergyModel
from repro.sim.engine import SimulationResult
from repro.spec import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec -> runner)
    from repro.exec.cache import ResultCache


@dataclass
class LatencyCurve:
    """Average latency as a function of injection rate for one policy.

    Attributes:
        policy: Policy name.
        points: ``(injection_rate, average_latency)`` pairs in sweep order.
        results: Full simulation results keyed by injection rate.  Only
            populated when points are added via :meth:`add` with a result
            object; curves built from engine summary rows (e.g. by
            :func:`latency_sweep`, which routes through
            :class:`~repro.exec.batch.ExperimentBatch`) leave it empty.
    """

    policy: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    results: Dict[float, SimulationResult] = field(default_factory=dict)

    def add(self, injection_rate: float, result: SimulationResult) -> None:
        """Append one sweep point with its full simulation result."""
        self.points.append((injection_rate, result.average_latency))
        self.results[injection_rate] = result

    def add_point(self, injection_rate: float, average_latency: float) -> None:
        """Append one sweep point from a summary row (no result object)."""
        self.points.append((injection_rate, average_latency))

    def latencies(self) -> List[float]:
        """Latency values in sweep order."""
        return [latency for _, latency in self.points]

    def rates(self) -> List[float]:
        """Injection rates in sweep order."""
        return [rate for rate, _ in self.points]

    def latency_at(self, injection_rate: float) -> float:
        """Latency measured at a specific injection rate."""
        for rate, latency in self.points:
            if rate == injection_rate:
                return latency
        raise KeyError(f"injection rate {injection_rate} not in sweep")


def zero_load_latency(curve: LatencyCurve) -> float:
    """Zero-load latency estimate: the latency at the lowest swept rate."""
    if not curve.points:
        raise ValueError("empty latency curve")
    lowest_rate_point = min(curve.points, key=lambda point: point[0])
    return lowest_rate_point[1]


def saturation_rate(
    curve: LatencyCurve,
    factor: float = 10.0,
    zero_load: Optional[float] = None,
) -> float:
    """Saturation injection rate (paper definition).

    The first swept rate whose latency reaches ``factor`` times the zero-load
    latency; if no swept point saturates, the highest swept rate is returned
    (the configuration did not saturate within the sweep).
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    if not curve.points:
        raise ValueError("empty latency curve")
    reference = zero_load if zero_load is not None else zero_load_latency(curve)
    threshold = factor * reference
    for rate, latency in sorted(curve.points):
        if latency >= threshold:
            return rate
    return max(rate for rate, _ in curve.points)


def latency_sweep(
    base_config: Union[ExperimentSpec, ExperimentConfig],
    policies: Sequence[str],
    injection_rates: Sequence[float],
    energy_model: Optional[EnergyModel] = None,
    workers: int = 1,
    result_cache: Optional["ResultCache"] = None,
    design_cache: Optional[DesignCache] = None,
) -> Dict[str, LatencyCurve]:
    """Sweep injection rates for several policies on one configuration.

    The whole ``policies x injection_rates`` grid is routed through
    :class:`~repro.exec.batch.ExperimentBatch`: every point builds a fresh
    network from its spec (so no online state leaks between points and the
    sweep parallelizes freely), runs are fanned out over ``workers``
    processes, and finished points are served from ``result_cache``.

    Args:
        base_config: Spec (or legacy config) whose injection rate and policy
            are overridden by the sweep.
        policies: Registered policy names to sweep.
        injection_rates: Packet injection rates per node per cycle.
        energy_model: Optional energy model recorded into each result.
        workers: Worker processes (``1`` = serial).
        result_cache: Optional summary-row cache (disk-backed caches make
            repeated sweeps skip finished points).
        design_cache: Optional AdEle offline-design cache.

    Returns:
        ``{policy: LatencyCurve}`` in the given policy order.
    """
    # Imported lazily: repro.exec.batch itself imports the runner module, so
    # a module-level import here would be circular via repro.analysis.
    from repro.exec.batch import ExperimentBatch

    if not injection_rates:
        raise ValueError("injection_rates must not be empty")
    model = energy_model if energy_model is not None else EnergyModel()
    base_spec = as_spec(base_config)
    specs = [
        base_spec.with_(policy=policy_name, injection_rate=rate)
        for policy_name in policies
        for rate in injection_rates
    ]
    batch = ExperimentBatch(
        specs,
        workers=workers,
        result_cache=result_cache,
        design_cache=design_cache,
        energy_model=model,
    )
    outcomes = batch.run()
    curves: Dict[str, LatencyCurve] = {
        policy_name: LatencyCurve(policy=policy_name) for policy_name in policies
    }
    for outcome in outcomes:
        curves[outcome.spec.policy.name].add_point(
            outcome.spec.traffic.injection_rate, outcome.summary["average_latency"]
        )
    return curves
