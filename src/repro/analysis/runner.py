"""Declarative experiment construction and execution.

The benchmark harness needs to run many ``(placement, policy, traffic,
injection rate)`` combinations; this module centralizes how those pieces are
assembled so every bench and example builds identical networks:

* :func:`build_policy` knows how to construct each elevator-selection
  policy, running (and caching) AdEle's offline optimization when an AdEle
  variant is requested;
* :func:`build_network` / :func:`build_packet_source` assemble the simulator
  inputs per the paper's Table I defaults;
* :func:`run_experiment` executes one configuration and returns the
  :class:`~repro.sim.engine.SimulationResult`.

The AdEle offline design is cached in a :class:`DesignCache` so a latency
sweep over ten injection rates runs AMOSA once, exactly like the paper runs
the offline stage once per configuration.  The cache is an injectable,
clearable object (callers can pass their own, e.g. the disk-backed
:class:`repro.exec.cache.DiskDesignCache`); a module-level default instance
preserves the historical run-AMOSA-once-per-process behaviour.
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.amosa import AmosaConfig
from repro.core.pipeline import AdEleDesign, OfflineConfig, optimize_elevator_subsets
from repro.energy.model import EnergyModel
from repro.routing import make_policy
from repro.routing.base import ElevatorSelectionPolicy
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.network import Network
from repro.topology.elevators import ElevatorPlacement, standard_placement
from repro.traffic.applications import make_application_traffic
from repro.traffic.generator import BernoulliPacketSource, PacketSource
from repro.traffic.patterns import TrafficPattern, UniformTraffic, make_pattern

#: Key type of the offline-design cache (see :meth:`DesignCache.make_key`).
DesignKey = Tuple


class DesignCache:
    """In-memory cache of completed AdEle offline designs.

    Keys capture everything the offline stage depends on -- the placement
    *identity* (name, mesh shape and elevator columns, so two different
    custom placements sharing a name never collide), the assumed traffic
    label, the subset-size cap and the AMOSA hyper-parameters.  Instances
    are injectable into :func:`adele_design_for` / :func:`build_policy` and
    clearable, so sweeps with different offline settings cannot share stale
    designs and tests can isolate themselves cheaply.
    """

    def __init__(self) -> None:
        self._designs: Dict[DesignKey, AdEleDesign] = {}

    @staticmethod
    def make_key(
        placement: ElevatorPlacement,
        traffic_label: str,
        max_subset_size: Optional[int],
        amosa_config: AmosaConfig,
    ) -> DesignKey:
        """The cache key of one offline-stage invocation."""
        return (
            placement.name,
            tuple(placement.mesh.shape),
            tuple(placement.columns()),
            traffic_label,
            max_subset_size,
            astuple(amosa_config),
        )

    def get(self, key: DesignKey) -> Optional[AdEleDesign]:
        """The cached design for a key, or ``None``."""
        return self._designs.get(key)

    def put(self, key: DesignKey, design: AdEleDesign) -> None:
        """Store a completed design under a key."""
        self._designs[key] = design

    def clear(self) -> None:
        """Drop every cached design."""
        self._designs.clear()

    def __len__(self) -> int:
        return len(self._designs)

    def __contains__(self, key: DesignKey) -> bool:
        return key in self._designs


#: Default process-wide design cache (injectable replacements: see
#: :func:`set_design_cache` and the ``cache`` parameter of
#: :func:`adele_design_for`).
_default_design_cache = DesignCache()


def _traffic_matrix_digest(traffic_matrix) -> str:
    """Short content hash of an explicit traffic matrix (for cache keys)."""
    items = sorted(traffic_matrix.items())
    blob = repr(items).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]

#: AMOSA settings small enough for the pure-Python search to stay fast while
#: still converging to a well-spread front on the 4x4x4 / 8x8x4 meshes.
DEFAULT_OFFLINE_AMOSA = AmosaConfig(
    initial_temperature=50.0,
    final_temperature=0.05,
    cooling_rate=0.85,
    iterations_per_temperature=40,
    hard_limit=20,
    soft_limit=40,
    initial_solutions=10,
    seed=1,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulated configuration.

    Attributes:
        placement: Placement name (``PS1``-``PS3``, ``PM``) or custom name
            registered by the caller via the ``placement_obj`` field.
        policy: Policy name (``elevator_first``, ``cda``, ``adele``,
            ``adele_rr``, ``minimal``).
        traffic: Traffic name (``uniform``, ``shuffle``, ... or an
            application name such as ``fft``).
        injection_rate: Packet injection rate per node per cycle (the x-axis
            of the paper's Fig. 4).
        warmup_cycles: Unmeasured warm-up cycles.
        measurement_cycles: Measured cycles.
        drain_cycles: Maximum drain cycles after injection stops.
        buffer_depth: Input buffer depth in flits (Table I: 4).
        min_packet_length: Minimum packet length in flits (Table I: 10).
        max_packet_length: Maximum packet length in flits (Table I: 30).
        seed: Seed for traffic and policy randomness.
        adele_max_subset_size: Subset-size cap for AdEle's offline stage.
        adele_low_traffic_threshold: Low-traffic override threshold.
        placement_obj: Optional explicit placement object overriding
            ``placement`` lookup by name.
    """

    placement: str = "PS1"
    policy: str = "adele"
    traffic: str = "uniform"
    injection_rate: float = 0.004
    warmup_cycles: int = 300
    measurement_cycles: int = 1500
    drain_cycles: int = 800
    buffer_depth: int = 4
    min_packet_length: int = 10
    max_packet_length: int = 30
    seed: int = 0
    adele_max_subset_size: Optional[int] = 4
    adele_low_traffic_threshold: Optional[float] = 0.25
    placement_obj: Optional[ElevatorPlacement] = field(
        default=None, compare=False, hash=False
    )

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------- #
# Building blocks
# ---------------------------------------------------------------------- #
def resolve_placement(config: ExperimentConfig) -> ElevatorPlacement:
    """Resolve the placement object of a configuration."""
    if config.placement_obj is not None:
        return config.placement_obj
    return standard_placement(config.placement)


def build_traffic(config: ExperimentConfig, placement: ElevatorPlacement) -> TrafficPattern:
    """Build the traffic pattern named by a configuration."""
    name = config.traffic.lower()
    application_names = {
        "canneal",
        "fft",
        "fluidanimate",
        "fluid.",
        "lu",
        "radix",
        "water",
    }
    if name in application_names:
        app = "fluidanimate" if name == "fluid." else name
        return make_application_traffic(app, placement.mesh, seed=config.seed)
    return make_pattern(name, placement.mesh, seed=config.seed)


def adele_design_for(
    placement: ElevatorPlacement,
    traffic_label: str = "uniform",
    traffic_matrix=None,
    max_subset_size: Optional[int] = 4,
    amosa_config: Optional[AmosaConfig] = None,
    cache: Optional[DesignCache] = None,
) -> AdEleDesign:
    """Run (or fetch from cache) AdEle's offline optimization for a placement.

    The paper runs the offline stage with uniform traffic ("the most
    pessimistic assumption"), so by default the uniform matrix is used
    regardless of the runtime traffic.

    Args:
        cache: Design cache to consult/populate; defaults to the process-wide
            cache (see :func:`get_design_cache`).
    """
    amosa = amosa_config if amosa_config is not None else DEFAULT_OFFLINE_AMOSA
    if cache is None:
        cache = _default_design_cache
    if traffic_matrix is not None:
        # An explicit matrix must never alias the label-only entry (nor be
        # persisted as the canonical "uniform" design by disk caches): key
        # it by content.
        traffic_label = f"{traffic_label}#{_traffic_matrix_digest(traffic_matrix)}"
    key = DesignCache.make_key(placement, traffic_label, max_subset_size, amosa)
    design = cache.get(key)
    if design is not None:
        return design
    if traffic_matrix is None:
        traffic_matrix = UniformTraffic(placement.mesh).traffic_matrix()
    offline = OfflineConfig(amosa=amosa, max_subset_size=max_subset_size)
    design = optimize_elevator_subsets(placement, traffic_matrix, offline)
    cache.put(key, design)
    return design


def get_design_cache() -> DesignCache:
    """The process-wide default design cache."""
    return _default_design_cache


def set_design_cache(cache: DesignCache) -> DesignCache:
    """Swap the process-wide default design cache; returns the old one."""
    global _default_design_cache
    previous = _default_design_cache
    _default_design_cache = cache
    return previous


def clear_design_cache() -> None:
    """Drop all designs from the default cache (used by tests)."""
    _default_design_cache.clear()


def build_policy(
    config: ExperimentConfig,
    placement: ElevatorPlacement,
    design_cache: Optional[DesignCache] = None,
) -> ElevatorSelectionPolicy:
    """Build the elevator-selection policy named by a configuration."""
    name = config.policy.lower()
    if name in ("adele", "adele_rr"):
        design = adele_design_for(
            placement,
            max_subset_size=config.adele_max_subset_size,
            cache=design_cache,
        )
        if name == "adele":
            return design.to_policy(
                low_traffic_threshold=config.adele_low_traffic_threshold,
                seed=config.seed,
            )
        return design.to_round_robin_policy(seed=config.seed)
    return make_policy(name, placement)


def build_network(
    config: ExperimentConfig,
    placement: Optional[ElevatorPlacement] = None,
    policy: Optional[ElevatorSelectionPolicy] = None,
    design_cache: Optional[DesignCache] = None,
) -> Network:
    """Build the network for a configuration."""
    placement = placement if placement is not None else resolve_placement(config)
    if policy is None:
        policy = build_policy(config, placement, design_cache=design_cache)
    return Network(
        placement,
        policy,
        num_vcs=2,
        buffer_depth=config.buffer_depth,
    )


def build_packet_source(
    config: ExperimentConfig, placement: ElevatorPlacement
) -> PacketSource:
    """Build the packet source for a configuration."""
    pattern = build_traffic(config, placement)
    return BernoulliPacketSource(
        pattern,
        config.injection_rate,
        min_packet_length=config.min_packet_length,
        max_packet_length=config.max_packet_length,
        seed=config.seed,
    )


def run_experiment(
    config: ExperimentConfig,
    energy_model: Optional[EnergyModel] = None,
    network: Optional[Network] = None,
) -> SimulationResult:
    """Run one configuration end to end and return its result."""
    placement = (
        network.placement if network is not None else resolve_placement(config)
    )
    if network is None:
        network = build_network(config, placement=placement)
    else:
        network.reset()
    source = build_packet_source(config, placement)
    simulator = Simulator(
        network,
        source,
        warmup_cycles=config.warmup_cycles,
        measurement_cycles=config.measurement_cycles,
        drain_cycles=config.drain_cycles,
        energy_model=energy_model if energy_model is not None else EnergyModel(),
    )
    return simulator.run()
