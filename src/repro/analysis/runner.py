"""Declarative experiment construction and execution.

The benchmark harness needs to run many ``(placement, policy, traffic,
injection rate)`` combinations; this module centralizes how those pieces are
assembled so every bench and example builds identical networks:

* :func:`build_policy` knows how to construct each elevator-selection
  policy, running (and caching) AdEle's offline optimization when an AdEle
  variant is requested;
* :func:`build_network` / :func:`build_packet_source` assemble the simulator
  inputs per the paper's Table I defaults;
* :func:`run_experiment` executes one configuration and returns the
  :class:`~repro.sim.engine.SimulationResult`.

The AdEle offline design is cached in a :class:`DesignCache` so a latency
sweep over ten injection rates runs AMOSA once, exactly like the paper runs
the offline stage once per configuration.  The cache is an injectable,
clearable object (callers can pass their own, e.g. the disk-backed
:class:`repro.exec.cache.DiskDesignCache`); a module-level default instance
preserves the historical run-AMOSA-once-per-process behaviour.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.core.amosa import AmosaConfig, ProgressCallback
from repro.core.optimizers import (
    DEFAULT_OFFLINE_AMOSA,
    OPTIMIZER_REGISTRY,
    canonical_optimizer_options,
)
from repro.core.pipeline import AdEleDesign, OfflineConfig, optimize_elevator_subsets
from repro.core.selection import select_by_strategy, spread_selection
from repro.energy.model import EnergyModel
from repro.routing import make_policy
from repro.routing.base import ElevatorSelectionPolicy, RouteComputation
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.network import Network
from repro.spec import (
    DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD,
    DEFAULT_ADELE_MAX_SUBSET_SIZE,
    DEFAULT_NUM_REPRESENTATIVES,
    DesignSpec,
    ExperimentSpec,
    PlacementSpec,
    PolicySpec,
    SimSpec,
    TrafficSpec,
)
from repro.topology.elevators import ElevatorPlacement
from repro.traffic.generator import BernoulliPacketSource, PacketSource
from repro.traffic.patterns import PATTERN_REGISTRY, TrafficPattern, UniformTraffic

#: Key type of the offline-design cache (see :meth:`DesignCache.make_key`).
DesignKey = Tuple


class DesignCache:
    """In-memory cache of completed AdEle offline designs.

    Keys capture everything the offline stage depends on -- the placement
    *identity* (name, mesh shape and elevator columns, so two different
    custom placements sharing a name never collide), the assumed traffic
    label, the subset-size cap, the optimizer name and its fully resolved
    (defaults-applied) options.  The selection strategy is deliberately
    *not* part of the key: it only picks a point from the archive and is
    re-applied after every cache fetch.  Instances are injectable into
    :func:`adele_design_for` / :func:`build_policy` and clearable, so
    sweeps with different offline settings cannot share stale designs and
    tests can isolate themselves cheaply.
    """

    def __init__(self) -> None:
        self._designs: Dict[DesignKey, AdEleDesign] = {}

    @staticmethod
    def make_key(
        placement: ElevatorPlacement,
        traffic_label: str,
        max_subset_size: Optional[int],
        amosa_config: Optional[AmosaConfig] = None,
        optimizer: str = "amosa",
        optimizer_options: Optional[Mapping[str, Any]] = None,
        weight_distance_by_traffic: bool = False,
    ) -> DesignKey:
        """The cache key of one offline-stage invocation.

        ``optimizer_options`` should be the *fully resolved* options (see
        :func:`repro.core.optimizers.canonical_optimizer_options`); when
        omitted they are derived from ``amosa_config`` (legacy callers) or
        the optimizer's defaults.  ``weight_distance_by_traffic`` extends
        the key only when enabled, so every key minted before the knob
        existed stays byte-identical.  ``num_representatives`` is
        deliberately *not* part of the key: like the selection strategy it
        only reads the archive and is re-applied after every cache fetch.
        """
        canonical = optimizer
        if canonical in OPTIMIZER_REGISTRY:
            canonical = OPTIMIZER_REGISTRY.entry(canonical).name
        if optimizer_options is None:
            if canonical == "amosa":
                base = amosa_config if amosa_config is not None else DEFAULT_OFFLINE_AMOSA
                optimizer_options = asdict(base)
            else:
                optimizer_options = canonical_optimizer_options(canonical, {})
        options_blob = json.dumps(
            dict(optimizer_options), sort_keys=True, separators=(",", ":")
        )
        key: DesignKey = (
            placement.name,
            tuple(placement.mesh.shape),
            tuple(placement.columns()),
            traffic_label,
            max_subset_size,
            canonical,
            options_blob,
        )
        if weight_distance_by_traffic:
            key += (("weight_distance_by_traffic", True),)
        return key

    def get(self, key: DesignKey) -> Optional[AdEleDesign]:
        """The cached design for a key, or ``None``."""
        return self._designs.get(key)

    def put(self, key: DesignKey, design: AdEleDesign) -> None:
        """Store a completed design under a key."""
        self._designs[key] = design

    def clear(self) -> None:
        """Drop every cached design."""
        self._designs.clear()

    def __len__(self) -> int:
        return len(self._designs)

    def __contains__(self, key: DesignKey) -> bool:
        return key in self._designs


#: Default process-wide design cache (injectable replacements: see
#: :func:`set_design_cache` and the ``cache`` parameter of
#: :func:`adele_design_for`).
_default_design_cache = DesignCache()


def _traffic_matrix_digest(traffic_matrix) -> str:
    """Short content hash of an explicit traffic matrix (for cache keys)."""
    items = sorted(traffic_matrix.items())
    blob = repr(items).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]

# DEFAULT_OFFLINE_AMOSA now lives in repro.core.optimizers (the optimizer
# registry resolves amosa options against it); re-exported here for the
# historical import path (tests monkeypatch this module attribute).


#: Internal depth counter: while positive, constructing the deprecated
#: :class:`ExperimentConfig` shim does not emit a :class:`DeprecationWarning`
#: (used by the compatibility converters, never by user code).
_shim_quiet_depth = 0


@contextlib.contextmanager
def _quiet_config_shim() -> Iterator[None]:
    """Suppress the ExperimentConfig deprecation warning (internal use)."""
    global _shim_quiet_depth
    _shim_quiet_depth += 1
    try:
        yield
    finally:
        _shim_quiet_depth -= 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Deprecated flat configuration shim.

    .. deprecated:: 1.2
        Construct a typed :class:`repro.spec.ExperimentSpec` instead (see
        :mod:`repro.api`); this shim converts to/from it so existing
        scripts, benches and cached results keep working, but emits a
        :class:`DeprecationWarning` on construction.

    Attributes:
        placement: Placement name (``PS1``-``PS3``, ``PM``) or custom name
            registered by the caller via the ``placement_obj`` field.
        policy: Policy name (``elevator_first``, ``cda``, ``adele``,
            ``adele_rr``, ``minimal``).
        traffic: Traffic name (``uniform``, ``shuffle``, ... or an
            application name such as ``fft``).
        injection_rate: Packet injection rate per node per cycle (the x-axis
            of the paper's Fig. 4).
        warmup_cycles: Unmeasured warm-up cycles.
        measurement_cycles: Measured cycles.
        drain_cycles: Maximum drain cycles after injection stops.
        buffer_depth: Input buffer depth in flits (Table I: 4).
        min_packet_length: Minimum packet length in flits (Table I: 10).
        max_packet_length: Maximum packet length in flits (Table I: 30).
        seed: Seed for traffic and policy randomness.
        adele_max_subset_size: Subset-size cap for AdEle's offline stage.
        adele_low_traffic_threshold: Low-traffic override threshold.
        placement_obj: Optional explicit placement object overriding
            ``placement`` lookup by name.
    """

    placement: str = "PS1"
    policy: str = "adele"
    traffic: str = "uniform"
    injection_rate: float = 0.004
    warmup_cycles: int = 300
    measurement_cycles: int = 1500
    drain_cycles: int = 800
    buffer_depth: int = 4
    min_packet_length: int = 10
    max_packet_length: int = 30
    seed: int = 0
    adele_max_subset_size: Optional[int] = 4
    adele_low_traffic_threshold: Optional[float] = 0.25
    placement_obj: Optional[ElevatorPlacement] = field(
        default=None, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not _shim_quiet_depth:
            warnings.warn(
                "ExperimentConfig is deprecated; build a typed "
                "repro.spec.ExperimentSpec (see repro.api) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy of the configuration with some fields replaced."""
        with _quiet_config_shim():
            return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Spec interop
    # ------------------------------------------------------------------ #
    def to_spec(self) -> ExperimentSpec:
        """The equivalent typed :class:`~repro.spec.ExperimentSpec`."""
        return spec_from_config(self)

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "ExperimentConfig":
        """Build a (quiet) shim instance from a typed spec.

        Lossy for components outside the flat-config vocabulary: traffic
        options and non-AdEle policy options have no field here and are
        dropped.
        """
        return config_from_spec(spec)


def spec_from_config(config: ExperimentConfig) -> ExperimentSpec:
    """Convert the deprecated flat config into a typed spec.

    A supplied ``placement_obj`` becomes a *structural*
    :class:`~repro.spec.PlacementSpec` (mesh shape + columns, keyed under
    ``config.placement``), so two different custom placements reusing a name
    can never alias each other.  AdEle's knobs move into the policy options;
    for non-AdEle policies they are meaningless and intentionally dropped.
    """
    if config.placement_obj is not None:
        placement = PlacementSpec.from_placement(
            config.placement_obj, name=config.placement
        )
    else:
        placement = PlacementSpec(name=config.placement)
    options: Dict[str, object] = {}
    policy_spec = PolicySpec(name=config.policy)
    if policy_spec.needs_design:
        options = {
            "max_subset_size": config.adele_max_subset_size,
            "low_traffic_threshold": config.adele_low_traffic_threshold,
        }
        policy_spec = PolicySpec(name=config.policy, options=options)
    return ExperimentSpec(
        placement=placement,
        policy=policy_spec,
        traffic=TrafficSpec(
            pattern=config.traffic,
            injection_rate=config.injection_rate,
            min_packet_length=config.min_packet_length,
            max_packet_length=config.max_packet_length,
        ),
        sim=SimSpec(
            warmup_cycles=config.warmup_cycles,
            measurement_cycles=config.measurement_cycles,
            drain_cycles=config.drain_cycles,
            buffer_depth=config.buffer_depth,
            seed=config.seed,
        ),
    )


def config_from_spec(spec: ExperimentSpec) -> ExperimentConfig:
    """Convert a typed spec into the deprecated flat shim (no warning).

    Lossy where the flat form has no vocabulary: traffic options and policy
    options other than AdEle's two knobs are dropped.
    """
    placement_obj = None
    if spec.placement.is_structural:
        placement_obj = spec.placement.resolve()
    with _quiet_config_shim():
        return ExperimentConfig(
            placement=spec.placement.name,
            policy=spec.policy.name,
            traffic=spec.traffic.pattern,
            injection_rate=spec.traffic.injection_rate,
            warmup_cycles=spec.sim.warmup_cycles,
            measurement_cycles=spec.sim.measurement_cycles,
            drain_cycles=spec.sim.drain_cycles,
            buffer_depth=spec.sim.buffer_depth,
            min_packet_length=spec.traffic.min_packet_length,
            max_packet_length=spec.traffic.max_packet_length,
            seed=spec.sim.seed,
            adele_max_subset_size=spec.policy.option(
                "max_subset_size", DEFAULT_ADELE_MAX_SUBSET_SIZE
            ),
            adele_low_traffic_threshold=spec.policy.option(
                "low_traffic_threshold", DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD
            ),
            placement_obj=placement_obj,
        )


def as_spec(config: Union[ExperimentSpec, ExperimentConfig]) -> ExperimentSpec:
    """Normalize a spec-or-legacy-config argument to a typed spec."""
    if isinstance(config, ExperimentSpec):
        return config
    if isinstance(config, ExperimentConfig):
        return spec_from_config(config)
    raise TypeError(
        f"expected ExperimentSpec or ExperimentConfig, got {type(config).__name__}"
    )


# ---------------------------------------------------------------------- #
# Building blocks
# ---------------------------------------------------------------------- #
def resolve_placement(
    config: Union[ExperimentSpec, ExperimentConfig],
) -> ElevatorPlacement:
    """Resolve the placement object of a configuration."""
    if isinstance(config, ExperimentConfig) and config.placement_obj is not None:
        return config.placement_obj
    return as_spec(config).placement.resolve()


def build_traffic(
    config: Union[ExperimentSpec, ExperimentConfig], placement: ElevatorPlacement
) -> TrafficPattern:
    """Build the traffic pattern named by a configuration."""
    spec = as_spec(config)
    return spec.traffic.build(placement, seed=spec.sim.seed)


def adele_design_for(
    placement: ElevatorPlacement,
    traffic_label: str = "uniform",
    traffic_matrix=None,
    max_subset_size: Optional[int] = 4,
    amosa_config: Optional[AmosaConfig] = None,
    cache: Optional[DesignCache] = None,
    optimizer: str = "amosa",
    optimizer_options: Optional[Mapping[str, Any]] = None,
    selection: str = "knee",
    matrix_from_label: bool = False,
    weight_distance_by_traffic: bool = False,
    num_representatives: int = DEFAULT_NUM_REPRESENTATIVES,
    on_iteration: Optional[ProgressCallback] = None,
) -> AdEleDesign:
    """Run (or fetch from cache) AdEle's offline optimization for a placement.

    The paper runs the offline stage with uniform traffic ("the most
    pessimistic assumption"), so by default the uniform matrix is used
    regardless of the runtime traffic.

    Args:
        cache: Design cache to consult/populate; defaults to the process-wide
            cache (see :func:`get_design_cache`).
        optimizer: Registered optimizer name running the search.
        optimizer_options: Optimizer options; for ``amosa`` they override
            ``amosa_config`` (which defaults to the offline defaults).
        selection: Archive-selection strategy (``knee``/``latency``/
            ``energy``); applied after every cache fetch, so it never
            splits the cache.
        matrix_from_label: The supplied ``traffic_matrix`` was derived
            deterministically from ``traffic_label`` (seed 0), so the label
            alone identifies it -- the design stays disk-persistable.
            Without this flag an explicit matrix is keyed by content hash
            and kept memory-only.
        weight_distance_by_traffic: Weight the distance objective by the
            traffic matrix (enters the cache key only when enabled).
        num_representatives: How many spread (S0...) solutions to expose;
            like ``selection``, re-applied after every cache fetch.
        on_iteration: Optional optimizer progress callback.

    Raises:
        repro.registry.UnknownComponentError: Unknown optimizer name.
    """
    canonical = OPTIMIZER_REGISTRY.entry(optimizer).name
    amosa = amosa_config if amosa_config is not None else DEFAULT_OFFLINE_AMOSA
    if canonical == "amosa":
        options = {**asdict(amosa), **dict(optimizer_options or {})}
        options = canonical_optimizer_options(canonical, options)
    else:
        options = canonical_optimizer_options(canonical, optimizer_options or {})
    if cache is None:
        cache = _default_design_cache
    if traffic_matrix is not None and not matrix_from_label:
        # An explicit matrix must never alias the label-only entry (nor be
        # persisted as the canonical "uniform" design by disk caches): key
        # it by content.
        traffic_label = f"{traffic_label}#{_traffic_matrix_digest(traffic_matrix)}"
    key = DesignCache.make_key(
        placement,
        traffic_label,
        max_subset_size,
        optimizer=canonical,
        optimizer_options=options,
        weight_distance_by_traffic=weight_distance_by_traffic,
    )
    design = cache.get(key)
    if design is None:
        if traffic_matrix is None:
            traffic_matrix = UniformTraffic(placement.mesh).traffic_matrix()
        offline = OfflineConfig(
            amosa=amosa,
            max_subset_size=max_subset_size,
            weight_distance_by_traffic=weight_distance_by_traffic,
            num_representatives=num_representatives,
            optimizer=canonical,
            optimizer_options={} if canonical == "amosa" and optimizer_options is None
            else dict(optimizer_options or {}),
            selection=selection,
        )
        design = optimize_elevator_subsets(
            placement, traffic_matrix, offline, on_iteration=on_iteration
        )
        cache.put(key, design)
    else:
        # Cache entries are shared across selection strategies and
        # representative counts.  When this call's strategy picks a
        # different archive entry (or asks for a different number of
        # representatives), hand back a shallow copy carrying them instead
        # of mutating the shared cached design underneath earlier callers.
        chosen = select_by_strategy(selection, design.result.archive)
        representatives = design.representatives
        if num_representatives != len(representatives):
            # The stored count can legitimately undershoot the request when
            # the archive is small (spread_selection returns every entry);
            # only hand back a copy when the spread actually changes.
            recomputed = spread_selection(design.result.archive, num_representatives)
            if recomputed != representatives:
                representatives = recomputed
        if chosen is not design.selected or representatives is not design.representatives:
            design = dataclasses.replace(
                design, selected=chosen, representatives=representatives
            )
    return design


def design_key_for(
    spec: DesignSpec, placement: Optional[ElevatorPlacement] = None
) -> DesignKey:
    """The design-cache key of a :class:`~repro.spec.DesignSpec`.

    Raises:
        repro.registry.UnknownComponentError: Unknown optimizer name.
    """
    if placement is None:
        placement = spec.placement.resolve()
    canonical = OPTIMIZER_REGISTRY.entry(spec.optimizer).name
    return DesignCache.make_key(
        placement,
        _design_traffic_label(spec),
        spec.max_subset_size,
        optimizer=canonical,
        optimizer_options=canonical_optimizer_options(canonical, spec.options),
        weight_distance_by_traffic=spec.weight_distance_by_traffic,
    )


def _design_traffic_label(spec: DesignSpec) -> str:
    """Canonical (registry-spelled) traffic label of a design spec."""
    name = spec.traffic
    if name in PATTERN_REGISTRY:
        return PATTERN_REGISTRY.entry(name).name
    return name.lower()


def design_for_placement(
    placement: ElevatorPlacement,
    spec: DesignSpec,
    cache: Optional[DesignCache] = None,
    on_iteration: Optional[ProgressCallback] = None,
) -> AdEleDesign:
    """Run (or fetch) the offline stage a :class:`DesignSpec` describes,
    against an already resolved placement (the spec's own placement field
    is ignored -- the nested-in-experiment semantics)."""
    label = _design_traffic_label(spec)
    if label == "uniform":
        matrix = None
        matrix_from_label = False
    else:
        pattern = PATTERN_REGISTRY.create(label, placement.mesh, seed=0)
        matrix = pattern.traffic_matrix()
        matrix_from_label = True
    return adele_design_for(
        placement,
        traffic_label=label,
        traffic_matrix=matrix,
        max_subset_size=spec.max_subset_size,
        cache=cache,
        optimizer=spec.optimizer,
        optimizer_options=spec.options,
        selection=spec.selection,
        matrix_from_label=matrix_from_label,
        weight_distance_by_traffic=spec.weight_distance_by_traffic,
        num_representatives=spec.num_representatives,
        on_iteration=on_iteration,
    )


def design_for(
    spec: DesignSpec,
    cache: Optional[DesignCache] = None,
    on_iteration: Optional[ProgressCallback] = None,
) -> AdEleDesign:
    """Run (or fetch from cache) the offline stage a :class:`DesignSpec`
    fully describes -- the ``python -m repro optimize`` entry point.

    Raises:
        repro.registry.UnknownComponentError: Unknown optimizer, pattern or
            placement names (all ``ValueError`` with did-you-mean hints).
    """
    placement = spec.placement.resolve()
    return design_for_placement(
        placement, spec, cache=cache, on_iteration=on_iteration
    )


def get_design_cache() -> DesignCache:
    """The process-wide default design cache."""
    return _default_design_cache


def set_design_cache(cache: DesignCache) -> DesignCache:
    """Swap the process-wide default design cache; returns the old one."""
    global _default_design_cache
    previous = _default_design_cache
    _default_design_cache = cache
    return previous


def clear_design_cache() -> None:
    """Drop all designs from the default cache (used by tests)."""
    _default_design_cache.clear()


def build_policy(
    config: Union[ExperimentSpec, ExperimentConfig],
    placement: ElevatorPlacement,
    design_cache: Optional[DesignCache] = None,
) -> ElevatorSelectionPolicy:
    """Build the elevator-selection policy named by a configuration.

    AdEle variants run (or fetch from cache) the offline optimization
    first -- following the spec's nested :class:`~repro.spec.DesignSpec`
    when one is set (optimizer, options, assumed traffic and selection),
    the historical AMOSA defaults otherwise; every other registered policy
    is constructed directly with the spec's policy options as keyword
    arguments.
    """
    spec = as_spec(config)
    name = spec.policy.name.lower()
    if spec.policy.needs_design:
        if spec.design is not None:
            design = design_for_placement(
                placement, spec.design, cache=design_cache
            )
        else:
            design = adele_design_for(
                placement,
                max_subset_size=spec.policy.option(
                    "max_subset_size", DEFAULT_ADELE_MAX_SUBSET_SIZE
                ),
                cache=design_cache,
            )
        # Bind the policy to the *experiment's* placement object, not the
        # (possibly cache-shared) design's equal-but-distinct one, so
        # runtime fault state on the network's placement stays visible.
        if name == "adele":
            return design.to_policy(
                low_traffic_threshold=spec.policy.option(
                    "low_traffic_threshold", DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD
                ),
                seed=spec.sim.seed,
                placement=placement,
            )
        return design.to_round_robin_policy(seed=spec.sim.seed, placement=placement)
    return make_policy(name, placement, **spec.policy.options)


def build_network(
    config: Union[ExperimentSpec, ExperimentConfig],
    placement: Optional[ElevatorPlacement] = None,
    policy: Optional[ElevatorSelectionPolicy] = None,
    design_cache: Optional[DesignCache] = None,
    route_computation: Optional[RouteComputation] = None,
) -> Network:
    """Build the network for a configuration.

    ``route_computation`` lets warm workers and replica groups share one
    precomputed route-table object across networks of the same mesh (the
    tables are immutable and depend only on the mesh shape).
    """
    spec = as_spec(config)
    placement = placement if placement is not None else resolve_placement(config)
    if policy is None:
        policy = build_policy(spec, placement, design_cache=design_cache)
    return Network(
        placement,
        policy,
        num_vcs=2,
        buffer_depth=spec.sim.buffer_depth,
        route_computation=route_computation,
    )


def build_packet_source(
    config: Union[ExperimentSpec, ExperimentConfig], placement: ElevatorPlacement
) -> PacketSource:
    """Build the packet source for a configuration."""
    spec = as_spec(config)
    pattern = spec.traffic.build(placement, seed=spec.sim.seed)
    return BernoulliPacketSource(
        pattern,
        spec.traffic.injection_rate,
        min_packet_length=spec.traffic.min_packet_length,
        max_packet_length=spec.traffic.max_packet_length,
        seed=spec.sim.seed,
    )


#: Shared default for runs without an explicit energy model.  EnergyModel
#: is a stateless frozen-parameter dataclass, so one instance can serve
#: every run in the process -- the memoized warm-worker path must not
#: allocate per call.
_DEFAULT_ENERGY_MODEL = EnergyModel()


def run_experiment(
    config: Union[ExperimentSpec, ExperimentConfig],
    energy_model: Optional[EnergyModel] = None,
    network: Optional[Network] = None,
    probe=None,
) -> SimulationResult:
    """Run one configuration end to end and return its result.

    A prewarmed ``network`` (e.g. from the worker memo) is reused via
    :meth:`~repro.sim.network.Network.reset`; its placement is taken as-is
    instead of resolving the spec's placement again.

    ``probe`` is an optional :class:`~repro.obs.probes.ProbeSpec` -- a
    *run argument*, deliberately not a spec field: it threads to the
    kernel like ``bit_exact``, fills ``result.probe``, and never enters
    cache keys, derived seeds or summaries (see :mod:`repro.obs`).
    """
    spec = as_spec(config)
    placement = (
        network.placement if network is not None else resolve_placement(config)
    )
    if network is None:
        network = build_network(spec, placement=placement)
    else:
        network.reset()
    source = build_packet_source(spec, placement)
    simulator = Simulator(
        network,
        source,
        warmup_cycles=spec.sim.warmup_cycles,
        measurement_cycles=spec.sim.measurement_cycles,
        drain_cycles=spec.sim.drain_cycles,
        energy_model=(
            energy_model if energy_model is not None else _DEFAULT_ENERGY_MODEL
        ),
        backend=spec.sim.backend,
        scenario=spec.scenario,
        scenario_seed=spec.sim.seed,
        bit_exact=spec.sim.bit_exact,
        probe=probe,
    )
    return simulator.run()
