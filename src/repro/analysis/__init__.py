"""Experiment harness: building, running and comparing configurations.

This package is the glue used by the examples and the benchmark suite: it
turns a declarative experiment description (placement, policy, traffic,
injection rate) into a simulated :class:`~repro.sim.engine.SimulationResult`
and provides the derived analyses the paper reports -- latency-vs-injection
sweeps with saturation detection (Fig. 4), per-elevator load distributions
(Fig. 5), normalized energy (Fig. 6) and normalized latency/energy under
application traffic (Fig. 7).
"""

from repro.analysis.runner import (
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    as_spec,
    build_network,
    build_packet_source,
    build_policy,
    clear_design_cache,
    config_from_spec,
    design_for,
    design_for_placement,
    design_key_for,
    get_design_cache,
    run_experiment,
    set_design_cache,
    spec_from_config,
)
from repro.analysis.sweep import (
    LatencyCurve,
    latency_sweep,
    saturation_rate,
    zero_load_latency,
)
from repro.analysis.load import elevator_load_distribution
from repro.analysis.comparison import (
    normalize_to_baseline,
    policy_comparison_from_outcomes,
    policy_comparison_from_summaries,
    policy_comparison_table,
    relative_improvement,
)

__all__ = [
    "DesignCache",
    "ExperimentConfig",
    "as_spec",
    "spec_from_config",
    "config_from_spec",
    "get_design_cache",
    "set_design_cache",
    "build_network",
    "build_policy",
    "build_packet_source",
    "run_experiment",
    "adele_design_for",
    "design_for",
    "design_for_placement",
    "design_key_for",
    "clear_design_cache",
    "LatencyCurve",
    "latency_sweep",
    "saturation_rate",
    "zero_load_latency",
    "elevator_load_distribution",
    "normalize_to_baseline",
    "relative_improvement",
    "policy_comparison_table",
    "policy_comparison_from_summaries",
    "policy_comparison_from_outcomes",
]
