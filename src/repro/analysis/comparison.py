"""Normalization and comparison helpers (Figs. 6-7, headline numbers).

The paper reports most results normalized to the Elevator-First baseline
(latency and energy in Figs. 6 and 7) and summarizes AdEle's benefit as an
average relative improvement; these helpers implement those computations so
benches and examples print the same kind of rows the paper tabulates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.sim.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec -> runner)
    from repro.exec.batch import ExperimentOutcome


def normalize_to_baseline(
    values: Mapping[str, float], baseline_key: str
) -> Dict[str, float]:
    """Normalize a metric per policy to a baseline policy's value.

    Args:
        values: ``{policy: metric}``.
        baseline_key: The policy used as the denominator.

    Raises:
        KeyError: If the baseline policy is missing.
        ValueError: If the baseline value is zero.
    """
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("baseline value is zero; cannot normalize")
    return {key: value / baseline for key, value in values.items()}


def relative_improvement(baseline: float, improved: float) -> float:
    """Fractional improvement of ``improved`` over ``baseline``.

    Positive when ``improved`` is smaller (latency/energy are minimized);
    e.g. a drop from 100 to 89.1 cycles is a 0.109 (10.9 %) improvement.
    """
    if baseline == 0:
        raise ValueError("baseline value is zero; improvement undefined")
    return (baseline - improved) / baseline


def average_improvement(
    baselines: Sequence[float], improved: Sequence[float]
) -> float:
    """Mean relative improvement across paired measurements."""
    if len(baselines) != len(improved):
        raise ValueError("sequences must have the same length")
    if not baselines:
        raise ValueError("no measurements supplied")
    improvements = [
        relative_improvement(base, new) for base, new in zip(baselines, improved)
    ]
    return sum(improvements) / len(improvements)


def policy_comparison_table(
    results: Mapping[str, SimulationResult],
    baseline: str = "elevator_first",
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Tabulate absolute and normalized metrics per policy.

    Args:
        results: ``{policy: SimulationResult}``.
        baseline: Policy used for normalization.
        metrics: Metric names drawn from the result summary (defaults to
            average latency and energy per flit when available).

    Returns:
        ``{policy: {metric: value, metric + "_norm": normalized value}}``.
    """
    summaries = {policy: result.summary() for policy, result in results.items()}
    return policy_comparison_from_summaries(summaries, baseline=baseline, metrics=metrics)


def policy_comparison_from_summaries(
    summaries: Mapping[str, Mapping[str, float]],
    baseline: str = "elevator_first",
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Like :func:`policy_comparison_table`, from plain summary rows.

    Summary rows are what the parallel experiment engine
    (:mod:`repro.exec`) returns and caches, so comparisons can be computed
    without reconstructing :class:`~repro.sim.engine.SimulationResult`
    objects -- including from rows loaded off a warm disk cache.
    """
    if metrics is None:
        metrics = ["average_latency", "energy_per_flit"]
    table: Dict[str, Dict[str, float]] = {}
    for metric in metrics:
        available = {
            policy: summary[metric]
            for policy, summary in summaries.items()
            if metric in summary and summary[metric] not in (None, float("inf"))
        }
        normalized: Dict[str, float] = {}
        if baseline in available and available[baseline] != 0:
            normalized = normalize_to_baseline(available, baseline)
        for policy in summaries:
            row = table.setdefault(policy, {})
            if policy in available:
                row[metric] = available[policy]
            if policy in normalized:
                row[metric + "_norm"] = normalized[policy]
    return table


def policy_comparison_from_outcomes(
    outcomes: Sequence["ExperimentOutcome"],
    baseline: str = "elevator_first",
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Like :func:`policy_comparison_table`, straight from batch outcomes.

    Each outcome's policy name (one outcome per policy) keys its summary
    row; this is the one-call path from
    :class:`~repro.exec.batch.ExperimentBatch` results to a comparison
    table, used by the CLI and the :mod:`repro.api` facade.
    """
    # Imported lazily: repro.exec.batch imports the runner module, so a
    # module-level import here would be circular via repro.analysis.
    from repro.exec.batch import summaries_by_policy

    return policy_comparison_from_summaries(
        summaries_by_policy(outcomes), baseline=baseline, metrics=metrics
    )


def format_table(
    table: Mapping[str, Mapping[str, float]], precision: int = 3
) -> str:
    """Render a comparison table as aligned plain text (for bench output)."""
    policies = list(table.keys())
    metrics: List[str] = []
    for row in table.values():
        for metric in row:
            if metric not in metrics:
                metrics.append(metric)
    header = ["policy"] + metrics
    rows = [header]
    for policy in policies:
        row = [policy]
        for metric in metrics:
            value = table[policy].get(metric)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    return "\n".join(lines)
