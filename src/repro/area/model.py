"""Analytic router area model.

The paper synthesizes the Elevator-First, CDA and AdEle routers with Cadence
Genus in a 45 nm library (Table III) and reports:

* baseline (Elevator-First) router area 35550 um^2, single-cycle;
* CDA: +14.4 % area (global traffic table + path evaluation), +1 cycle;
* AdEle: +3.1 % area (per-elevator cost registers, skip logic), same cycles.

Synthesis tools are not available offline, so this module reproduces the
comparison with a component-level analytic model: the baseline router area
is decomposed into buffers, crossbar, allocators and routing logic using
standard per-bit/per-port area coefficients, and each policy adds the area
of exactly the extra state and logic it requires.  The absolute baseline is
calibrated to the paper's 35550 um^2; the *overheads* follow from the
component inventory, which is the comparison Table III makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class RouterAreaBreakdown:
    """Component areas of one router in um^2."""

    buffers: float
    crossbar: float
    allocators: float
    routing_logic: float
    policy_logic: float = 0.0

    @property
    def total(self) -> float:
        """Total router area in um^2."""
        return (
            self.buffers
            + self.crossbar
            + self.allocators
            + self.routing_logic
            + self.policy_logic
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dictionary."""
        return {
            "buffers": self.buffers,
            "crossbar": self.crossbar,
            "allocators": self.allocators,
            "routing_logic": self.routing_logic,
            "policy_logic": self.policy_logic,
            "total": self.total,
        }


@dataclass(frozen=True)
class AreaReport:
    """One row of the Table III comparison.

    Attributes:
        policy: Policy name (``ElevFirst``, ``CDA``, ``AdEle``).
        cycles: Router pipeline cycles needed by the policy's selection
            logic (CDA needs an extra table-update cycle).
        area_um2: Total router area in um^2.
        overhead: Fractional area overhead versus the baseline router.
        breakdown: Component-level areas.
    """

    policy: str
    cycles: int
    area_um2: float
    overhead: float
    breakdown: RouterAreaBreakdown


@dataclass
class AreaModel:
    """Component-level area model of the three routers.

    Attributes:
        num_ports: Router ports (7 for a 3D mesh router with local port).
        num_vcs: Virtual channels per port.
        buffer_depth: Flits per input buffer.
        flit_width_bits: Flit width in bits.
        num_elevators: Elevators visible to the router (sizes CDA's global
            table and AdEle's cost-register file).
        subset_size: AdEle elevator-subset size per router.
        num_routers_per_layer: Routers per layer (sizes CDA's global table).
        bit_area_sram_um2: Area of one buffer bit (SRAM-like cell).
        bit_area_register_um2: Area of one register bit (flip-flop).
        crossbar_coefficient_um2: Area coefficient of the crossbar per
            (ports^2 * flit width) bit.
        allocator_area_per_port_um2: Allocation logic area per port.
        routing_logic_area_um2: Base routing-computation logic area.
        calibration_target_um2: Baseline router area the model is calibrated
            to (the paper's 35550 um^2); the component areas are scaled by a
            single factor so the baseline matches exactly.
    """

    num_ports: int = 7
    num_vcs: int = 2
    buffer_depth: int = 4
    flit_width_bits: int = 64
    num_elevators: int = 8
    subset_size: int = 3
    num_routers_per_layer: int = 16
    bit_area_sram_um2: float = 0.85
    bit_area_register_um2: float = 1.9
    crossbar_coefficient_um2: float = 0.30
    allocator_area_per_port_um2: float = 220.0
    routing_logic_area_um2: float = 900.0
    calibration_target_um2: float = 35550.0
    _scale: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        if min(
            self.num_ports,
            self.num_vcs,
            self.buffer_depth,
            self.flit_width_bits,
            self.num_elevators,
            self.subset_size,
            self.num_routers_per_layer,
        ) < 1:
            raise ValueError("all structural parameters must be >= 1")
        raw_total = self._baseline_breakdown(scale=1.0).total
        self._scale = self.calibration_target_um2 / raw_total

    # ------------------------------------------------------------------ #
    # Component areas
    # ------------------------------------------------------------------ #
    def _buffer_area(self, scale: float) -> float:
        bits = (
            self.num_ports * self.num_vcs * self.buffer_depth * self.flit_width_bits
        )
        return bits * self.bit_area_sram_um2 * scale

    def _crossbar_area(self, scale: float) -> float:
        return (
            self.num_ports
            * self.num_ports
            * self.flit_width_bits
            * self.crossbar_coefficient_um2
            * scale
        )

    def _allocator_area(self, scale: float) -> float:
        return self.num_ports * self.num_vcs * self.allocator_area_per_port_um2 * scale

    def _routing_area(self, scale: float) -> float:
        return self.routing_logic_area_um2 * scale

    def _baseline_breakdown(self, scale: float) -> RouterAreaBreakdown:
        return RouterAreaBreakdown(
            buffers=self._buffer_area(scale),
            crossbar=self._crossbar_area(scale),
            allocators=self._allocator_area(scale),
            routing_logic=self._routing_area(scale),
            policy_logic=0.0,
        )

    # ------------------------------------------------------------------ #
    # Policy-specific extra logic
    # ------------------------------------------------------------------ #
    def _adele_policy_area(self, scale: float) -> float:
        """AdEle extras: cost registers, RR pointer, skip comparator.

        Per elevator in the router's subset: one 16-bit fixed-point EWMA cost
        register plus an 8-bit skip-probability register; plus a small
        comparator/adder datapath (modelled as register-equivalent bits) and
        the subset ROM.
        """
        cost_bits = self.subset_size * (16 + 8)
        pointer_bits = 4
        datapath_bits = 64
        subset_rom_bits = self.subset_size * 8
        bits = cost_bits + pointer_bits + datapath_bits + subset_rom_bits
        return bits * self.bit_area_register_um2 * scale

    def _cda_policy_area(self, scale: float) -> float:
        """CDA extras: global occupancy table plus path-cost evaluation.

        One occupancy entry (8 bits) per router of the local layer, plus a
        per-elevator path-cost accumulator (16 bits) and an adder/compare
        tree (register-equivalent bits proportional to the table width).
        """
        table_bits = self.num_routers_per_layer * 8
        accumulator_bits = self.num_elevators * 16
        datapath_bits = self.num_routers_per_layer * 10
        bits = table_bits + accumulator_bits + datapath_bits
        return bits * self.bit_area_register_um2 * scale

    # ------------------------------------------------------------------ #
    # Reports
    # ------------------------------------------------------------------ #
    def baseline_report(self) -> AreaReport:
        """Table III row for the Elevator-First baseline router."""
        breakdown = self._baseline_breakdown(self._scale)
        return AreaReport(
            policy="ElevFirst",
            cycles=1,
            area_um2=breakdown.total,
            overhead=0.0,
            breakdown=breakdown,
        )

    def adele_report(self) -> AreaReport:
        """Table III row for the AdEle router."""
        base = self._baseline_breakdown(self._scale)
        breakdown = RouterAreaBreakdown(
            buffers=base.buffers,
            crossbar=base.crossbar,
            allocators=base.allocators,
            routing_logic=base.routing_logic,
            policy_logic=self._adele_policy_area(self._scale),
        )
        baseline_total = base.total
        return AreaReport(
            policy="AdEle",
            cycles=1,
            area_um2=breakdown.total,
            overhead=(breakdown.total - baseline_total) / baseline_total,
            breakdown=breakdown,
        )

    def cda_report(self) -> AreaReport:
        """Table III row for the CDA router (global sharing not included)."""
        base = self._baseline_breakdown(self._scale)
        breakdown = RouterAreaBreakdown(
            buffers=base.buffers,
            crossbar=base.crossbar,
            allocators=base.allocators,
            routing_logic=base.routing_logic,
            policy_logic=self._cda_policy_area(self._scale),
        )
        baseline_total = base.total
        return AreaReport(
            policy="CDA",
            cycles=2,
            area_um2=breakdown.total,
            overhead=(breakdown.total - baseline_total) / baseline_total,
            breakdown=breakdown,
        )

    def table(self) -> Dict[str, AreaReport]:
        """All three Table III rows keyed by policy name."""
        return {
            "ElevFirst": self.baseline_report(),
            "CDA": self.cda_report(),
            "AdEle": self.adele_report(),
        }
