"""Analytic router area model (Table III substitution)."""

from repro.area.model import AreaModel, AreaReport, RouterAreaBreakdown

__all__ = ["AreaModel", "AreaReport", "RouterAreaBreakdown"]
