"""First-class observability for the experiment engine (stdlib only).

Three pillars, one hard invariant:

* **Tracing** (:mod:`repro.obs.tracing`) -- a :class:`Tracer` of nestable
  ``span(name, **attrs)`` context managers over the hot boundaries
  (network/route setup, kernel execution, cache get/put, chunk flush,
  queue claim/complete, HTTP requests), recorded to an in-memory ring or
  an append-only JSONL event log, exportable as Chrome trace-event JSON
  (``repro trace export`` -> perfetto) and summarized by
  ``repro trace report``.
* **Metrics** (:mod:`repro.obs.metrics`) -- a typed
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms whose merges are associative and order-independent, rendered
  in Prometheus text exposition format (``GET /metrics`` on
  ``repro serve``, ``repro stats`` in the CLI).
* **Kernel probes** (:mod:`repro.obs.probes`) -- an opt-in
  :class:`ProbeSpec` (sample interval + channel selection, passed as a
  *run argument*, never a spec field) sampling per-cycle congestion
  gauges from every backend family into a bounded :class:`ProbeSeries`.

The invariant: **observability never perturbs results**.  Nothing in this
package enters :class:`~repro.spec.ExperimentSpec` canonical
serialization, ``config_key``, ``derive_seed`` or any cached summary row;
every instrumented code path is bit-identical to an uninstrumented run
(pinned by ``tests/test_obs_neutrality.py``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
)
from repro.obs.probes import (
    PROBE_CHANNELS,
    ProbeSeries,
    ProbeSpec,
)
from repro.obs.tracing import (
    JsonlRecorder,
    RingRecorder,
    SpanRecord,
    Tracer,
    chrome_trace_document,
    current_tracer,
    install_tracer,
    load_span_records,
    span,
    trace_report,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "PROBE_CHANNELS",
    "ProbeSeries",
    "ProbeSpec",
    "JsonlRecorder",
    "RingRecorder",
    "SpanRecord",
    "Tracer",
    "chrome_trace_document",
    "current_tracer",
    "install_tracer",
    "load_span_records",
    "span",
    "trace_report",
    "uninstall_tracer",
]
