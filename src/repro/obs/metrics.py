"""A typed metrics registry with deterministic, order-independent merges.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` -- monotonically increasing total.
* :class:`Gauge` -- a point-in-time level (``set``), *or* an additive
  level (``inc``/``dec``) -- merges **add**, which keeps folding registries
  from shards/workers associative and order-independent (a "current queue
  depth across the fleet" is the sum of per-member depths).
* :class:`Histogram` -- fixed, immutable bucket boundaries chosen at
  construction, so merging two histograms is element-wise addition of
  bucket counts.  No dynamic rebucketing, ever: that is what makes merges
  a pure function of the multiset of observations
  (``tests/test_obs_metrics.py`` pins associativity + order-independence
  the same way ``test_stats_merge_property.py`` pins the stats fold).

Instruments support Prometheus-style labels: ``registry.counter(name,
labels={"state": "done"})`` returns the series for that exact label set.
:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format (``# HELP``/``# TYPE``, ``_bucket{le=...}`` with cumulative
counts, ``_sum``/``_count``); :meth:`MetricsRegistry.to_dict` emits a
JSON-friendly snapshot for ``--json`` documents and ``repro stats``.

Nothing here touches spec serialization or cache keys -- see the
never-perturbs invariant in :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

Number = Union[int, float]

#: Prometheus-ish latency boundaries (seconds): sub-ms to 10s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_set(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


class Counter:
    """Monotonic total; ``inc`` only, merge adds."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A level: ``set`` for point-in-time, ``inc``/``dec`` for additive use."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self.value -= amount

    def merge(self, other: "Gauge") -> None:
        # Addition (not last-write-wins) keeps registry folds associative
        # and order-independent; a fleet-level gauge is the member sum.
        with self._lock:
            self.value += other.value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Fixed-boundary histogram; merges are element-wise bucket addition."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        with self._lock:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
            self.sum += other.sum
            self.count += other.count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": {
                _format_value(bound): count
                for bound, count in zip(self.bounds, self.counts)
            },
            "overflow": self.counts[-1],
            "sum": self.sum,
            "count": self.count,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All instruments of one process (or one merged fleet view).

    Series are keyed ``(name, sorted-label-items)``; the first caller of a
    name fixes its kind (and, for histograms, its bucket bounds) -- a
    later request with a conflicting kind raises rather than silently
    splitting the namespace.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelSet], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument accessors ------------------------------------------- #
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        return self._get(name, _label_set(labels), "counter", help, Counter)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get(name, _label_set(labels), "gauge", help, Gauge)

    def histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(
            name, _label_set(labels), "histogram", help,
            lambda: Histogram(buckets),
        )

    def _get(self, name, labels, kind, help, factory) -> Any:
        with self._lock:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
            elif known != kind:
                raise ValueError(
                    f"metric {name!r} is a {known}, requested as {kind}"
                )
            if help and not self._help.get(name):
                self._help[name] = help
            key = (name, labels)
            instrument = self._series.get(key)
            if instrument is None:
                instrument = factory()
                self._series[key] = instrument
            return instrument

    # -- folding --------------------------------------------------------- #
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (associative, order-free)."""
        with other._lock:
            items = list(other._series.items())
            kinds = dict(other._kinds)
            helps = dict(other._help)
        for name, kind in kinds.items():
            known = self._kinds.setdefault(name, kind)
            if known != kind:
                raise ValueError(
                    f"metric {name!r} is a {known} here, a {kind} there"
                )
        for name, text in helps.items():
            self._help.setdefault(name, text)
        for (name, labels), instrument in items:
            if isinstance(instrument, Counter):
                self.counter(name, dict(labels)).merge(instrument)
            elif isinstance(instrument, Gauge):
                self.gauge(name, dict(labels)).merge(instrument)
            else:
                mine = self.histogram(
                    name, dict(labels), buckets=instrument.bounds
                )
                mine.merge(instrument)

    # -- rendering ------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: ``{name: {kind, help, series: [...]}}``."""
        with self._lock:
            items = sorted(self._series.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        document: Dict[str, Any] = {}
        for (name, labels), instrument in items:
            entry = document.setdefault(name, {
                "kind": kinds[name],
                "help": helps.get(name, ""),
                "series": [],
            })
            entry["series"].append({
                "labels": dict(labels),
                "value": instrument.snapshot(),
            })
        return document

    def render_prometheus(self) -> str:
        """The text exposition format, deterministically ordered."""
        with self._lock:
            items = sorted(self._series.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        lines: List[str] = []
        seen_header = set()
        for (name, labels), instrument in items:
            if name not in seen_header:
                seen_header.add(name)
                help_text = helps.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kinds[name]}")
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, ('le', _format_value(bound)))}"
                        f" {cumulative}"
                    )
                cumulative += instrument.counts[-1]
                lines.append(
                    f"{name}_bucket{_render_labels(labels, ('le', '+Inf'))}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {instrument.count}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)}"
                    f" {_format_value(instrument.snapshot())}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
