"""Opt-in per-cycle kernel probes (congestion gauges over time).

A :class:`ProbeSpec` asks the simulation kernel to sample a selection of
congestion channels every ``interval`` cycles into a bounded
:class:`ProbeSeries`:

====================== ==================================================
Channel                Meaning at the sampled cycle
====================== ==================================================
``active_routers``     routers currently holding at least one flit
``in_flight_flits``    flits resident in any router buffer
``injection_backlog``  packets queued at network interfaces, not injected
``layer_occupancy``    per-layer list of buffered flits (TSV pressure)
====================== ==================================================

Every backend family fills the same channels -- the reference kernel by
scanning the :class:`~repro.sim.network.Network`, the active-set kernel
from its own incremental counters, and the flat-array kernel with O(1)
numpy reductions per sampled cycle (one series *per replica* under the
batched backend).

A probe is a **run argument**, never a spec field: it is threaded through
``Simulator(probe=...)`` / ``run_experiment(probe=...)`` exactly like
``bit_exact`` threads to the backend, and it never enters canonical
serialization, ``config_key``, ``derive_seed`` or a cached summary row.
Kernels only *read* state when sampling, so a probed run is bit-identical
to an unprobed one (pinned by ``tests/test_obs_neutrality.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "PROBE_CHANNELS",
    "ProbeSpec",
    "ProbeSeries",
    "network_reading",
    "series_document",
]

#: Every channel a kernel can fill, in canonical order.
PROBE_CHANNELS: Tuple[str, ...] = (
    "active_routers",
    "in_flight_flits",
    "injection_backlog",
    "layer_occupancy",
)


@dataclass(frozen=True)
class ProbeSpec:
    """What to sample and how often; bounded so long runs stay bounded."""

    interval: int = 100
    channels: Tuple[str, ...] = PROBE_CHANNELS
    max_samples: int = 4096

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("probe interval must be >= 1 cycle")
        if self.max_samples < 1:
            raise ValueError("probe max_samples must be >= 1")
        channels = tuple(self.channels)
        unknown = [c for c in channels if c not in PROBE_CHANNELS]
        if unknown:
            raise ValueError(
                f"unknown probe channel(s) {unknown}; "
                f"known: {list(PROBE_CHANNELS)}"
            )
        if not channels:
            raise ValueError("probe needs at least one channel")
        object.__setattr__(self, "channels", channels)

    def should_sample(self, cycle: int) -> bool:
        return cycle % self.interval == 0

    def series(self) -> "ProbeSeries":
        return ProbeSeries(spec=self)

    @classmethod
    def parse_channels(cls, text: str) -> Tuple[str, ...]:
        """``"active_routers,layer_occupancy"`` -> validated tuple."""
        names = tuple(part.strip() for part in text.split(",") if part.strip())
        cls(channels=names)  # validates
        return names


@dataclass
class ProbeSeries:
    """One run's sampled time-series (one instance per replica)."""

    spec: ProbeSpec
    cycles: List[int] = field(default_factory=list)
    values: Dict[str, List[Any]] = field(default_factory=dict)
    dropped: int = 0

    def __post_init__(self) -> None:
        for channel in self.spec.channels:
            self.values.setdefault(channel, [])

    @property
    def full(self) -> bool:
        return len(self.cycles) >= self.spec.max_samples

    def append(self, cycle: int, reading: Dict[str, Any]) -> None:
        """Record one sample; silently counts (never grows) past the bound."""
        if self.full:
            self.dropped += 1
            return
        self.cycles.append(cycle)
        for channel in self.spec.channels:
            self.values[channel].append(reading[channel])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.spec.interval,
            "channels": list(self.spec.channels),
            "cycles": list(self.cycles),
            "values": {c: list(v) for c, v in self.values.items()},
            "samples": len(self.cycles),
            "dropped": self.dropped,
        }

    def rows(self) -> List[Dict[str, Any]]:
        """One dict per sample -- the ``repro probe`` JSONL row shape."""
        out: List[Dict[str, Any]] = []
        for index, cycle in enumerate(self.cycles):
            row: Dict[str, Any] = {"cycle": cycle}
            for channel in self.spec.channels:
                row[channel] = self.values[channel][index]
            out.append(row)
        return out


def series_document(series: Sequence[ProbeSeries]) -> Dict[str, Any]:
    """The ``--json`` probe block: one entry per replica series."""
    return {
        "series": [s.to_dict() for s in series],
    }


def network_reading(network: Any) -> Dict[str, Any]:
    """Sample every channel from a :class:`~repro.sim.network.Network`.

    One pass over the over-approximating active-router set (read-only: no
    pruning, no state change), used by the ``reference`` kernel; the
    active-set and flat-array kernels sample their own counters instead.
    """
    mesh = network.mesh
    nodes_per_layer = mesh.nodes_per_layer
    per_layer = [0] * mesh.num_layers
    active = 0
    occupancy_of = network.buffer_occupancy
    for node in list(network.active_routers()):
        occupancy = occupancy_of(node)
        if occupancy > 0:
            active += 1
            per_layer[node // nodes_per_layer] += occupancy
    return {
        "active_routers": active,
        "in_flight_flits": sum(per_layer),
        "injection_backlog": network.pending_injections(),
        "layer_occupancy": per_layer,
    }
