"""Tracing spans over the engine's hot boundaries (stdlib only).

A :class:`Tracer` hands out nestable ``span(name, **attrs)`` context
managers.  Each completed span becomes one :class:`SpanRecord` pushed to a
recorder -- either a bounded in-memory :class:`RingRecorder` or an
append-only :class:`JsonlRecorder` event log (one JSON object per line,
replayable, ``repro trace export`` turns it into a Chrome trace-event
document perfetto can open).

Instrumented modules never hold a tracer themselves: they call the
module-level :func:`span` helper, which is a no-op returning a shared null
context while no tracer is installed (one global read -- the
uninstrumented fast path costs a dict-free attribute check).  The tracer
is process-local by design: spans record wall-clock boundaries, never
anything fed back into a simulation, so instrumentation cannot perturb
results (see :mod:`repro.obs`).
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SpanRecord",
    "RingRecorder",
    "JsonlRecorder",
    "Tracer",
    "span",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "chrome_trace_document",
    "load_span_records",
    "trace_report",
]


@dataclass
class SpanRecord:
    """One completed span: a named, timed interval with attributes."""

    name: str
    ts_us: int  # start, microseconds on the perf_counter timeline
    dur_us: int
    pid: int
    tid: int
    depth: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "name": self.name,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
        }
        if self.args:
            document["args"] = self.args
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(document["name"]),
            ts_us=int(document["ts_us"]),
            dur_us=int(document["dur_us"]),
            pid=int(document.get("pid", 0)),
            tid=int(document.get("tid", 0)),
            depth=int(document.get("depth", 0)),
            args=dict(document.get("args") or {}),
        )


class RingRecorder:
    """Keep the most recent ``capacity`` spans in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def close(self) -> None:  # pragma: no cover - symmetry with Jsonl
        pass


class JsonlRecorder:
    """Append spans to a JSONL event log, one JSON object per line.

    The file is append-only and line-buffered through a lock, so several
    threads (the service daemon's request handlers, workers) interleave
    whole lines, never partial ones.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def record(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def spans(self) -> List[SpanRecord]:
        with self._lock:
            self._handle.flush()
        return load_span_records(self.path)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class _Span:
    """Context manager measuring one interval; re-entrant never, nested yes."""

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._exit()
        if exc_type is not None:
            self.args = dict(self.args, error=exc_type.__name__)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                ts_us=(self._start_ns - self._tracer._epoch_ns) // 1000,
                dur_us=max(0, (end_ns - self._start_ns) // 1000),
                pid=self._tracer._pid,
                tid=threading.get_ident() & 0x7FFFFFFF,
                depth=self._depth,
                args=self.args,
            )
        )


class Tracer:
    """Hands out nestable spans and pushes completed ones to a recorder."""

    def __init__(self, recorder: Optional[Any] = None) -> None:
        self.recorder = recorder if recorder is not None else RingRecorder()
        self._epoch_ns = time.perf_counter_ns()
        self._pid = os.getpid()
        self._depths = threading.local()

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def spans(self) -> List[SpanRecord]:
        return self.recorder.spans()

    def close(self) -> None:
        self.recorder.close()

    # -- internal -------------------------------------------------------- #
    def _enter(self) -> int:
        depth = getattr(self._depths, "value", 0)
        self._depths.value = depth + 1
        return depth

    def _exit(self) -> None:
        self._depths.value = max(0, getattr(self._depths, "value", 1) - 1)

    def _record(self, record: SpanRecord) -> None:
        self.recorder.record(record)


# ---------------------------------------------------------------------- #
# The process-wide tracer the instrumented modules talk to.
# ---------------------------------------------------------------------- #
_TRACER: Optional[Tracer] = None


@contextlib.contextmanager
def _null_span():
    yield None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide tracer; returns it for chaining."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> None:
    """Remove the process-wide tracer (spans become no-ops again)."""
    global _TRACER
    _TRACER = None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, **attrs: Any):
    """A span on the installed tracer, or a shared no-op context manager.

    This is the only call instrumented modules make -- they never need to
    know whether tracing is on.
    """
    tracer = _TRACER
    if tracer is None:
        return _null_span()
    return tracer.span(name, **attrs)


# ---------------------------------------------------------------------- #
# Export + reporting
# ---------------------------------------------------------------------- #
def load_span_records(path: str) -> List[SpanRecord]:
    """Read a JSONL span log back into records (malformed lines rejected)."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SpanRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{number}: not a span record: {error}"
                ) from error
    return records


def chrome_trace_document(
    records: Iterable[SpanRecord],
) -> Dict[str, Any]:
    """Chrome trace-event JSON (the ``traceEvents`` form perfetto opens).

    Every span becomes a complete event (``"ph": "X"``) -- perfetto nests
    them by pid/tid/timestamp containment, which matches how the spans
    were produced.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        event: Dict[str, Any] = {
            "name": record.name,
            "ph": "X",
            "ts": record.ts_us,
            "dur": record.dur_us,
            "pid": record.pid,
            "tid": record.tid,
        }
        if record.args:
            event["args"] = record.args
        events.append(event)
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _percentile_us(sorted_values: List[int], pct: float) -> int:
    """Nearest-rank percentile (matches the stats module's convention)."""
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def trace_report(records: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """Per-span-name summary rows: count, total, p50, p95 (microseconds).

    Rows are sorted by total time descending, then by name for ties, so
    the hottest boundary is on top.
    """
    by_name: Dict[str, List[int]] = {}
    for record in records:
        by_name.setdefault(record.name, []).append(record.dur_us)
    rows: List[Dict[str, Any]] = []
    for name, durations in by_name.items():
        durations.sort()
        rows.append({
            "name": name,
            "count": len(durations),
            "total_us": sum(durations),
            "p50_us": _percentile_us(durations, 50),
            "p95_us": _percentile_us(durations, 95),
            "max_us": durations[-1],
        })
    rows.sort(key=lambda row: (-row["total_us"], row["name"]))
    return rows
