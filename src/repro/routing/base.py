"""Routing primitives shared by all elevator-selection policies.

Two concerns are separated, mirroring the paper's architecture:

* *Route computation* (:func:`compute_output_port`,
  :class:`RouteComputation`): the deadlock-free Elevator-First path
  discipline -- XY routing within a layer, travel to the packet's assigned
  elevator column, vertical traversal, then XY to the destination.  This is
  identical for every policy (Table I: "Routing and VC selection:
  Elevator-First ... used to avoid deadlock").
* *Elevator selection* (:class:`ElevatorSelectionPolicy`): which elevator a
  source router assigns to an inter-layer packet.  This is the knob the
  paper studies; Elevator-First, CDA and AdEle provide different
  implementations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.registry import Registry
from repro.sim.flit import Packet
from repro.sim.router import Port
from repro.topology.elevators import Elevator, ElevatorPlacement
from repro.topology.mesh3d import Mesh3D

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

#: Registry of elevator-selection policies.  Entries are classes (or
#: factories) called as ``factory(placement, **options)``.  Register your
#: own with :func:`register_policy` and it becomes usable by name in
#: :class:`~repro.spec.PolicySpec`, batches, benches and the CLI.
POLICY_REGISTRY: Registry = Registry("policy")

#: Decorator registering an elevator-selection policy class by name::
#:
#:     @register_policy("my_policy", description="...")
#:     class MyPolicy(ElevatorSelectionPolicy): ...
register_policy = POLICY_REGISTRY.register

#: Virtual network for packets that ascend (destination layer above source).
ASCEND_VN = 0
#: Virtual network for packets that descend (destination layer below source).
DESCEND_VN = 1


def virtual_network_for(mesh: Mesh3D, source: int, destination: int) -> int:
    """Virtual network assignment of the Elevator-First discipline.

    Packets whose destination layer is above the source travel on the ascend
    network, packets going down on the descend network, and intra-layer
    packets (which never take a vertical link) default to the ascend network.
    """
    src_z = mesh.coordinate(source).z
    dst_z = mesh.coordinate(destination).z
    if dst_z < src_z:
        return DESCEND_VN
    return ASCEND_VN


def compute_output_port(
    mesh: Mesh3D,
    current: int,
    destination: int,
    elevator_column: Optional[Tuple[int, int]],
) -> Port:
    """Next output port under Elevator-First routing.

    Args:
        mesh: The mesh geometry.
        current: Node id of the router currently holding the flit.
        destination: Final destination node id.
        elevator_column: ``(x, y)`` column of the packet's assigned elevator;
            ``None`` for intra-layer packets.

    Returns:
        The output :class:`~repro.sim.router.Port`:  LOCAL when the packet
        has arrived, UP/DOWN on the elevator column when a layer change is
        still needed, and an XY direction otherwise.
    """
    cur = mesh.coordinate(current)
    dst = mesh.coordinate(destination)

    if cur.z != dst.z:
        if elevator_column is None:
            raise ValueError(
                "inter-layer packet without an assigned elevator at node "
                f"{current} (destination {destination})"
            )
        ex, ey = elevator_column
        if (cur.x, cur.y) == (ex, ey):
            return Port.UP if dst.z > cur.z else Port.DOWN
        return _xy_port(cur.x, cur.y, ex, ey)

    if (cur.x, cur.y) == (dst.x, dst.y):
        return Port.LOCAL
    return _xy_port(cur.x, cur.y, dst.x, dst.y)


def _xy_port(cur_x: int, cur_y: int, target_x: int, target_y: int) -> Port:
    """Dimension-order (X then Y) routing within a layer."""
    if cur_x < target_x:
        return Port.EAST
    if cur_x > target_x:
        return Port.WEST
    if cur_y < target_y:
        return Port.NORTH
    return Port.SOUTH


def path_nodes(
    mesh: Mesh3D,
    source: int,
    destination: int,
    elevator_column: Optional[Tuple[int, int]],
) -> list:
    """The full node sequence a packet visits under Elevator-First routing.

    Useful for analysis (e.g. CDA's path-occupancy cost) and tests: the path
    starts at ``source``, ends at ``destination``, and respects the XY /
    elevator / XY structure.
    """
    nodes = [source]
    current = source
    guard = mesh.num_nodes * 4
    while current != destination:
        port = compute_output_port(mesh, current, destination, elevator_column)
        if port == Port.LOCAL:
            break
        coord = mesh.coordinate(current)
        if port == Port.EAST:
            nxt = mesh.node_id_xyz(coord.x + 1, coord.y, coord.z)
        elif port == Port.WEST:
            nxt = mesh.node_id_xyz(coord.x - 1, coord.y, coord.z)
        elif port == Port.NORTH:
            nxt = mesh.node_id_xyz(coord.x, coord.y + 1, coord.z)
        elif port == Port.SOUTH:
            nxt = mesh.node_id_xyz(coord.x, coord.y - 1, coord.z)
        elif port == Port.UP:
            nxt = mesh.node_id_xyz(coord.x, coord.y, coord.z + 1)
        else:
            nxt = mesh.node_id_xyz(coord.x, coord.y, coord.z - 1)
        nodes.append(nxt)
        current = nxt
        guard -= 1
        if guard <= 0:
            raise RuntimeError(
                "routing failed to converge; check the elevator assignment"
            )
    return nodes


#: Sentinel stored in a column table where the router sits *on* the column
#: and the port (UP or DOWN) depends on the packet's destination layer.
_AT_COLUMN = -1


class PrecomputedRoutes:
    """Flattened Elevator-First routing tables for one mesh.

    :func:`compute_output_port` re-derives coordinates and compares them on
    every call; on the simulation hot path that arithmetic dominates route
    computation.  This class precomputes the same decisions into plain list
    lookups.  XY decisions depend only on the ``(x, y)`` projection, so the
    tables are sized per *column position* (``size_x * size_y`` entries,
    shared by every layer), not per node:

    * ``intra[xy(current)][xy(destination)]`` -- the XY port (or LOCAL)
      used when current and destination share a layer;
    * per elevator column, ``column[xy(current)]`` -- the XY port toward
      the column, or :data:`_AT_COLUMN` when the router sits on it (the
      vertical direction then depends on the destination layer);
    * ``node_z[node]`` / ``node_xy[node]`` -- the layer and xy-projected
      index of every node.

    Column tables are built lazily, so any ``(x, y)`` column a policy
    assigns -- including columns outside the placement the tables were
    seeded with -- is supported.  :meth:`port_for` is equivalent to
    :func:`compute_output_port` for every reachable input (enforced by an
    exhaustive test), which is what lets the optimized simulation kernel
    share results bit for bit with the reference kernel.
    """

    def __init__(self, mesh: Mesh3D) -> None:
        self.mesh = mesh
        per_layer = mesh.nodes_per_layer
        n = mesh.num_nodes
        self.node_z: List[int] = [node // per_layer for node in range(n)]
        self.node_xy: List[int] = [node % per_layer for node in range(n)]
        layer = [mesh.coordinate(node) for node in range(per_layer)]
        self._layer_coords = layer
        self.intra: List[List[Port]] = [
            [
                Port.LOCAL
                if (cur.x, cur.y) == (dst.x, dst.y)
                else _xy_port(cur.x, cur.y, dst.x, dst.y)
                for dst in layer
            ]
            for cur in layer
        ]
        self._columns: Dict[Tuple[int, int], List[int]] = {}

    def column_table(self, column: Tuple[int, int]) -> List[int]:
        """The per-xy-position port table toward a column (lazily built)."""
        table = self._columns.get(column)
        if table is None:
            ex, ey = column
            table = [
                _AT_COLUMN
                if (cur.x, cur.y) == (ex, ey)
                else _xy_port(cur.x, cur.y, ex, ey)
                for cur in self._layer_coords
            ]
            self._columns[column] = table
        return table

    def port_for(
        self,
        current: int,
        destination: int,
        elevator_column: Optional[Tuple[int, int]],
    ) -> Port:
        """Next output port under Elevator-First routing (table lookup)."""
        node_z = self.node_z
        cur_z = node_z[current]
        dst_z = node_z[destination]
        node_xy = self.node_xy
        if cur_z != dst_z:
            if elevator_column is None:
                raise ValueError(
                    "inter-layer packet without an assigned elevator at node "
                    f"{current} (destination {destination})"
                )
            port = self.column_table(elevator_column)[node_xy[current]]
            if port == _AT_COLUMN:
                return Port.UP if dst_z > cur_z else Port.DOWN
            return port
        return self.intra[node_xy[current]][node_xy[destination]]


class RouteComputation:
    """Callable route computation bound to a mesh (used by the network).

    Routes through :class:`PrecomputedRoutes` tables, shared with the
    optimized simulation kernel via :attr:`tables`.
    """

    def __init__(self, mesh: Mesh3D) -> None:
        self.mesh = mesh
        self.tables = PrecomputedRoutes(mesh)

    def __call__(self, current: int, packet: Packet) -> Port:
        """Output port for a packet at a given router."""
        return self.tables.port_for(
            current, packet.destination, packet.elevator_column
        )


class ElevatorSelectionPolicy:
    """Base class for elevator-selection policies.

    A policy is bound to an :class:`ElevatorPlacement` and is consulted once
    per packet, at the source router, when the packet is injected.  Policies
    that adapt online additionally receive local latency feedback
    (:meth:`notify_source_latency`, AdEle Eq. 6-7) and may inspect global
    network state through the optional ``network`` argument (CDA).

    Attributes:
        name: Short policy name used in reports and benches.
    """

    name = "base"

    def __init__(self, placement: ElevatorPlacement) -> None:
        self.placement = placement
        self.mesh = placement.mesh

    # ------------------------------------------------------------------ #
    # Selection interface
    # ------------------------------------------------------------------ #
    def select_elevator(
        self,
        source: int,
        destination: int,
        network: Optional["Network"] = None,
        cycle: int = 0,
    ) -> Optional[Elevator]:
        """Choose an elevator for a packet, or ``None`` for intra-layer pairs."""
        if self.mesh.same_layer(source, destination):
            return None
        return self._select(source, destination, network, cycle)

    def _select(
        self,
        source: int,
        destination: int,
        network: Optional["Network"],
        cycle: int,
    ) -> Elevator:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Online feedback hooks (no-ops by default)
    # ------------------------------------------------------------------ #
    def notify_source_latency(
        self, source: int, elevator_index: int, latency_metric: float, cycle: int = 0
    ) -> None:
        """Feedback: the packet's tail flit left the source router.

        ``latency_metric`` is T_ek of Eq. 6 -- the source-side serialization
        slack normalized by packet length.  Non-adaptive policies ignore it.
        """

    def on_topology_change(self) -> None:
        """The placement's fault set changed mid-run (scenario events).

        Policies that *precompute* state from the healthy elevator set
        (AdEle's per-router subset tables) re-derive it here; policies that
        consult :meth:`ElevatorPlacement.healthy_elevators` live at every
        selection (Elevator-First, CDA, minimal) need nothing.
        """

    def reset(self) -> None:
        """Reset any online state (called between independent simulations)."""

    def annotate_packet(self, packet: Packet, elevator: Optional[Elevator]) -> None:
        """Record the selection on the packet (elevator index + column)."""
        if elevator is None:
            packet.elevator_index = None
            packet.elevator_column = None
        else:
            packet.elevator_index = elevator.index
            packet.elevator_column = elevator.column

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(placement={self.placement.name!r})"
