"""AdEle's online adaptive elevator selection (paper Section III-C).

Every router owns a small amount of local state per elevator in its offline
subset ``A_i``:

* an EWMA latency cost ``C_k`` updated from the source-side serialization
  slack of each packet sent through elevator ``k`` (Eq. 6-7, ``a = 0.2``);
* a relative cost ``C_rel`` (Eq. 8) and a derived skip probability
  ``PS_ik`` (Eq. 9, exploration term ``xi = 0.05``).

Selection is an *enhanced round-robin*: elevators are visited in RR order
and a congested elevator is skipped with probability ``PS_ik``; the
exploration term guarantees every elevator keeps a non-zero chance of being
chosen so its cost estimate can recover.  When every cost is below a
threshold (low traffic), AdEle instead picks the elevator on the minimal
path to save energy (the "low traffic override" of Fig. 1).

:class:`AdEleRoundRobinPolicy` is the paper's AdEle-RR ablation: the same
subsets, plain round-robin, no skipping and no override (Fig. 4(d)/(h)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.routing.base import ElevatorSelectionPolicy, register_policy
from repro.topology.elevators import Elevator, ElevatorPlacement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

#: Default EWMA coefficient of Eq. 7 ("we have experimentally found a = 0.2").
DEFAULT_ALPHA = 0.2
#: Default exploration probability of Eq. 9 ("xi = 0.05 in our experiments").
DEFAULT_XI = 0.05
#: Default low-traffic threshold on the EWMA cost below which AdEle switches
#: to minimal-path selection.  The paper tunes this per configuration; this
#: default keeps the override active only when source-side blocking is
#: essentially absent.
DEFAULT_LOW_TRAFFIC_THRESHOLD = 0.25


@dataclass
class AdEleRouterState:
    """Per-router online state.

    Attributes:
        subset: The elevators the router may select from (``A_i``).
        costs: EWMA latency cost per elevator index (``C_k`` of Eq. 7).
        pointer: Round-robin position (index into ``subset``).
        selections: Count of selections per elevator index (introspection).
    """

    subset: List[Elevator]
    costs: Dict[int, float] = field(default_factory=dict)
    pointer: int = 0
    selections: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.subset:
            raise ValueError("an AdEle router subset must contain >= 1 elevator")
        for elevator in self.subset:
            self.costs.setdefault(elevator.index, 0.0)
            self.selections.setdefault(elevator.index, 0)

    def relative_cost(self, elevator_index: int) -> float:
        """Relative cost ``C_rel`` of Eq. 8 (uniform when all costs are zero)."""
        total = sum(self.costs[e.index] for e in self.subset)
        if total <= 0.0:
            return 1.0 / len(self.subset)
        return self.costs[elevator_index] / total

    def update_cost(self, elevator_index: int, latency_metric: float, alpha: float) -> None:
        """EWMA cost update of Eq. 7."""
        if elevator_index not in self.costs:
            return
        old = self.costs[elevator_index]
        self.costs[elevator_index] = alpha * max(latency_metric, 0.0) + (1.0 - alpha) * old

    def all_costs_below(self, threshold: float) -> bool:
        """True when every elevator's cost is below the low-traffic threshold."""
        return all(self.costs[e.index] < threshold for e in self.subset)


@register_policy(
    "adele",
    description="offline subsets + online enhanced round-robin (the paper's scheme)",
    needs_design=True,
)
class AdElePolicy(ElevatorSelectionPolicy):
    """AdEle online elevator selection (enhanced round-robin + override).

    Args:
        placement: Elevator placement.
        subsets: Mapping of node id to the elevator indices of its offline
            subset ``A_i``.  Nodes without an entry default to the full
            healthy elevator set (equivalent to no offline restriction).
        alpha: EWMA coefficient ``a`` of Eq. 7.
        xi: Exploration probability of Eq. 9.
        low_traffic_threshold: Cost threshold of the minimal-path override;
            ``None`` disables the override.
        seed: RNG seed for the probabilistic skipping.
    """

    name = "adele"

    def __init__(
        self,
        placement: ElevatorPlacement,
        subsets: Optional[Dict[int, Sequence[int]]] = None,
        alpha: float = DEFAULT_ALPHA,
        xi: float = DEFAULT_XI,
        low_traffic_threshold: Optional[float] = DEFAULT_LOW_TRAFFIC_THRESHOLD,
        seed: int = 0,
    ) -> None:
        super().__init__(placement)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be within [0, 1]")
        if not 0.0 <= xi < 1.0:
            raise ValueError("xi must be within [0, 1)")
        self.alpha = alpha
        self.xi = xi
        self.low_traffic_threshold = low_traffic_threshold
        self._seed = seed
        self.rng = random.Random(seed)
        self._subset_spec = dict(subsets) if subsets else {}
        self.states: Dict[int, AdEleRouterState] = {}
        self._build_states()

    # ------------------------------------------------------------------ #
    # State construction
    # ------------------------------------------------------------------ #
    def _build_states(self) -> None:
        self.states = {}
        healthy = self.placement.healthy_elevators()
        for node in self.mesh.nodes():
            indices = self._subset_spec.get(node)
            if indices is None:
                subset = list(healthy)
            else:
                subset = [
                    self.placement.elevator_by_index(index)
                    for index in indices
                    if not self.placement.is_faulty(index)
                ]
                if not subset:
                    subset = list(healthy)
            self.states[node] = AdEleRouterState(subset=subset)

    def reset(self) -> None:
        """Reset RNG, costs and pointers (fresh simulation)."""
        self.rng = random.Random(self._seed)
        self._build_states()

    def on_topology_change(self) -> None:
        """Re-derive every router's subset table after a fault/repair.

        The offline subsets (``_subset_spec``) are re-filtered against the
        placement's current healthy set -- a router whose subset became
        empty falls back to the full healthy set, as at construction.  The
        learned EWMA costs and selection counts of elevators surviving the
        change carry over, so the online adaptation resumes instead of
        restarting from scratch; round-robin pointers restart at 0 (their
        old positions index the old subset lists).  The selection RNG keeps
        its stream.
        """
        previous = self.states
        self._build_states()
        for node, state in self.states.items():
            before = previous.get(node)
            if before is None:
                continue
            for elevator in state.subset:
                if elevator.index in before.costs:
                    state.costs[elevator.index] = before.costs[elevator.index]
                if elevator.index in before.selections:
                    state.selections[elevator.index] = before.selections[
                        elevator.index
                    ]

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def _select(
        self,
        source: int,
        destination: int,
        network: Optional["Network"],
        cycle: int,
    ) -> Elevator:
        state = self.states[source]
        subset = state.subset

        if (
            self.low_traffic_threshold is not None
            and state.all_costs_below(self.low_traffic_threshold)
        ):
            elevator = self.placement.minimal_path_elevator(
                source, destination, candidates=subset
            )
            state.selections[elevator.index] += 1
            return elevator

        elevator = self._enhanced_round_robin(state)
        state.selections[elevator.index] += 1
        return elevator

    def _enhanced_round_robin(self, state: AdEleRouterState) -> Elevator:
        subset = state.subset
        size = len(subset)
        if size == 1:
            return subset[0]
        # Visit elevators in RR order, skipping congested ones probabilistically.
        # PS is bounded by (1 - xi), so a full pass selects something with
        # probability >= 1 - (1 - xi)^size; the guard below caps the search.
        max_visits = 4 * size
        position = state.pointer
        for _ in range(max_visits):
            elevator = subset[position % size]
            position += 1
            skip_probability = self.skip_probability(state, elevator.index)
            if self.rng.random() >= skip_probability:
                state.pointer = position % size
                return elevator
        # Every candidate was skipped repeatedly: fall back to the least
        # congested elevator so forward progress is guaranteed.
        best = min(subset, key=lambda e: (state.costs[e.index], e.index))
        state.pointer = (subset.index(best) + 1) % size
        return best

    def skip_probability(self, state: AdEleRouterState, elevator_index: int) -> float:
        """Skip probability ``PS_ik`` of Eq. 9."""
        size = len(state.subset)
        relative = state.relative_cost(elevator_index)
        if relative >= 2.0 / size:
            return 1.0 - self.xi
        if relative >= 1.0 / size:
            return size * (relative - 1.0 / size) * (1.0 - self.xi)
        return 0.0

    # ------------------------------------------------------------------ #
    # Online feedback
    # ------------------------------------------------------------------ #
    def notify_source_latency(
        self, source: int, elevator_index: int, latency_metric: float, cycle: int = 0
    ) -> None:
        state = self.states.get(source)
        if state is not None:
            state.update_cost(elevator_index, latency_metric, self.alpha)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def subset_indices(self, node: int) -> List[int]:
        """Elevator indices of a node's subset (for tests and reports)."""
        return [elevator.index for elevator in self.states[node].subset]

    def cost(self, node: int, elevator_index: int) -> float:
        """Current EWMA cost of an elevator at a node."""
        return self.states[node].costs[elevator_index]


@register_policy(
    "adele_rr",
    description="AdEle-RR ablation: plain round-robin over the offline subsets",
    needs_design=True,
)
class AdEleRoundRobinPolicy(AdElePolicy):
    """AdEle-RR ablation: plain round-robin over the subsets.

    No congestion-based skipping and no low-traffic override; this isolates
    the contribution of the offline subsets from the online policy, matching
    the "AdEle-RR" curve of Fig. 4(d)/(h).
    """

    name = "adele_rr"

    def __init__(
        self,
        placement: ElevatorPlacement,
        subsets: Optional[Dict[int, Sequence[int]]] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            placement,
            subsets=subsets,
            alpha=DEFAULT_ALPHA,
            xi=DEFAULT_XI,
            low_traffic_threshold=None,
            seed=seed,
        )

    def _enhanced_round_robin(self, state: AdEleRouterState) -> Elevator:
        subset = state.subset
        elevator = subset[state.pointer % len(subset)]
        state.pointer = (state.pointer + 1) % len(subset)
        return elevator

    def notify_source_latency(
        self, source: int, elevator_index: int, latency_metric: float, cycle: int = 0
    ) -> None:
        # Plain RR ignores latency feedback entirely.
        return None
