"""Elevator-First elevator selection (baseline 1).

The original Elevator-First algorithm (Dubois et al., IEEE TC 2013) selects
the elevator *closest to the source router* for every inter-layer packet,
without considering traffic or the destination's position.  This is the
policy the paper's Fig. 2 motivates against: it produces a static,
potentially very uneven partition of routers to elevators and may route far
off the minimal path.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.routing.base import ElevatorSelectionPolicy, register_policy
from repro.topology.elevators import Elevator, ElevatorPlacement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


@register_policy(
    "elevator_first",
    aliases=("elevatorfirst",),
    description="nearest elevator to the source (baseline 1)",
)
class ElevatorFirstPolicy(ElevatorSelectionPolicy):
    """Always select the elevator nearest to the source router.

    The selection is static: it depends only on the source position, so it
    is precomputed per node at construction time.
    """

    name = "elevator_first"

    def __init__(self, placement: ElevatorPlacement) -> None:
        super().__init__(placement)
        # A single-layer network may legitimately have no elevators; the
        # selection is then never consulted (all traffic stays intra-layer).
        self._nearest = {}
        if placement.num_elevators > 0:
            self._nearest = {
                node: placement.nearest_elevator(node)
                for node in placement.mesh.nodes()
            }

    def _select(
        self,
        source: int,
        destination: int,
        network: Optional["Network"],
        cycle: int,
    ) -> Elevator:
        elevator = self._nearest[source]
        if self.placement.is_faulty(elevator.index):
            # Fall back to the nearest healthy elevator (fault extension).
            return self.placement.nearest_elevator(source, exclude_faulty=True)
        return elevator

    def static_assignment(self) -> dict:
        """The node -> elevator-index map (used by tests and Fig. 2 analysis)."""
        return {node: elevator.index for node, elevator in self._nearest.items()}
