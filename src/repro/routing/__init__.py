"""Routing and elevator-selection policies.

The routing substrate follows the paper's Table I: Elevator-First routing
provides the deadlock-free path discipline (XY within a layer, assigned
elevator for inter-layer traffic, two virtual networks), and the policies in
this package differ only in *which elevator* they assign to each packet:

* :class:`~repro.routing.elevator_first.ElevatorFirstPolicy` -- the nearest
  elevator to the source (baseline 1).
* :class:`~repro.routing.cda.CDAPolicy` -- congestion-aware dynamic
  assignment using (oracular) global buffer-occupancy information
  (baseline 2).
* :class:`~repro.routing.adele.AdElePolicy` -- the paper's contribution:
  per-router elevator subsets from the offline optimization plus the online
  enhanced round-robin with congestion-based skipping and a low-traffic
  minimal-path override.
* :class:`~repro.routing.adele.AdEleRoundRobinPolicy` -- the AdEle-RR
  ablation (plain round-robin over the subsets, Fig. 4(d)/(h)).
* :class:`~repro.routing.minimal.MinimalPathPolicy` -- always the elevator
  on the minimal path (energy-optimal, congestion-oblivious), used by
  ablation benches.
"""

from repro.routing.base import (
    POLICY_REGISTRY,
    ElevatorSelectionPolicy,
    RouteComputation,
    compute_output_port,
    register_policy,
)
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.routing.cda import CDAPolicy
from repro.routing.minimal import MinimalPathPolicy
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy, AdEleRouterState

__all__ = [
    "ElevatorSelectionPolicy",
    "RouteComputation",
    "compute_output_port",
    "ElevatorFirstPolicy",
    "CDAPolicy",
    "MinimalPathPolicy",
    "AdElePolicy",
    "AdEleRoundRobinPolicy",
    "AdEleRouterState",
    "POLICY_REGISTRY",
    "register_policy",
    "available_policies",
    "make_policy",
]


def available_policies():
    """Sorted canonical names of every registered policy."""
    return POLICY_REGISTRY.names()


def make_policy(name, placement, **kwargs):
    """Create an elevator-selection policy by registered name.

    The built-in names are ``elevator_first``, ``cda``, ``adele``,
    ``adele_rr`` and ``minimal``; anything registered through
    :func:`register_policy` resolves the same way.

    Args:
        name: Registered policy name or alias (case-insensitive).
        placement: The :class:`~repro.topology.elevators.ElevatorPlacement`
            the policy operates on.
        **kwargs: Policy-specific options (e.g. ``subsets`` for AdEle).

    Raises:
        repro.registry.UnknownComponentError: (a :class:`ValueError`) for
            unknown policy names, listing the registered names.
    """
    return POLICY_REGISTRY.create(name, placement, **kwargs)
