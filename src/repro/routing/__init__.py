"""Routing and elevator-selection policies.

The routing substrate follows the paper's Table I: Elevator-First routing
provides the deadlock-free path discipline (XY within a layer, assigned
elevator for inter-layer traffic, two virtual networks), and the policies in
this package differ only in *which elevator* they assign to each packet:

* :class:`~repro.routing.elevator_first.ElevatorFirstPolicy` -- the nearest
  elevator to the source (baseline 1).
* :class:`~repro.routing.cda.CDAPolicy` -- congestion-aware dynamic
  assignment using (oracular) global buffer-occupancy information
  (baseline 2).
* :class:`~repro.routing.adele.AdElePolicy` -- the paper's contribution:
  per-router elevator subsets from the offline optimization plus the online
  enhanced round-robin with congestion-based skipping and a low-traffic
  minimal-path override.
* :class:`~repro.routing.adele.AdEleRoundRobinPolicy` -- the AdEle-RR
  ablation (plain round-robin over the subsets, Fig. 4(d)/(h)).
* :class:`~repro.routing.minimal.MinimalPathPolicy` -- always the elevator
  on the minimal path (energy-optimal, congestion-oblivious), used by
  ablation benches.
"""

from repro.routing.base import (
    ElevatorSelectionPolicy,
    RouteComputation,
    compute_output_port,
)
from repro.routing.elevator_first import ElevatorFirstPolicy
from repro.routing.cda import CDAPolicy
from repro.routing.minimal import MinimalPathPolicy
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy, AdEleRouterState

__all__ = [
    "ElevatorSelectionPolicy",
    "RouteComputation",
    "compute_output_port",
    "ElevatorFirstPolicy",
    "CDAPolicy",
    "MinimalPathPolicy",
    "AdElePolicy",
    "AdEleRoundRobinPolicy",
    "AdEleRouterState",
    "make_policy",
]


def make_policy(name, placement, **kwargs):
    """Create an elevator-selection policy by name.

    Args:
        name: One of ``elevator_first``, ``cda``, ``adele``, ``adele_rr``,
            ``minimal``.
        placement: The :class:`~repro.topology.elevators.ElevatorPlacement`
            the policy operates on.
        **kwargs: Policy-specific options (e.g. ``subsets`` for AdEle).

    Raises:
        KeyError: For unknown policy names.
    """
    key = str(name).lower()
    factories = {
        "elevator_first": ElevatorFirstPolicy,
        "elevatorfirst": ElevatorFirstPolicy,
        "cda": CDAPolicy,
        "adele": AdElePolicy,
        "adele_rr": AdEleRoundRobinPolicy,
        "minimal": MinimalPathPolicy,
    }
    if key not in factories:
        raise KeyError(f"unknown policy {name!r}; available: {sorted(factories)}")
    return factories[key](placement, **kwargs)
