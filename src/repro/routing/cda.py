"""CDA: congestion-aware dynamic elevator assignment (baseline 2).

CDA (Fu et al., ISCAS 2019) selects, for every inter-layer packet, the
elevator minimizing a congestion cost computed from the *buffer utilization
of the routers between the source and the elevator*.  That requires global
(at least layer-wide) occupancy information at every router; the paper
treats this optimistically -- "we ... assume that the information is
instantaneously received at every router" -- and this implementation does
the same by querying the live simulator state.

The cost of an elevator is the distance from the source to the elevator
plus the instantaneous buffer occupancy of the routers along that path
(congestion term).  Following the description in the AdEle paper, the
destination side of the path is *not* part of CDA's cost -- the scheme is
driven by source-to-elevator congestion -- so under zero load CDA degrades
to the nearest-elevator choice of Elevator-First and spreads traffic to
farther elevators only when the near ones congest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.routing.base import ElevatorSelectionPolicy, path_nodes, register_policy
from repro.topology.elevators import Elevator, ElevatorPlacement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


@register_policy(
    "cda",
    description="congestion-aware dynamic assignment with global occupancy (baseline 2)",
)
class CDAPolicy(ElevatorSelectionPolicy):
    """Congestion-aware dynamic elevator assignment.

    Args:
        placement: Elevator placement.
        congestion_weight: Weight of the aggregate buffer occupancy along the
            source-to-elevator path, in hop-equivalents per buffered flit.
        update_period: How often (in cycles) the global occupancy snapshot is
            refreshed.  ``1`` is the paper's optimistic instantaneous-sharing
            assumption; larger values model the staleness a real
            implementation would incur and are used by the ablation bench.
    """

    name = "cda"

    def __init__(
        self,
        placement: ElevatorPlacement,
        congestion_weight: float = 1.0,
        update_period: int = 1,
    ) -> None:
        super().__init__(placement)
        if congestion_weight < 0:
            raise ValueError("congestion_weight must be non-negative")
        if update_period < 1:
            raise ValueError("update_period must be >= 1")
        self.congestion_weight = congestion_weight
        self.update_period = update_period
        self._snapshot: Dict[int, int] = {}
        self._snapshot_cycle: Optional[int] = None
        # Intra-layer path from every source to every elevator (on the
        # source's layer) is static, so precompute the node lists once.
        self._paths: Dict[Tuple[int, int], List[int]] = {}

    def reset(self) -> None:
        """Drop the cached occupancy snapshot (fresh simulation)."""
        self._snapshot = {}
        self._snapshot_cycle = None

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def _select(
        self,
        source: int,
        destination: int,
        network: Optional["Network"],
        cycle: int,
    ) -> Elevator:
        occupancy = self._occupancy_view(network, cycle)
        candidates = self.placement.healthy_elevators()
        best: Optional[Elevator] = None
        best_cost = float("inf")
        for elevator in candidates:
            cost = self._cost(source, elevator, occupancy)
            if cost < best_cost:
                best = elevator
                best_cost = cost
        assert best is not None
        return best

    def _occupancy_view(
        self, network: Optional["Network"], cycle: int
    ) -> Dict[int, int]:
        """The buffer-occupancy snapshot visible to the routers this cycle."""
        if network is None or self.congestion_weight == 0:
            return {}
        if self.update_period == 1:
            return {
                node: network.buffer_occupancy(node)
                for node in self.mesh.nodes()
            }
        due = (
            self._snapshot_cycle is None
            or cycle - self._snapshot_cycle >= self.update_period
        )
        if due:
            self._snapshot = {
                node: network.buffer_occupancy(node)
                for node in self.mesh.nodes()
            }
            self._snapshot_cycle = cycle
        return self._snapshot

    def _cost(
        self,
        source: int,
        elevator: Elevator,
        occupancy: Dict[int, int],
    ) -> float:
        source_coord = self.mesh.coordinate(source)
        distance = abs(source_coord.x - elevator.x) + abs(source_coord.y - elevator.y)
        congestion = 0.0
        if occupancy and self.congestion_weight > 0:
            for node in self._path_to_elevator(source, elevator):
                congestion += occupancy.get(node, 0)
        return distance + self.congestion_weight * congestion

    def _path_to_elevator(self, source: int, elevator: Elevator) -> List[int]:
        """Nodes of the intra-layer path from the source to the elevator."""
        key = (source, elevator.index)
        path = self._paths.get(key)
        if path is None:
            source_layer = self.mesh.coordinate(source).z
            elevator_node = self.placement.elevator_node(elevator, source_layer)
            if elevator_node == source:
                path = [source]
            else:
                path = path_nodes(
                    self.mesh, source, elevator_node, elevator.column
                )
            self._paths[key] = path
        return path
