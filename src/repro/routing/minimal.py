"""Minimal-path elevator selection (energy-optimal, congestion-oblivious).

Selecting the elevator on the minimal source-elevator-destination path gives
the lowest possible hop count and therefore the lowest energy per packet,
but it ignores congestion entirely.  AdEle switches to exactly this choice
when its low-traffic override triggers; exposing it as a standalone policy
lets the ablation benches quantify what each AdEle ingredient contributes.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.routing.base import ElevatorSelectionPolicy, register_policy
from repro.topology.elevators import Elevator, ElevatorPlacement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


@register_policy(
    "minimal",
    description="elevator on the minimal path (energy-optimal, congestion-oblivious)",
)
class MinimalPathPolicy(ElevatorSelectionPolicy):
    """Always select the elevator on the minimal path to the destination."""

    name = "minimal"

    def __init__(self, placement: ElevatorPlacement) -> None:
        super().__init__(placement)

    def _select(
        self,
        source: int,
        destination: int,
        network: Optional["Network"],
        cycle: int,
    ) -> Elevator:
        return self.placement.minimal_path_elevator(
            source, destination, candidates=self.placement.healthy_elevators()
        )
