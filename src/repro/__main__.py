"""``python -m repro`` -- the parallel experiment engine CLI."""

from repro.exec.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
