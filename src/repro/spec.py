"""Typed, declarative experiment specifications (the ``repro.api`` data model).

An :class:`ExperimentSpec` describes one simulated configuration as four
composable, validated pieces:

* :class:`PlacementSpec` -- *where* the elevators are: a registered placement
  name (``PS1``-``PS3``, ``PM``, or anything added via
  :func:`repro.topology.elevators.register_placement`) or an explicit
  structural placement (mesh shape + elevator columns);
* :class:`PolicySpec` -- *which* elevator-selection policy runs, by
  registered name, plus free-form policy options (e.g. AdEle's
  ``max_subset_size`` / ``low_traffic_threshold``, which no longer leak into
  unrelated experiments);
* :class:`TrafficSpec` -- *what* traffic drives the network: a registered
  synthetic pattern or application model by name, injection rate and packet
  lengths;
* :class:`SimSpec` -- *how long* and *how* the simulator runs (cycles,
  buffer depth, seed).

Every spec validates on construction and round-trips losslessly through
``to_dict()`` / ``from_dict()``; the dictionary form is the **single
canonical serialization** of an experiment -- the parallel engine's cache
keys and derived seeds (:func:`repro.exec.cache.config_key` /
:func:`~repro.exec.cache.derive_seed`) and the CLI's ``--spec`` files are
all built from it.  Structural placements are captured by mesh shape and
columns, so two different custom placements sharing a name can never alias
each other in the cache.

The legacy flat :class:`repro.analysis.runner.ExperimentConfig` is a
deprecated shim that converts to/from :class:`ExperimentSpec`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.jsonutil import check_json_native as _check_json_native
from repro.scenario.spec import ScenarioSpec
from repro.sim.backends import DEFAULT_BACKEND
from repro.topology.elevators import PLACEMENT_REGISTRY, ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.applications import APPLICATION_REGISTRY
from repro.traffic.patterns import TrafficPattern

#: Version tag of the canonical dictionary serialization.
SPEC_FORMAT = 1

#: Default subset-size cap of AdEle's offline stage (paper Table I).
DEFAULT_ADELE_MAX_SUBSET_SIZE = 4
#: Default low-traffic minimal-path-override threshold of AdEle's online
#: policy (mirrors ``repro.routing.adele.DEFAULT_LOW_TRAFFIC_THRESHOLD``).
DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD = 0.25

#: Policy names whose construction requires AdEle's offline design stage.
ADELE_POLICY_NAMES = ("adele", "adele_rr")


# ---------------------------------------------------------------------- #
# Validation helpers
# ---------------------------------------------------------------------- #
def _options_dict(options: Optional[Mapping[str, Any]], where: str) -> Dict[str, Any]:
    if options is None:
        return {}
    if not isinstance(options, Mapping):
        raise ValueError(f"{where} must be a mapping, got {type(options).__name__}")
    return dict(_check_json_native(options, where))


def _require_name(name: Any, what: str) -> str:
    if not isinstance(name, str) or not name:
        raise ValueError(f"{what} must be a non-empty string, got {name!r}")
    return name


def _reject_unknown_keys(data: Mapping[str, Any], allowed: Tuple[str, ...], what: str) -> None:
    if not isinstance(data, Mapping):
        raise ValueError(f"{what} must be a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {what} field(s): {', '.join(unknown)}; "
            f"expected a subset of {sorted(allowed)}"
        )


# ---------------------------------------------------------------------- #
# Placement
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlacementSpec:
    """Where the elevators are.

    Either a *named* placement (``mesh``/``columns`` omitted -- resolved
    through the global placement registry) or a *structural* one (both
    ``mesh`` and ``columns`` given -- rebuilt from scratch wherever the
    experiment runs, worker processes included).

    Attributes:
        name: Registered placement name, or a label for a structural one.
        mesh: ``(x, y, z)`` mesh shape of a structural placement.
        columns: ``((x, y), ...)`` elevator columns of a structural
            placement, in elevator-index order.
    """

    name: str = "PS1"
    mesh: Optional[Tuple[int, int, int]] = None
    columns: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        _require_name(self.name, "placement name")
        if (self.mesh is None) != (self.columns is None):
            raise ValueError(
                "structural placements need both mesh and columns; "
                "named placements neither"
            )
        if self.mesh is not None:
            mesh = tuple(int(d) for d in self.mesh)
            if len(mesh) != 3 or any(d < 1 for d in mesh):
                raise ValueError(f"mesh must be three positive dimensions, got {self.mesh!r}")
            columns = tuple(
                (int(c[0]), int(c[1])) for c in self.columns  # type: ignore[union-attr]
            )
            object.__setattr__(self, "mesh", mesh)
            object.__setattr__(self, "columns", columns)

    @property
    def is_structural(self) -> bool:
        """Whether the spec carries its own mesh shape and columns."""
        return self.mesh is not None

    @classmethod
    def from_placement(
        cls, placement: ElevatorPlacement, name: Optional[str] = None
    ) -> "PlacementSpec":
        """Capture an existing placement object structurally."""
        return cls(
            name=name or placement.name,
            mesh=tuple(placement.mesh.shape),
            columns=tuple(placement.columns()),
        )

    def resolve(self) -> ElevatorPlacement:
        """Build (structural) or look up (named) the placement object.

        Structural specs return a *fresh* :class:`ElevatorPlacement` on each
        call; construction validates columns against the mesh.

        Raises:
            repro.registry.UnknownComponentError: For unknown named
                placements.
        """
        if self.is_structural:
            return ElevatorPlacement(
                Mesh3D(*self.mesh),  # type: ignore[misc]
                list(self.columns or ()),
                name=self.name,
            )
        return PLACEMENT_REGISTRY.get(self.name)()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form."""
        return {
            "name": self.name,
            "mesh": None if self.mesh is None else list(self.mesh),
            "columns": None
            if self.columns is None
            else [list(column) for column in self.columns],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementSpec":
        """Rebuild from the canonical form (unknown keys rejected)."""
        _reject_unknown_keys(data, ("name", "mesh", "columns"), "placement spec")
        mesh = data.get("mesh")
        columns = data.get("columns")
        return cls(
            name=data.get("name", "PS1"),
            mesh=None if mesh is None else tuple(mesh),
            columns=None
            if columns is None
            else tuple(tuple(column) for column in columns),
        )


# ---------------------------------------------------------------------- #
# Policy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicySpec:
    """Which elevator-selection policy runs, with its options.

    Attributes:
        name: Registered policy name (``elevator_first``, ``cda``,
            ``adele``, ``adele_rr``, ``minimal``, or anything added via
            :func:`repro.routing.base.register_policy`).
        options: JSON-native policy options forwarded to the policy factory
            (for AdEle: ``max_subset_size`` and ``low_traffic_threshold``,
            consumed by the offline/online stages instead).
    """

    name: str = "adele"
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name(self.name, "policy name")
        object.__setattr__(self, "options", _options_dict(self.options, "policy options"))

    @property
    def needs_design(self) -> bool:
        """Whether this policy requires AdEle's offline design stage."""
        return self.name.lower() in ADELE_POLICY_NAMES

    def option(self, key: str, default: Any = None) -> Any:
        """One option value with a default."""
        return self.options.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form."""
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        """Rebuild from the canonical form (unknown keys rejected)."""
        _reject_unknown_keys(data, ("name", "options"), "policy spec")
        return cls(name=data.get("name", "adele"), options=dict(data.get("options") or {}))


# ---------------------------------------------------------------------- #
# Traffic
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrafficSpec:
    """What traffic drives the network.

    Attributes:
        pattern: Registered synthetic-pattern name (``uniform``, ...) or
            application name (``fft``, ...); applications win when a name is
            registered in both registries.
        injection_rate: Packet injection rate per node per cycle.
        min_packet_length: Minimum packet length in flits (Table I: 10).
        max_packet_length: Maximum packet length in flits (Table I: 30).
        options: Extra keyword arguments for the pattern constructor (e.g.
            ``hotspot_fraction``); must be empty for application traffic.
    """

    pattern: str = "uniform"
    injection_rate: float = 0.004
    min_packet_length: int = 10
    max_packet_length: int = 30
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name(self.pattern, "traffic pattern name")
        if not isinstance(self.injection_rate, (int, float)) or self.injection_rate < 0:
            raise ValueError(f"injection_rate must be >= 0, got {self.injection_rate!r}")
        if self.min_packet_length < 1:
            raise ValueError("min_packet_length must be >= 1")
        if self.max_packet_length < self.min_packet_length:
            raise ValueError("max_packet_length must be >= min_packet_length")
        object.__setattr__(self, "injection_rate", float(self.injection_rate))
        object.__setattr__(
            self, "options", _options_dict(self.options, "traffic options")
        )

    @property
    def is_application(self) -> bool:
        """Whether the pattern name resolves to an application model."""
        return self.pattern in APPLICATION_REGISTRY

    def build(self, placement: ElevatorPlacement, seed: int = 0) -> TrafficPattern:
        """Instantiate the traffic pattern on a placement's mesh.

        Raises:
            repro.registry.UnknownComponentError: When the name is neither a
                registered pattern nor a registered application.
        """
        from repro.traffic import build_traffic_pattern

        return build_traffic_pattern(
            self.pattern, placement.mesh, seed=seed, options=self.options
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form."""
        return {
            "pattern": self.pattern,
            "injection_rate": self.injection_rate,
            "min_packet_length": self.min_packet_length,
            "max_packet_length": self.max_packet_length,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        """Rebuild from the canonical form (unknown keys rejected)."""
        _reject_unknown_keys(
            data,
            (
                "pattern",
                "injection_rate",
                "min_packet_length",
                "max_packet_length",
                "options",
            ),
            "traffic spec",
        )
        defaults = cls()
        return cls(
            pattern=data.get("pattern", defaults.pattern),
            injection_rate=data.get("injection_rate", defaults.injection_rate),
            min_packet_length=data.get("min_packet_length", defaults.min_packet_length),
            max_packet_length=data.get("max_packet_length", defaults.max_packet_length),
            options=dict(data.get("options") or {}),
        )


# ---------------------------------------------------------------------- #
# Simulation
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimSpec:
    """How the simulator runs.

    Attributes:
        warmup_cycles: Unmeasured warm-up cycles.
        measurement_cycles: Measured cycles.
        drain_cycles: Maximum drain cycles after injection stops.
        buffer_depth: Input buffer depth in flits (Table I: 4).
        seed: Seed for traffic and policy randomness.
        backend: Simulation kernel executing the cycle loop (a name in
            :data:`repro.sim.backends.BACKEND_REGISTRY`).  Backends are
            result-equivalent, so the canonical serialization *omits* this
            field when it equals the default -- cache keys (and cached
            results) predating the field stay valid, and picking the
            default backend explicitly never splits the cache.
        bit_exact: Force the selected backend to produce results
            bit-identical to the ``reference`` kernel even where its fast
            path only honors the documented tolerance contract (the
            ``vectorized`` backend).  Serialized only when set, for the
            same cache-stability reason as ``backend``.
    """

    warmup_cycles: int = 300
    measurement_cycles: int = 1500
    drain_cycles: int = 800
    buffer_depth: int = 4
    seed: int = 0
    backend: str = DEFAULT_BACKEND
    bit_exact: bool = False

    def __post_init__(self) -> None:
        for name in ("warmup_cycles", "measurement_cycles", "drain_cycles"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
        if not isinstance(self.buffer_depth, int) or self.buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {self.buffer_depth!r}")
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.backend, str) or not self.backend.strip():
            raise ValueError(
                f"backend must be a non-empty string, got {self.backend!r}"
            )
        object.__setattr__(self, "backend", self.backend.strip().lower())
        if not isinstance(self.bit_exact, bool):
            raise ValueError(
                f"bit_exact must be a boolean, got {self.bit_exact!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native canonical form.

        The ``backend`` key appears only when non-default (see the class
        docstring for why).
        """
        data = {
            "warmup_cycles": self.warmup_cycles,
            "measurement_cycles": self.measurement_cycles,
            "drain_cycles": self.drain_cycles,
            "buffer_depth": self.buffer_depth,
            "seed": self.seed,
        }
        if self.backend != DEFAULT_BACKEND:
            data["backend"] = self.backend
        if self.bit_exact:
            data["bit_exact"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimSpec":
        """Rebuild from the canonical form (unknown keys rejected)."""
        allowed = (
            "warmup_cycles",
            "measurement_cycles",
            "drain_cycles",
            "buffer_depth",
            "seed",
            "backend",
            "bit_exact",
        )
        _reject_unknown_keys(data, allowed, "sim spec")
        defaults = cls()
        return cls(**{key: data.get(key, getattr(defaults, key)) for key in allowed})


# ---------------------------------------------------------------------- #
# Offline design
# ---------------------------------------------------------------------- #
#: Selection strategies accepted by :class:`DesignSpec` (mirrors
#: :data:`repro.core.selection.SELECTION_STRATEGIES`; duplicated as a plain
#: tuple so the spec layer stays import-light).
DESIGN_SELECTIONS = ("knee", "latency", "energy")

#: Default number of representative (S0...) solutions exposed from the
#: archive (S0-S5 in the paper corresponds to 6; mirrors
#: ``OfflineConfig.num_representatives``).
DEFAULT_NUM_REPRESENTATIVES = 6


@dataclass(frozen=True)
class DesignSpec:
    """The offline design-space-exploration stage, declaratively.

    Describes one invocation of the paper's offline stage (Fig. 1): which
    placement is optimized, which assumed traffic pattern drives the
    objectives, which registered optimizer searches the subset space with
    which options, and which archive-selection strategy picks the deployed
    solution.  The canonical ``to_dict`` form keys the disk design cache
    (:class:`repro.exec.cache.DiskDesignCache`), and nested into an
    :class:`ExperimentSpec` it overrides how AdEle policies obtain their
    offline design.

    Attributes:
        placement: Placement to optimize (ignored when the spec is nested
            in an :class:`ExperimentSpec` -- the experiment's placement
            wins, and the nested serialization omits this field).
        traffic: Registered traffic-pattern name assumed by the offline
            objectives (``uniform`` -- the paper's pessimistic default --
            or any registered synthetic pattern; built with seed 0).
        optimizer: Registered optimizer name (``amosa``, ``random-search``,
            ``greedy-swap``, or anything added via
            :func:`repro.core.optimizers.register_optimizer`).
        options: Optimizer options (for ``amosa``: overrides applied over
            the offline defaults).
        max_subset_size: Cap on each router's subset size; ``None`` =
            unlimited.
        selection: Archive-selection strategy for the deployed solution
            (``knee``, ``latency`` or ``energy``).
        weight_distance_by_traffic: Weight the distance objective by the
            assumed traffic matrix instead of counting inter-layer pairs
            equally.  Omitted from the canonical serialization at its
            default (``False``), so pre-existing design-cache keys stay
            valid.
        num_representatives: How many spread (S0...) solutions to expose
            from the archive.  Like ``selection``, this only *reads* the
            archive: it is re-applied after every cache fetch and never
            splits the cache; omitted from the canonical serialization at
            its default.
    """

    placement: PlacementSpec = field(default_factory=PlacementSpec)
    traffic: str = "uniform"
    optimizer: str = "amosa"
    options: Dict[str, Any] = field(default_factory=dict)
    max_subset_size: Optional[int] = DEFAULT_ADELE_MAX_SUBSET_SIZE
    selection: str = "knee"
    weight_distance_by_traffic: bool = False
    num_representatives: int = DEFAULT_NUM_REPRESENTATIVES

    def __post_init__(self) -> None:
        if not isinstance(self.placement, PlacementSpec):
            raise ValueError(f"placement must be a PlacementSpec, got {self.placement!r}")
        _require_name(self.traffic, "design traffic pattern")
        _require_name(self.optimizer, "optimizer name")
        object.__setattr__(self, "optimizer", self.optimizer.strip().lower())
        object.__setattr__(self, "options", _options_dict(self.options, "optimizer options"))
        if self.max_subset_size is not None:
            if not isinstance(self.max_subset_size, int) or self.max_subset_size < 1:
                raise ValueError(
                    f"max_subset_size must be a positive integer or None, "
                    f"got {self.max_subset_size!r}"
                )
        selection = str(self.selection).lower()
        if selection not in DESIGN_SELECTIONS:
            raise ValueError(
                f"unknown selection strategy {self.selection!r}; "
                f"expected one of {sorted(DESIGN_SELECTIONS)}"
            )
        object.__setattr__(self, "selection", selection)
        if not isinstance(self.weight_distance_by_traffic, bool):
            raise ValueError(
                f"weight_distance_by_traffic must be a boolean, "
                f"got {self.weight_distance_by_traffic!r}"
            )
        if (
            isinstance(self.num_representatives, bool)
            or not isinstance(self.num_representatives, int)
            or self.num_representatives < 1
        ):
            raise ValueError(
                f"num_representatives must be a positive integer, "
                f"got {self.num_representatives!r}"
            )

    def with_(self, **changes: Any) -> "DesignSpec":
        """A copy with some fields replaced (same validation)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    def to_dict(self, include_placement: bool = True) -> Dict[str, Any]:
        """JSON-native canonical form.

        Args:
            include_placement: ``False`` when nesting inside an
                :class:`ExperimentSpec`, whose placement is authoritative.
        """
        data: Dict[str, Any] = {
            "traffic": self.traffic,
            "optimizer": self.optimizer,
            "options": dict(self.options),
            "max_subset_size": self.max_subset_size,
            "selection": self.selection,
        }
        # Both knobs predate no one: they entered the spec after the disk
        # caches existed, so they appear only when non-default -- keys of
        # every previously cached design stay byte-identical.
        if self.weight_distance_by_traffic:
            data["weight_distance_by_traffic"] = True
        if self.num_representatives != DEFAULT_NUM_REPRESENTATIVES:
            data["num_representatives"] = self.num_representatives
        if include_placement:
            data["placement"] = self.placement.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignSpec":
        """Rebuild from the canonical form (unknown keys rejected)."""
        _reject_unknown_keys(
            data,
            (
                "placement",
                "traffic",
                "optimizer",
                "options",
                "max_subset_size",
                "selection",
                "weight_distance_by_traffic",
                "num_representatives",
            ),
            "design spec",
        )
        defaults = cls()
        placement_data = data.get("placement")
        return cls(
            placement=PlacementSpec.from_dict(placement_data)
            if placement_data is not None
            else PlacementSpec(),
            traffic=data.get("traffic", defaults.traffic),
            optimizer=data.get("optimizer", defaults.optimizer),
            options=dict(data.get("options") or {}),
            max_subset_size=data.get("max_subset_size", defaults.max_subset_size),
            selection=data.get("selection", defaults.selection),
            weight_distance_by_traffic=data.get(
                "weight_distance_by_traffic", defaults.weight_distance_by_traffic
            ),
            num_representatives=data.get(
                "num_representatives", defaults.num_representatives
            ),
        )


# ---------------------------------------------------------------------- #
# The experiment spec
# ---------------------------------------------------------------------- #
#: Flat convenience keys accepted by :meth:`ExperimentSpec.with_`, mapped to
#: their nested (sub-spec, field) location.
_FLAT_FIELDS: Dict[str, Tuple[str, str]] = {
    "injection_rate": ("traffic", "injection_rate"),
    "pattern": ("traffic", "pattern"),
    "min_packet_length": ("traffic", "min_packet_length"),
    "max_packet_length": ("traffic", "max_packet_length"),
    "warmup_cycles": ("sim", "warmup_cycles"),
    "measurement_cycles": ("sim", "measurement_cycles"),
    "drain_cycles": ("sim", "drain_cycles"),
    "buffer_depth": ("sim", "buffer_depth"),
    "seed": ("sim", "seed"),
    "backend": ("sim", "backend"),
    "bit_exact": ("sim", "bit_exact"),
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described experiment: placement + policy + traffic + sim.

    The canonical currency of the public API: builders
    (:func:`repro.analysis.runner.run_experiment`), the parallel engine
    (:class:`repro.exec.batch.ExperimentBatch`), cache keys and the CLI all
    consume this type.  Instances are immutable; derive variants with
    :meth:`with_`.

    The optional ``design`` field pins the offline stage of AdEle policies
    to an explicit :class:`DesignSpec` (optimizer, options, assumed
    traffic, selection); its placement field is ignored -- the experiment's
    placement is authoritative.  The optional ``scenario`` field attaches a
    :class:`~repro.scenario.spec.ScenarioSpec` event timeline (traffic
    phases, rate ramps, elevator faults/repairs, measurement markers)
    executed while the simulation runs.  Both enter the canonical
    serialization (and therefore cache keys and derived seeds) **only when
    set**, so every pre-existing cache entry stays valid and plain
    experiments hash exactly as before.
    """

    placement: PlacementSpec = field(default_factory=PlacementSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    sim: SimSpec = field(default_factory=SimSpec)
    design: Optional[DesignSpec] = None
    scenario: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.placement, PlacementSpec):
            raise ValueError(f"placement must be a PlacementSpec, got {self.placement!r}")
        if not isinstance(self.policy, PolicySpec):
            raise ValueError(f"policy must be a PolicySpec, got {self.policy!r}")
        if not isinstance(self.traffic, TrafficSpec):
            raise ValueError(f"traffic must be a TrafficSpec, got {self.traffic!r}")
        if not isinstance(self.sim, SimSpec):
            raise ValueError(f"sim must be a SimSpec, got {self.sim!r}")
        if self.design is not None and not isinstance(self.design, DesignSpec):
            raise ValueError(f"design must be a DesignSpec or None, got {self.design!r}")
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            raise ValueError(
                f"scenario must be a ScenarioSpec or None, got {self.scenario!r}"
            )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_(self, **changes: Any) -> "ExperimentSpec":
        """A copy with some pieces replaced.

        Accepts the four sub-spec fields (``placement``, ``policy``,
        ``traffic``, ``sim`` -- as spec objects, or name strings for
        placement/policy/traffic, or an :class:`ElevatorPlacement` for
        placement) plus the flat convenience keys ``injection_rate``,
        ``pattern``, ``seed``, ``backend``, ``warmup_cycles``,
        ``measurement_cycles``, ``drain_cycles``, ``buffer_depth``,
        ``min_packet_length`` and ``max_packet_length``.  Changing the policy *name* resets the policy
        options (options rarely transfer between policies); pass a full
        :class:`PolicySpec` to control them explicitly.
        """
        placement, policy, traffic, sim, design, scenario = (
            self.placement,
            self.policy,
            self.traffic,
            self.sim,
            self.design,
            self.scenario,
        )
        for key, value in changes.items():
            if key == "placement":
                if isinstance(value, PlacementSpec):
                    placement = value
                elif isinstance(value, ElevatorPlacement):
                    placement = PlacementSpec.from_placement(value)
                elif isinstance(value, str):
                    placement = PlacementSpec(name=value)
                else:
                    raise ValueError(f"cannot derive a placement from {value!r}")
            elif key == "policy":
                if isinstance(value, PolicySpec):
                    policy = value
                elif isinstance(value, str):
                    keep = policy.options if value.lower() == policy.name.lower() else {}
                    policy = PolicySpec(name=value, options=keep)
                else:
                    raise ValueError(f"cannot derive a policy from {value!r}")
            elif key == "policy_options":
                policy = PolicySpec(name=policy.name, options=value)
            elif key == "traffic":
                if isinstance(value, TrafficSpec):
                    traffic = value
                elif isinstance(value, str):
                    traffic = replace(traffic, pattern=value, options={})
                else:
                    raise ValueError(f"cannot derive traffic from {value!r}")
            elif key == "sim":
                if not isinstance(value, SimSpec):
                    raise ValueError(f"sim must be a SimSpec, got {value!r}")
                sim = value
            elif key == "design":
                if value is not None and not isinstance(value, DesignSpec):
                    raise ValueError(f"design must be a DesignSpec or None, got {value!r}")
                design = value
            elif key == "scenario":
                if value is not None and not isinstance(value, ScenarioSpec):
                    raise ValueError(
                        f"scenario must be a ScenarioSpec or None, got {value!r}"
                    )
                scenario = value
            elif key in _FLAT_FIELDS:
                holder, attr = _FLAT_FIELDS[key]
                if holder == "traffic":
                    traffic = replace(traffic, **{attr: value})
                else:
                    sim = replace(sim, **{attr: value})
            else:
                raise ValueError(f"unknown ExperimentSpec field {key!r}")
        return ExperimentSpec(
            placement=placement,
            policy=policy,
            traffic=traffic,
            sim=sim,
            design=design,
            scenario=scenario,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON-native dictionary of this experiment.

        This is the serialization cache keys, derived seeds and ``--spec``
        files are built from; it round-trips losslessly through
        :meth:`from_dict`.  The ``design`` key appears only when an
        explicit :class:`DesignSpec` is set (and without its placement --
        the experiment's placement is authoritative), and the ``scenario``
        key only when a :class:`~repro.scenario.spec.ScenarioSpec` is
        attached, so pre-existing cache entries stay valid.
        """
        data = {
            "format": SPEC_FORMAT,
            "placement": self.placement.to_dict(),
            "policy": self.policy.to_dict(),
            "traffic": self.traffic.to_dict(),
            "sim": self.sim.to_dict(),
        }
        if self.design is not None:
            data["design"] = self.design.to_dict(include_placement=False)
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its canonical dictionary.

        Raises:
            ValueError: On unknown fields, a bad ``format`` tag, or any
                value failing sub-spec validation.
        """
        _reject_unknown_keys(
            data,
            ("format", "placement", "policy", "traffic", "sim", "design", "scenario"),
            "experiment spec",
        )
        version = data.get("format", SPEC_FORMAT)
        if version != SPEC_FORMAT:
            raise ValueError(
                f"unsupported experiment spec format {version!r} "
                f"(this version reads format {SPEC_FORMAT})"
            )
        design_data = data.get("design")
        scenario_data = data.get("scenario")
        return cls(
            placement=PlacementSpec.from_dict(data.get("placement") or {}),
            policy=PolicySpec.from_dict(data.get("policy") or {}),
            traffic=TrafficSpec.from_dict(data.get("traffic") or {}),
            sim=SimSpec.from_dict(data.get("sim") or {}),
            design=None if design_data is None else DesignSpec.from_dict(design_data),
            scenario=None
            if scenario_data is None
            else ScenarioSpec.from_dict(scenario_data),
        )

    def to_json(self) -> str:
        """Canonical JSON string (sorted keys, no spaces)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, blob: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(blob))
