"""Energy model for the PC-3DNoC (Fig. 6 / Table II energy metrics)."""

from repro.energy.model import EnergyModel, EnergyBreakdown

__all__ = ["EnergyModel", "EnergyBreakdown"]
