"""Per-event NoC energy model.

The paper reports energy per flit (nJ) from Access Noxim's built-in energy
model.  We substitute an event-count model: every router traversal, every
horizontal link traversal and every vertical (TSV) link traversal of a flit
costs a fixed energy.  The default constants are calibrated so that a
4-layer, 64-node network under moderate load lands in the same
tens-of-nanojoules-per-flit regime as Table II; what the reproduction relies
on is only *relative* energy (normalized to Elevator-First in Fig. 6/7d),
which an event-count model captures: longer (non-minimal) paths cost
proportionally more energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.stats import SimulationStats


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals split by component (Joules).

    Attributes:
        router_energy: Energy spent in router datapaths (buffers, crossbar,
            arbitration) over all flit traversals.
        horizontal_link_energy: Energy spent driving horizontal inter-router
            wires.
        vertical_link_energy: Energy spent driving TSV bundles.
    """

    router_energy: float
    horizontal_link_energy: float
    vertical_link_energy: float

    @property
    def total(self) -> float:
        """Total energy in Joules."""
        return self.router_energy + self.horizontal_link_energy + self.vertical_link_energy

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dictionary (for reports)."""
        return {
            "router": self.router_energy,
            "horizontal_link": self.horizontal_link_energy,
            "vertical_link": self.vertical_link_energy,
            "total": self.total,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Event-count energy model.

    Attributes:
        flit_width_bits: Flit width in bits (default 64, a common NoC width).
        router_energy_per_bit: Energy per bit for one router traversal (J).
        link_energy_per_bit: Energy per bit for one horizontal link hop (J).
        tsv_energy_per_bit: Energy per bit for one vertical TSV hop (J);
            TSVs are shorter and lower-capacitance than planar links, hence
            the smaller default.
    """

    flit_width_bits: int = 64
    router_energy_per_bit: float = 0.98e-12
    link_energy_per_bit: float = 0.60e-12
    tsv_energy_per_bit: float = 0.12e-12

    def __post_init__(self) -> None:
        if self.flit_width_bits <= 0:
            raise ValueError("flit_width_bits must be positive")
        for name in ("router_energy_per_bit", "link_energy_per_bit", "tsv_energy_per_bit"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ #
    # Per-event energies
    # ------------------------------------------------------------------ #
    @property
    def router_energy_per_flit(self) -> float:
        """Energy of one flit traversing one router (J)."""
        return self.router_energy_per_bit * self.flit_width_bits

    @property
    def link_energy_per_flit(self) -> float:
        """Energy of one flit crossing one horizontal link (J)."""
        return self.link_energy_per_bit * self.flit_width_bits

    @property
    def tsv_energy_per_flit(self) -> float:
        """Energy of one flit crossing one vertical TSV link (J)."""
        return self.tsv_energy_per_bit * self.flit_width_bits

    # ------------------------------------------------------------------ #
    # Aggregation over a simulation
    # ------------------------------------------------------------------ #
    def breakdown(self, stats: SimulationStats) -> EnergyBreakdown:
        """Energy breakdown for a finished simulation."""
        router_events = sum(stats.router_traversals.values())
        return EnergyBreakdown(
            router_energy=router_events * self.router_energy_per_flit,
            horizontal_link_energy=(
                stats.horizontal_link_traversals * self.link_energy_per_flit
            ),
            vertical_link_energy=(
                stats.vertical_link_traversals * self.tsv_energy_per_flit
            ),
        )

    def total_energy(self, stats: SimulationStats) -> float:
        """Total network energy (J) over the measurement window."""
        return self.breakdown(stats).total

    def phase_energy(self, phase) -> float:
        """Total energy (J) of one scenario measurement window.

        Accepts any object carrying scalar ``router_traversals`` /
        ``horizontal_link_traversals`` / ``vertical_link_traversals``
        counters (:class:`repro.sim.stats.PhaseStats`).
        """
        return (
            phase.router_traversals * self.router_energy_per_flit
            + phase.horizontal_link_traversals * self.link_energy_per_flit
            + phase.vertical_link_traversals * self.tsv_energy_per_flit
        )

    def energy_per_flit(self, stats: SimulationStats) -> float:
        """Mean energy per delivered flit (J); 0 when nothing was delivered."""
        if stats.flits_delivered == 0:
            return 0.0
        return self.total_energy(stats) / stats.flits_delivered

    def energy_per_flit_nj(self, stats: SimulationStats) -> float:
        """Mean energy per delivered flit in nanojoules (Table II units)."""
        return self.energy_per_flit(stats) * 1e9

    def path_energy(self, horizontal_hops: int, vertical_hops: int) -> float:
        """Energy of one flit following a path with the given hop counts.

        Counts one router traversal per hop plus the final ejection router,
        matching how the simulator counts router traversals.
        """
        if horizontal_hops < 0 or vertical_hops < 0:
            raise ValueError("hop counts must be non-negative")
        routers = horizontal_hops + vertical_hops + 1
        return (
            routers * self.router_energy_per_flit
            + horizontal_hops * self.link_energy_per_flit
            + vertical_hops * self.tsv_energy_per_flit
        )
