"""Topology substrate for partially connected 3D NoCs.

This subpackage models the physical structure of a partially connected 3D
network-on-chip (PC-3DNoC):

* :mod:`repro.topology.mesh3d` -- a regular ``X x Y x Z`` 3D mesh of routers,
  node/coordinate conversion, neighbourhood queries, and Manhattan distances.
* :mod:`repro.topology.elevators` -- elevator (vertical TSV link) placements,
  including the paper's ``PS1``--``PS3`` and ``PM`` patterns, a placement
  registry, and an average-distance-driven placement optimizer used to
  reproduce the "extracted to have an optimized average distance" placements.
"""

from repro.topology.mesh3d import Coordinate, Mesh3D
from repro.topology.elevators import (
    PLACEMENT_REGISTRY,
    Elevator,
    ElevatorPlacement,
    PlacementRegistry,
    available_placements,
    average_distance_of_placement,
    optimize_placement,
    register_placement,
    standard_placement,
)

__all__ = [
    "Coordinate",
    "Mesh3D",
    "Elevator",
    "ElevatorPlacement",
    "PlacementRegistry",
    "PLACEMENT_REGISTRY",
    "register_placement",
    "available_placements",
    "average_distance_of_placement",
    "optimize_placement",
    "standard_placement",
]
