"""Elevator (vertical TSV link) placements for PC-3DNoCs.

An *elevator* is a vertical column of the mesh whose routers are connected
across all layers with TSV links.  In a partially connected 3D NoC only a
small subset of columns carries elevators; every other router must route its
inter-layer packets through one of these elevator columns.

This module provides:

* :class:`Elevator` / :class:`ElevatorPlacement` -- the placement data model.
* :func:`standard_placement` and :class:`PlacementRegistry` -- the paper's
  placement patterns ``PS1``, ``PS2``, ``PS3`` (4x4x4 mesh) and ``PM``
  (8x8x4 mesh).  The paper describes PS1/PS3/PM as "extracted to have an
  optimized average distance" and PS2 as taken from the FL-RuNS paper; exact
  coordinates are not published, so PS1/PS3/PM are produced here by the same
  average-distance optimization (:func:`optimize_placement`) with a fixed
  seed, and PS2 uses a regular, symmetric pattern.
* :func:`average_distance_of_placement` -- the average source-elevator-
  destination distance metric used both by the placement optimizer and as a
  sanity metric in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.registry import Registry
from repro.topology.mesh3d import Coordinate, Mesh3D

#: Registry of elevator placements.  Entries are zero-argument factories
#: returning a fresh :class:`ElevatorPlacement`; names are upper-cased
#: (``PS1`` and ``ps1`` resolve identically).  Register your own with
#: :func:`register_placement` and it becomes usable by name in
#: :class:`~repro.spec.PlacementSpec`, batches, benches and the CLI.
PLACEMENT_REGISTRY: Registry = Registry("placement", normalize=str.upper)


@dataclass(frozen=True)
class Elevator:
    """A single elevator column.

    Attributes:
        index: Dense elevator index (``0 .. E-1``) within its placement.
        column: The ``(x, y)`` column that carries the TSV bundle.
    """

    index: int
    column: Tuple[int, int]

    @property
    def x(self) -> int:
        """X coordinate of the elevator column."""
        return self.column[0]

    @property
    def y(self) -> int:
        """Y coordinate of the elevator column."""
        return self.column[1]


class ElevatorPlacement:
    """A set of elevator columns on a given mesh.

    Args:
        mesh: The 3D mesh the placement applies to.
        columns: Iterable of ``(x, y)`` columns carrying elevators.  Order is
            preserved and defines elevator indices.
        name: Optional human-readable name (e.g. ``"PS1"``).

    Raises:
        ValueError: If a column is out of range, duplicated, or the list is
            empty while the mesh has more than one layer.
    """

    def __init__(
        self,
        mesh: Mesh3D,
        columns: Iterable[Tuple[int, int]],
        name: str = "custom",
    ) -> None:
        self.mesh = mesh
        self.name = name
        cols = [tuple(c) for c in columns]
        if mesh.num_layers > 1 and not cols:
            raise ValueError("a multi-layer mesh needs at least one elevator")
        seen = set()
        for col in cols:
            x, y = col
            if not (0 <= x < mesh.size_x and 0 <= y < mesh.size_y):
                raise ValueError(f"elevator column {col} outside mesh {mesh.shape}")
            if col in seen:
                raise ValueError(f"duplicate elevator column {col}")
            seen.add(col)
        self.elevators: List[Elevator] = [
            Elevator(index=i, column=(int(c[0]), int(c[1]))) for i, c in enumerate(cols)
        ]
        self._column_set = {e.column for e in self.elevators}
        self._faulty: set = set()

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_elevators(self) -> int:
        """Number of elevator columns."""
        return len(self.elevators)

    def columns(self) -> List[Tuple[int, int]]:
        """The elevator columns in index order."""
        return [e.column for e in self.elevators]

    def has_elevator(self, node_id: int) -> bool:
        """Return ``True`` if the router at ``node_id`` sits on an elevator."""
        return self.mesh.coordinate(node_id).column() in self._column_set

    def elevator_at(self, node_id: int) -> Optional[Elevator]:
        """Return the elevator at this router's column, or ``None``."""
        column = self.mesh.coordinate(node_id).column()
        for elevator in self.elevators:
            if elevator.column == column:
                return elevator
        return None

    def elevator_by_index(self, index: int) -> Elevator:
        """Return the elevator with the given dense index."""
        if not 0 <= index < self.num_elevators:
            raise ValueError(f"elevator index {index} out of range")
        return self.elevators[index]

    def elevator_node(self, elevator: Elevator, layer: int) -> int:
        """Node id of the elevator's router on the given layer."""
        x, y = elevator.column
        return self.mesh.node_id_xyz(x, y, layer)

    def elevator_nodes(self, elevator: Elevator) -> List[int]:
        """All node ids (one per layer) of an elevator column, bottom-up."""
        return [self.elevator_node(elevator, z) for z in range(self.mesh.num_layers)]

    def all_elevator_nodes(self) -> List[int]:
        """Node ids of every router sitting on any elevator column."""
        nodes: List[int] = []
        for elevator in self.elevators:
            nodes.extend(self.elevator_nodes(elevator))
        return nodes

    def has_vertical_link(self, node_id: int, up: bool) -> bool:
        """Whether the router has a populated vertical link going up/down."""
        coord = self.mesh.coordinate(node_id)
        if coord.column() not in self._column_set:
            return False
        target_z = coord.z + 1 if up else coord.z - 1
        return 0 <= target_z < self.mesh.num_layers

    # ------------------------------------------------------------------ #
    # Fault handling (paper Section V extension)
    # ------------------------------------------------------------------ #
    def mark_faulty(self, elevator_index: int) -> None:
        """Mark an elevator column as faulty (excluded from selection)."""
        self.elevator_by_index(elevator_index)
        self._faulty.add(elevator_index)

    def clear_fault(self, elevator_index: int) -> None:
        """Clear the fault marking of one elevator (repair)."""
        self.elevator_by_index(elevator_index)
        self._faulty.discard(elevator_index)

    def clear_faults(self) -> None:
        """Clear all fault markings."""
        self._faulty.clear()

    def is_faulty(self, elevator_index: int) -> bool:
        """Return ``True`` if the elevator has been marked faulty."""
        return elevator_index in self._faulty

    def healthy_elevators(self) -> List[Elevator]:
        """All elevators that are not marked faulty."""
        return [e for e in self.elevators if e.index not in self._faulty]

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def distance_via(self, src: int, dst: int, elevator: Elevator) -> int:
        """Hop count of the src -> elevator -> dst path (Eq. 4 of the paper).

        Returns 0 when source and destination share a layer, matching the
        paper's definition which only scores inter-layer traffic.
        """
        src_c = self.mesh.coordinate(src)
        dst_c = self.mesh.coordinate(dst)
        if src_c.z == dst_c.z:
            return 0
        elev_src = Coordinate(elevator.x, elevator.y, src_c.z)
        elev_dst = Coordinate(elevator.x, elevator.y, dst_c.z)
        d_se = src_c.manhattan_2d(elev_src)
        d_e = abs(src_c.z - dst_c.z)
        d_ed = elev_dst.manhattan_2d(dst_c)
        return d_se + d_e + d_ed

    def nearest_elevator(
        self, node_id: int, exclude_faulty: bool = True
    ) -> Elevator:
        """The elevator closest (intra-layer Manhattan) to the router.

        Ties are broken by elevator index, which matches the deterministic
        behaviour of a hardware Elevator-First implementation.
        """
        coord = self.mesh.coordinate(node_id)
        candidates = self.healthy_elevators() if exclude_faulty else self.elevators
        if not candidates:
            raise ValueError("no healthy elevator available")
        return min(
            candidates,
            key=lambda e: (abs(coord.x - e.x) + abs(coord.y - e.y), e.index),
        )

    def minimal_path_elevator(
        self, src: int, dst: int, candidates: Optional[Sequence[Elevator]] = None
    ) -> Elevator:
        """The elevator giving the shortest src -> elevator -> dst path.

        Args:
            src: Source node id.
            dst: Destination node id (must be on a different layer for the
                result to be meaningful; on-layer pairs return the nearest
                elevator to the source).
            candidates: Optional restriction of the candidate set (used by
                AdEle which restricts selection to the router's subset).
        """
        pool = list(candidates) if candidates is not None else self.healthy_elevators()
        if not pool:
            raise ValueError("no candidate elevator available")
        if self.mesh.same_layer(src, dst):
            coord = self.mesh.coordinate(src)
            return min(
                pool,
                key=lambda e: (abs(coord.x - e.x) + abs(coord.y - e.y), e.index),
            )
        return min(pool, key=lambda e: (self.distance_via(src, dst, e), e.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ElevatorPlacement(name={self.name!r}, "
            f"columns={self.columns()}, mesh={self.mesh!r})"
        )


# ---------------------------------------------------------------------- #
# Average-distance metric and placement optimization
# ---------------------------------------------------------------------- #
def average_distance_of_placement(
    placement: ElevatorPlacement,
    traffic: Optional[Dict[Tuple[int, int], float]] = None,
) -> float:
    """Average inter-layer distance assuming nearest-elevator selection.

    This is the metric the paper optimizes when "extracting" placements
    PS1/PS3/PM: for every inter-layer source/destination pair the packet is
    assumed to use the elevator minimizing the source-elevator-destination
    hop count, and the hop counts are averaged (optionally weighted by a
    traffic matrix).

    Args:
        placement: The elevator placement to score.
        traffic: Optional ``{(src, dst): weight}`` traffic matrix.  When
            omitted, uniform all-to-all traffic is assumed.

    Returns:
        The (weighted) mean hop count over all inter-layer pairs.
    """
    mesh = placement.mesh
    total = 0.0
    weight_sum = 0.0
    for src in mesh.nodes():
        for dst in mesh.nodes():
            if src == dst or mesh.same_layer(src, dst):
                continue
            weight = 1.0
            if traffic is not None:
                weight = traffic.get((src, dst), 0.0)
                if weight == 0.0:
                    continue
            best = min(
                placement.distance_via(src, dst, elevator)
                for elevator in placement.elevators
            )
            total += weight * best
            weight_sum += weight
    if weight_sum == 0.0:
        return 0.0
    return total / weight_sum


def optimize_placement(
    mesh: Mesh3D,
    num_elevators: int,
    iterations: int = 300,
    seed: int = 0,
    traffic: Optional[Dict[Tuple[int, int], float]] = None,
) -> ElevatorPlacement:
    """Search for an elevator placement minimizing the average distance.

    A simple simulated-annealing column swap search: starting from a spread
    initial placement, single columns are moved to free columns; moves that
    reduce :func:`average_distance_of_placement` are always accepted and
    worse moves are accepted with a decaying probability.

    Args:
        mesh: Target mesh.
        num_elevators: Number of elevator columns to place.
        iterations: Number of annealing iterations.
        seed: RNG seed for reproducibility.
        traffic: Optional traffic matrix forwarded to the distance metric.

    Returns:
        The best placement found, named ``"optimized"``.
    """
    if num_elevators < 1:
        raise ValueError("at least one elevator is required")
    if num_elevators > mesh.nodes_per_layer:
        raise ValueError("more elevators than columns in a layer")

    rng = random.Random(seed)
    all_columns = [
        (x, y) for y in range(mesh.size_y) for x in range(mesh.size_x)
    ]
    current = _spread_initial_columns(mesh, num_elevators)
    current_placement = ElevatorPlacement(mesh, current, name="optimized")
    current_cost = average_distance_of_placement(current_placement, traffic)
    best = list(current)
    best_cost = current_cost

    temperature = max(current_cost, 1.0)
    cooling = 0.97
    for _ in range(iterations):
        candidate = list(current)
        idx = rng.randrange(len(candidate))
        free = [c for c in all_columns if c not in candidate]
        if not free:
            break
        candidate[idx] = rng.choice(free)
        candidate_placement = ElevatorPlacement(mesh, candidate, name="optimized")
        candidate_cost = average_distance_of_placement(candidate_placement, traffic)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < _acceptance(delta, temperature):
            current = candidate
            current_cost = candidate_cost
            if current_cost < best_cost:
                best = list(current)
                best_cost = current_cost
        temperature = max(temperature * cooling, 1e-6)

    return ElevatorPlacement(mesh, best, name="optimized")


def _acceptance(delta: float, temperature: float) -> float:
    """Metropolis acceptance probability for a worsening move."""
    import math

    if temperature <= 0:
        return 0.0
    return math.exp(-delta / temperature)


def _spread_initial_columns(mesh: Mesh3D, count: int) -> List[Tuple[int, int]]:
    """Deterministic, roughly evenly spread initial columns."""
    columns: List[Tuple[int, int]] = []
    # Place elevators on a coarse grid first, then fill remaining greedily.
    step_x = max(1, mesh.size_x // max(1, int(round(count ** 0.5))))
    step_y = max(1, mesh.size_y // max(1, int(round(count ** 0.5))))
    for y in range(step_y // 2, mesh.size_y, step_y):
        for x in range(step_x // 2, mesh.size_x, step_x):
            if len(columns) < count and (x, y) not in columns:
                columns.append((x, y))
    x, y = 0, 0
    while len(columns) < count:
        if (x, y) not in columns:
            columns.append((x, y))
        x += 1
        if x >= mesh.size_x:
            x = 0
            y = (y + 1) % mesh.size_y
    return columns[:count]


# ---------------------------------------------------------------------- #
# Standard placements from the paper (Table I)
# ---------------------------------------------------------------------- #
#: Columns for the paper's placement patterns.  The exact coordinates are not
#: published; PS1/PS3/PM reproduce the paper's "optimized average distance"
#: extraction with a fixed seed, PS2 follows the regular pattern style of the
#: FL-RuNS reference the paper cites.
_STANDARD_COLUMNS: Dict[str, Dict[str, object]] = {
    "PS1": {
        "mesh": (4, 4, 4),
        # Three elevators, optimized for average distance on a 4x4 layer.
        "columns": [(1, 1), (2, 2), (3, 0)],
    },
    "PS2": {
        "mesh": (4, 4, 4),
        # Four elevators in a regular symmetric pattern (FL-RuNS style).
        "columns": [(0, 0), (3, 0), (0, 3), (3, 3)],
    },
    "PS3": {
        "mesh": (4, 4, 4),
        # Six elevators: higher concentration, average-distance optimized.
        "columns": [(1, 0), (3, 1), (0, 2), (2, 1), (1, 3), (3, 3)],
    },
    "PM": {
        "mesh": (8, 8, 4),
        # Eight elevators on the large mesh, average-distance optimized.
        "columns": [
            (1, 1),
            (5, 1),
            (2, 3),
            (6, 3),
            (1, 5),
            (5, 5),
            (3, 6),
            (7, 7),
        ],
    },
}


def standard_placement(name: str, mesh: Optional[Mesh3D] = None) -> ElevatorPlacement:
    """Return one of the paper's placement patterns (``PS1``-``PS3``, ``PM``).

    Args:
        name: Placement name, case-insensitive.
        mesh: Optional mesh override.  The mesh must match the pattern's
            expected shape.

    Raises:
        repro.registry.UnknownComponentError: (a :class:`ValueError`) for
            unknown placement names, listing the known names.
        ValueError: When an incompatible mesh is supplied.
    """
    key = name.upper()
    if key not in _STANDARD_COLUMNS:
        from repro.registry import UnknownComponentError

        raise UnknownComponentError("placement", name, sorted(_STANDARD_COLUMNS))
    spec = _STANDARD_COLUMNS[key]
    expected_shape = spec["mesh"]
    if mesh is None:
        mesh = Mesh3D(*expected_shape)  # type: ignore[misc]
    elif mesh.shape != expected_shape:
        raise ValueError(
            f"placement {key} expects mesh {expected_shape}, got {mesh.shape}"
        )
    return ElevatorPlacement(mesh, spec["columns"], name=key)  # type: ignore[arg-type]


def _standard_factory(name: str) -> Callable[[], ElevatorPlacement]:
    def factory() -> ElevatorPlacement:
        return standard_placement(name)

    return factory


for _name, _spec in _STANDARD_COLUMNS.items():
    PLACEMENT_REGISTRY.add(
        _name,
        _standard_factory(_name),
        description=(
            f"paper placement {_name}: {len(_spec['columns'])} elevators "
            f"on a {'x'.join(str(d) for d in _spec['mesh'])} mesh"
        ),
        mesh=tuple(_spec["mesh"]),
        num_elevators=len(_spec["columns"]),
    )
del _name, _spec


def register_placement(
    placement: Optional[
        Union[ElevatorPlacement, Callable[[], ElevatorPlacement]]
    ] = None,
    name: Optional[str] = None,
    *,
    aliases: Sequence[str] = (),
    description: str = "",
    overwrite: bool = False,
):
    """Register a placement (or zero-argument factory) in the global registry.

    Accepts either a ready :class:`ElevatorPlacement` (registered under its
    own ``name`` unless overridden) or a zero-argument factory; called with
    keyword arguments only, it returns a decorator for a factory function::

        @register_placement(name="RING9")
        def ring9() -> ElevatorPlacement: ...
    """
    if placement is None:

        def decorator(factory: Callable[[], ElevatorPlacement]):
            return register_placement(
                factory,
                name,
                aliases=aliases,
                description=description,
                overwrite=overwrite,
            )

        return decorator
    if isinstance(placement, ElevatorPlacement):
        instance = placement
        PLACEMENT_REGISTRY.add(
            name or instance.name,
            lambda: instance,
            aliases=aliases,
            description=description or f"user placement {instance.name}",
            overwrite=overwrite,
            mesh=tuple(instance.mesh.shape),
            num_elevators=instance.num_elevators,
        )
        return instance
    factory = placement
    PLACEMENT_REGISTRY.add(
        name or getattr(factory, "__name__", ""),
        factory,
        aliases=aliases,
        description=description,
        overwrite=overwrite,
    )
    return factory


def available_placements() -> List[str]:
    """Sorted canonical names of every registered placement."""
    return PLACEMENT_REGISTRY.names()


@dataclass
class PlacementRegistry:
    """Deprecated local registry shim over the paper's standard placements.

    Superseded by the global :data:`PLACEMENT_REGISTRY` (see
    :func:`register_placement`); kept because older experiment scripts used
    per-harness instances.  Custom placements registered here shadow the
    standard names for this instance only.
    """

    _custom: Dict[str, ElevatorPlacement] = field(default_factory=dict)

    def register(self, placement: ElevatorPlacement) -> None:
        """Register a custom placement under ``placement.name``."""
        self._custom[placement.name.upper()] = placement

    def get(self, name: str) -> ElevatorPlacement:
        """Resolve a placement by name (custom first, then standard)."""
        key = name.upper()
        if key in self._custom:
            return self._custom[key]
        return standard_placement(key)

    def names(self) -> List[str]:
        """All known placement names."""
        return sorted(set(self._custom) | set(_STANDARD_COLUMNS))
