"""Regular 3D mesh topology.

The mesh is addressed either by integer node ids (``0 .. N-1``) or by
:class:`Coordinate` triples ``(x, y, z)``.  The id layout is layer-major:
node id increases first along x, then y, then z, i.e.::

    node_id = x + y * size_x + z * size_x * size_y

The z coordinate is the *layer* (die) index.  Horizontal links connect
neighbours that differ by one in x or y within a layer; vertical links
(elevators / TSVs) exist only at a subset of ``(x, y)`` columns and are
described by :mod:`repro.topology.elevators`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True, order=True)
class Coordinate:
    """A router coordinate in the 3D mesh.

    Attributes:
        x: Position along the first horizontal dimension.
        y: Position along the second horizontal dimension.
        z: Layer (die) index; ``z = 0`` is the bottom layer.
    """

    x: int
    y: int
    z: int

    def manhattan_2d(self, other: "Coordinate") -> int:
        """Intra-layer Manhattan distance (ignores the layer difference)."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def manhattan_3d(self, other: "Coordinate") -> int:
        """Full 3D Manhattan distance, counting one hop per layer crossed."""
        return self.manhattan_2d(other) + abs(self.z - other.z)

    def same_layer(self, other: "Coordinate") -> bool:
        """Return ``True`` when both coordinates are on the same layer."""
        return self.z == other.z

    def column(self) -> Tuple[int, int]:
        """The ``(x, y)`` column of this coordinate, ignoring the layer."""
        return (self.x, self.y)

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the plain ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)


class Mesh3D:
    """A ``size_x x size_y x size_z`` 3D mesh of routers.

    The mesh knows nothing about which vertical links are populated; it only
    provides geometry: id/coordinate conversion, neighbour enumeration and
    distance computations.  Partial vertical connectivity is layered on top
    by :class:`repro.topology.elevators.ElevatorPlacement`.

    Args:
        size_x: Number of routers along x (must be >= 1).
        size_y: Number of routers along y (must be >= 1).
        size_z: Number of layers (must be >= 1).
    """

    def __init__(self, size_x: int, size_y: int, size_z: int) -> None:
        if size_x < 1 or size_y < 1 or size_z < 1:
            raise ValueError(
                "mesh dimensions must be positive, got "
                f"({size_x}, {size_y}, {size_z})"
            )
        self.size_x = size_x
        self.size_y = size_y
        self.size_z = size_z

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Total number of routers in the mesh."""
        return self.size_x * self.size_y * self.size_z

    @property
    def num_layers(self) -> int:
        """Number of layers (dies)."""
        return self.size_z

    @property
    def nodes_per_layer(self) -> int:
        """Number of routers in a single layer."""
        return self.size_x * self.size_y

    @property
    def shape(self) -> Tuple[int, int, int]:
        """The ``(size_x, size_y, size_z)`` shape tuple."""
        return (self.size_x, self.size_y, self.size_z)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Mesh3D({self.size_x}x{self.size_y}x{self.size_z})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mesh3D):
            return NotImplemented
        return self.shape == other.shape

    def __hash__(self) -> int:
        return hash(self.shape)

    # ------------------------------------------------------------------ #
    # Id / coordinate conversion
    # ------------------------------------------------------------------ #
    def coordinate(self, node_id: int) -> Coordinate:
        """Convert a node id to its :class:`Coordinate`."""
        self._check_node(node_id)
        per_layer = self.nodes_per_layer
        z, rest = divmod(node_id, per_layer)
        y, x = divmod(rest, self.size_x)
        return Coordinate(x, y, z)

    def node_id(self, coord: Coordinate) -> int:
        """Convert a :class:`Coordinate` to its node id."""
        self._check_coordinate(coord)
        return coord.x + coord.y * self.size_x + coord.z * self.nodes_per_layer

    def node_id_xyz(self, x: int, y: int, z: int) -> int:
        """Convenience wrapper around :meth:`node_id`."""
        return self.node_id(Coordinate(x, y, z))

    def contains(self, coord: Coordinate) -> bool:
        """Return ``True`` when ``coord`` lies inside the mesh."""
        return (
            0 <= coord.x < self.size_x
            and 0 <= coord.y < self.size_y
            and 0 <= coord.z < self.size_z
        )

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(
                f"node id {node_id} out of range for mesh with "
                f"{self.num_nodes} nodes"
            )

    def _check_coordinate(self, coord: Coordinate) -> None:
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside mesh {self.shape}")

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(range(self.num_nodes))

    def coordinates(self) -> Iterator[Coordinate]:
        """Iterate over all coordinates in node-id order."""
        for node in self.nodes():
            yield self.coordinate(node)

    def layer_nodes(self, layer: int) -> List[int]:
        """Return all node ids on the given layer."""
        if not 0 <= layer < self.size_z:
            raise ValueError(f"layer {layer} out of range")
        start = layer * self.nodes_per_layer
        return list(range(start, start + self.nodes_per_layer))

    def column_nodes(self, x: int, y: int) -> List[int]:
        """Return node ids of the vertical column at ``(x, y)``, bottom-up."""
        if not (0 <= x < self.size_x and 0 <= y < self.size_y):
            raise ValueError(f"column ({x}, {y}) out of range")
        return [self.node_id_xyz(x, y, z) for z in range(self.size_z)]

    # ------------------------------------------------------------------ #
    # Neighbourhood
    # ------------------------------------------------------------------ #
    def horizontal_neighbors(self, node_id: int) -> List[int]:
        """Intra-layer (x/y) neighbours of a node."""
        coord = self.coordinate(node_id)
        neighbors: List[int] = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            candidate = Coordinate(coord.x + dx, coord.y + dy, coord.z)
            if self.contains(candidate):
                neighbors.append(self.node_id(candidate))
        return neighbors

    def vertical_neighbors(self, node_id: int) -> List[int]:
        """Potential vertical neighbours (up/down), ignoring partial links."""
        coord = self.coordinate(node_id)
        neighbors: List[int] = []
        for dz in (1, -1):
            candidate = Coordinate(coord.x, coord.y, coord.z + dz)
            if self.contains(candidate):
                neighbors.append(self.node_id(candidate))
        return neighbors

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def manhattan_2d(self, a: int, b: int) -> int:
        """Intra-layer Manhattan distance between two node ids."""
        return self.coordinate(a).manhattan_2d(self.coordinate(b))

    def manhattan_3d(self, a: int, b: int) -> int:
        """Full 3D Manhattan distance between two node ids."""
        return self.coordinate(a).manhattan_3d(self.coordinate(b))

    def same_layer(self, a: int, b: int) -> bool:
        """Return ``True`` when both node ids are on the same layer.

        Called once per packet by every elevator-selection policy, so it
        compares layer indices directly instead of materializing two
        :class:`Coordinate` tuples.
        """
        self._check_node(a)
        self._check_node(b)
        per_layer = self.nodes_per_layer
        return a // per_layer == b // per_layer
