"""repro: a reproduction of AdEle (DAC 2021).

AdEle is an adaptive congestion- and energy-aware elevator-selection scheme
for partially connected 3D networks-on-chip.  This package reimplements the
complete system described in the paper:

* the PC-3DNoC substrate -- 3D mesh topology, elevator placements, a
  cycle-based flit-level wormhole simulator, traffic generators, energy and
  area models (:mod:`repro.topology`, :mod:`repro.sim`, :mod:`repro.traffic`,
  :mod:`repro.energy`, :mod:`repro.area`);
* the baselines -- Elevator-First and CDA elevator selection
  (:mod:`repro.routing`);
* AdEle itself -- the offline AMOSA elevator-subset optimization
  (:mod:`repro.core`) and the online adaptive selection policy
  (:mod:`repro.routing.adele`);
* the experiment harness used to regenerate the paper's tables and figures
  (:mod:`repro.analysis`, plus the ``benchmarks/`` directory of the source
  repository);
* the parallel experiment engine -- batched, deterministically seeded,
  disk-cached execution of whole experiment grids, also exposed as the
  ``python -m repro`` CLI (:mod:`repro.exec`);
* event-driven dynamic scenarios -- typed timelines of traffic phases,
  injection-rate ramps and runtime elevator faults/repairs with per-phase
  measurement windows (:mod:`repro.scenario`, paper Section V);
* the public API -- typed :class:`~repro.spec.ExperimentSpec` experiment
  descriptions over pluggable component registries (:mod:`repro.api`,
  :mod:`repro.spec`, :mod:`repro.registry`).

Quickstart::

    from repro import api

    spec = api.ExperimentSpec().with_(placement="PS1", policy="adele")
    result = api.run(spec)
    print(result.average_latency)
"""

from repro.topology import (
    Coordinate,
    ElevatorPlacement,
    Mesh3D,
    optimize_placement,
    standard_placement,
)
from repro.traffic import (
    APPLICATION_NAMES,
    ApplicationTraffic,
    ShuffleTraffic,
    TrafficTrace,
    UniformTraffic,
    make_application_traffic,
    make_pattern,
)
from repro.sim import Network, SimulationResult, Simulator
from repro.energy import EnergyModel
from repro.area import AreaModel
from repro.routing import (
    AdElePolicy,
    AdEleRoundRobinPolicy,
    CDAPolicy,
    ElevatorFirstPolicy,
    MinimalPathPolicy,
    make_policy,
)
from repro.core import (
    AdEleDesign,
    AmosaConfig,
    AmosaOptimizer,
    OfflineConfig,
    optimize_elevator_subsets,
)
from repro.analysis import (
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    elevator_load_distribution,
    latency_sweep,
    run_experiment,
    saturation_rate,
)
from repro.exec import (
    DiskDesignCache,
    ExperimentBatch,
    ExperimentOutcome,
    ResultCache,
    config_key,
    derive_seed,
    run_batch,
)
from repro.registry import Registry, RegistryEntry, UnknownComponentError
from repro.spec import (
    ExperimentSpec,
    PlacementSpec,
    PolicySpec,
    SimSpec,
    TrafficSpec,
)
from repro import api

__version__ = "1.4.0"

__all__ = [
    "Coordinate",
    "Mesh3D",
    "ElevatorPlacement",
    "standard_placement",
    "optimize_placement",
    "UniformTraffic",
    "ShuffleTraffic",
    "ApplicationTraffic",
    "TrafficTrace",
    "APPLICATION_NAMES",
    "make_pattern",
    "make_application_traffic",
    "Network",
    "Simulator",
    "SimulationResult",
    "EnergyModel",
    "AreaModel",
    "ElevatorFirstPolicy",
    "CDAPolicy",
    "MinimalPathPolicy",
    "AdElePolicy",
    "AdEleRoundRobinPolicy",
    "make_policy",
    "AdEleDesign",
    "OfflineConfig",
    "AmosaConfig",
    "AmosaOptimizer",
    "optimize_elevator_subsets",
    "ExperimentConfig",
    "ExperimentSpec",
    "PlacementSpec",
    "PolicySpec",
    "TrafficSpec",
    "SimSpec",
    "Registry",
    "RegistryEntry",
    "UnknownComponentError",
    "api",
    "run_experiment",
    "latency_sweep",
    "saturation_rate",
    "elevator_load_distribution",
    "adele_design_for",
    "DesignCache",
    "ExperimentBatch",
    "ExperimentOutcome",
    "ResultCache",
    "DiskDesignCache",
    "run_batch",
    "config_key",
    "derive_seed",
    "__version__",
]
