"""Packet sources: when and what to inject into the network.

The simulator polls a :class:`PacketSource` once per node per cycle; the
source decides whether that node injects a new packet this cycle and, if so,
returns a :class:`PacketRequest` describing the packet.  Two modes are
supported:

* *Pattern mode* (Table I of the paper): a Bernoulli process with a
  configurable flit injection rate per node per cycle and a random packet
  length between 10 and 30 flits, destinations drawn from a
  :class:`~repro.traffic.patterns.TrafficPattern`.
* *Trace mode*: replay of a :class:`~repro.traffic.trace.TrafficTrace`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.traffic.patterns import TrafficPattern
from repro.traffic.trace import TrafficTrace


@dataclass(frozen=True)
class PacketRequest:
    """A request to inject one packet at a source node.

    Attributes:
        source: Source node id.
        destination: Destination node id.
        length: Packet length in flits.
    """

    source: int
    destination: int
    length: int


class PacketSource:
    """Base class: produces injection requests for every node each cycle."""

    def requests(self, cycle: int) -> List[PacketRequest]:
        """Packets that become ready for injection at the given cycle."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset the source to its initial state (for reuse across runs)."""
        raise NotImplementedError


class BernoulliPacketSource(PacketSource):
    """Open-loop Bernoulli injection driven by a traffic pattern.

    Args:
        pattern: Destination-selection pattern.
        injection_rate: *Packet* injection rate per node per cycle -- the
            probability that a node creates a new packet in a given cycle.
            This matches the x-axis of the paper's Fig. 4 ("Packet injection
            rate", 0 to ~0.012 depending on the configuration).
        min_packet_length: Minimum packet length in flits (Table I: 10).
        max_packet_length: Maximum packet length in flits (Table I: 30).
        seed: RNG seed for injection timing and packet lengths.
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        injection_rate: float,
        min_packet_length: int = 10,
        max_packet_length: int = 30,
        seed: int = 0,
    ) -> None:
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        if min_packet_length < 1 or max_packet_length < min_packet_length:
            raise ValueError("invalid packet length bounds")
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.min_packet_length = min_packet_length
        self.max_packet_length = max_packet_length
        self._seed = seed
        self.rng = random.Random(seed)
        self.packet_probability = injection_rate

    def requests(self, cycle: int) -> List[PacketRequest]:
        requests: List[PacketRequest] = []
        for source in self.pattern.mesh.nodes():
            if self.rng.random() < self.packet_probability:
                destination = self.pattern.destination(source)
                length = self.rng.randint(
                    self.min_packet_length, self.max_packet_length
                )
                requests.append(
                    PacketRequest(source=source, destination=destination, length=length)
                )
        return requests

    def reset(self) -> None:
        self.rng = random.Random(self._seed)
        self.pattern.reseed(self._seed)


class TracePacketSource(PacketSource):
    """Replay of a recorded :class:`TrafficTrace`.

    Args:
        trace: The trace to replay.
        repeat: When ``True``, the trace wraps around after its last event so
            long simulations keep receiving traffic.
    """

    def __init__(self, trace: TrafficTrace, repeat: bool = False) -> None:
        self.trace = trace
        self.repeat = repeat
        self._by_cycle: Dict[int, List[PacketRequest]] = {}
        for event in trace:
            self._by_cycle.setdefault(event.cycle, []).append(
                PacketRequest(
                    source=event.source,
                    destination=event.destination,
                    length=event.length,
                )
            )
        self._period = trace.duration + 1 if len(trace) else 0

    def requests(self, cycle: int) -> List[PacketRequest]:
        if self._period == 0:
            return []
        lookup = cycle % self._period if self.repeat else cycle
        return list(self._by_cycle.get(lookup, []))

    def reset(self) -> None:
        # Trace playback is stateless; nothing to do.
        return None


class CompositePacketSource(PacketSource):
    """Combine several packet sources (e.g. background plus hotspot load)."""

    def __init__(self, sources: List[PacketSource]) -> None:
        if not sources:
            raise ValueError("at least one source is required")
        self.sources = list(sources)

    def requests(self, cycle: int) -> List[PacketRequest]:
        requests: List[PacketRequest] = []
        for source in self.sources:
            requests.extend(source.requests(cycle))
        return requests

    def reset(self) -> None:
        for source in self.sources:
            source.reset()


def make_packet_source(
    pattern: Optional[TrafficPattern] = None,
    injection_rate: float = 0.0,
    trace: Optional[TrafficTrace] = None,
    min_packet_length: int = 10,
    max_packet_length: int = 30,
    seed: int = 0,
) -> PacketSource:
    """Build a packet source from either a pattern or a trace.

    Exactly one of ``pattern`` or ``trace`` must be supplied.
    """
    if (pattern is None) == (trace is None):
        raise ValueError("supply exactly one of pattern or trace")
    if trace is not None:
        return TracePacketSource(trace)
    assert pattern is not None
    return BernoulliPacketSource(
        pattern,
        injection_rate,
        min_packet_length=min_packet_length,
        max_packet_length=max_packet_length,
        seed=seed,
    )
