"""Traffic generation substrate.

Traffic in this reproduction is described at two levels:

* A :class:`~repro.traffic.patterns.TrafficPattern` describes *where* packets
  go: given a source node it yields destination nodes, and it can export an
  expected traffic matrix ``f_ij`` used by AdEle's offline optimization
  (Eq. 1 of the paper).
* A :class:`~repro.traffic.generator.PacketSource` describes *when* packets
  are injected (Bernoulli flit-injection process, packet length 10-30 flits
  as in Table I) and drives the simulator.

Real-application traffic (SPLASH-2 / PARSEC, gem5-extracted in the paper) is
substituted by :mod:`repro.traffic.applications`: synthetic application
communication graphs with the load levels and spatial non-uniformity
described in Section IV-C.  Recorded traces can be replayed through
:mod:`repro.traffic.trace`.
"""

from repro.traffic.patterns import (
    PATTERN_REGISTRY,
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    available_patterns,
    make_pattern,
    register_pattern,
)
from repro.traffic.applications import (
    APPLICATION_NAMES,
    APPLICATION_REGISTRY,
    ApplicationSpec,
    ApplicationTraffic,
    application_spec,
    available_applications,
    make_application_traffic,
    register_application,
)
from repro.traffic.trace import TraceEvent, TrafficTrace
from repro.traffic.generator import PacketRequest, PacketSource

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "ShuffleTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "HotspotTraffic",
    "NeighborTraffic",
    "PATTERN_REGISTRY",
    "register_pattern",
    "available_patterns",
    "make_pattern",
    "APPLICATION_NAMES",
    "APPLICATION_REGISTRY",
    "register_application",
    "available_applications",
    "ApplicationSpec",
    "ApplicationTraffic",
    "application_spec",
    "make_application_traffic",
    "TraceEvent",
    "TrafficTrace",
    "PacketRequest",
    "PacketSource",
]
