"""Traffic generation substrate.

Traffic in this reproduction is described at two levels:

* A :class:`~repro.traffic.patterns.TrafficPattern` describes *where* packets
  go: given a source node it yields destination nodes, and it can export an
  expected traffic matrix ``f_ij`` used by AdEle's offline optimization
  (Eq. 1 of the paper).
* A :class:`~repro.traffic.generator.PacketSource` describes *when* packets
  are injected (Bernoulli flit-injection process, packet length 10-30 flits
  as in Table I) and drives the simulator.

Real-application traffic (SPLASH-2 / PARSEC, gem5-extracted in the paper) is
substituted by :mod:`repro.traffic.applications`: synthetic application
communication graphs with the load levels and spatial non-uniformity
described in Section IV-C.  Recorded traces can be replayed through
:mod:`repro.traffic.trace`.
"""

from repro.traffic.patterns import (
    PATTERN_REGISTRY,
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    available_patterns,
    make_pattern,
    register_pattern,
)
from repro.traffic.applications import (
    APPLICATION_NAMES,
    APPLICATION_REGISTRY,
    ApplicationSpec,
    ApplicationTraffic,
    application_spec,
    available_applications,
    make_application_traffic,
    register_application,
)
from repro.traffic.trace import TraceEvent, TrafficTrace
from repro.traffic.generator import PacketRequest, PacketSource


def build_traffic_pattern(name, mesh, seed=0, options=None) -> TrafficPattern:
    """Instantiate a registered pattern *or* application model by name.

    The one name-resolution rule shared by :meth:`repro.spec.TrafficSpec.build`
    and scenario traffic-phase events: application models win when a name is
    registered in both registries, applications accept no options, and
    unknown names raise the registry's did-you-mean ``ValueError`` over the
    union of both namespaces.

    Raises:
        repro.registry.UnknownComponentError: When the name is neither a
            registered pattern nor a registered application.
        ValueError: When options are passed with an application name.
    """
    from repro.registry import UnknownComponentError

    options = dict(options or {})
    if name in APPLICATION_REGISTRY:
        if options:
            raise ValueError(
                f"application traffic {name!r} accepts no options, "
                f"got {sorted(options)}"
            )
        return make_application_traffic(name, mesh, seed=seed)
    if name in PATTERN_REGISTRY:
        return PATTERN_REGISTRY.create(name, mesh, seed=seed, **options)
    raise UnknownComponentError(
        "traffic pattern or application",
        name,
        sorted(set(PATTERN_REGISTRY.names()) | set(APPLICATION_REGISTRY.names())),
    )


__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "ShuffleTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "HotspotTraffic",
    "NeighborTraffic",
    "PATTERN_REGISTRY",
    "register_pattern",
    "available_patterns",
    "make_pattern",
    "APPLICATION_NAMES",
    "APPLICATION_REGISTRY",
    "register_application",
    "available_applications",
    "ApplicationSpec",
    "ApplicationTraffic",
    "application_spec",
    "make_application_traffic",
    "TraceEvent",
    "TrafficTrace",
    "PacketRequest",
    "PacketSource",
    "build_traffic_pattern",
]
