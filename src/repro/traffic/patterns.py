"""Synthetic traffic patterns (uniform, shuffle, transpose, ...).

A traffic pattern answers two questions:

* Online: "node ``i`` wants to inject a packet -- where does it go?"
  (:meth:`TrafficPattern.destination`).
* Offline: "what is the expected traffic frequency ``f_ij`` between every
  pair of nodes?" (:meth:`TrafficPattern.traffic_matrix`), which feeds the
  elevator-utilization objective of AdEle's offline optimization.

The paper's Table I uses *uniform* and *shuffle* synthetic patterns plus
real-application traces; additional classic NoC patterns (transpose,
bit-complement, hotspot, nearest-neighbour) are provided for extension
studies and tests.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.registry import Registry
from repro.topology.mesh3d import Mesh3D

TrafficMatrix = Dict[Tuple[int, int], float]

#: Registry of synthetic traffic patterns.  Entries are classes (or
#: factories) called as ``factory(mesh, seed=..., **options)``.  Register
#: your own with :func:`register_pattern` and it becomes usable by name in
#: :class:`~repro.spec.TrafficSpec`, batches, benches and the CLI.
PATTERN_REGISTRY: Registry = Registry("traffic pattern")

#: Decorator registering a traffic-pattern class by name::
#:
#:     @register_pattern("tornado", description="...")
#:     class TornadoTraffic(TrafficPattern): ...
register_pattern = PATTERN_REGISTRY.register


class TrafficPattern:
    """Base class for destination-selection traffic patterns.

    Args:
        mesh: The mesh the pattern runs on.
        seed: Seed for the pattern's private RNG; simulations are
            reproducible for a fixed seed.
    """

    name = "base"

    def __init__(self, mesh: Mesh3D, seed: int = 0) -> None:
        self.mesh = mesh
        self.rng = random.Random(seed)

    def destination(self, source: int) -> int:
        """Pick a destination node for a packet injected at ``source``."""
        raise NotImplementedError

    def traffic_matrix(self) -> TrafficMatrix:
        """Expected pairwise traffic frequencies ``{(src, dst): f_ij}``.

        Frequencies are normalized so that each source's outgoing
        frequencies sum to 1 (sources that never inject contribute nothing).
        """
        raise NotImplementedError

    def reseed(self, seed: int) -> None:
        """Reset the pattern's RNG (used between independent runs)."""
        self.rng = random.Random(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(mesh={self.mesh!r})"


@register_pattern(
    "uniform", description="uniform random: every other node equally likely"
)
class UniformTraffic(TrafficPattern):
    """Uniform random traffic: every other node is an equally likely target."""

    name = "uniform"

    def destination(self, source: int) -> int:
        dst = self.rng.randrange(self.mesh.num_nodes - 1)
        if dst >= source:
            dst += 1
        return dst

    def traffic_matrix(self) -> TrafficMatrix:
        n = self.mesh.num_nodes
        weight = 1.0 / (n - 1)
        return {
            (src, dst): weight
            for src in range(n)
            for dst in range(n)
            if src != dst
        }


class _DeterministicPattern(TrafficPattern):
    """Base for patterns with a single destination per source."""

    def _target(self, source: int) -> int:
        raise NotImplementedError

    def destination(self, source: int) -> int:
        target = self._target(source)
        if target == source:
            # Self-directed pairs are remapped to a uniform random target so
            # that every node still participates in the workload.
            return UniformTraffic.destination(self, source)
        return target

    def traffic_matrix(self) -> TrafficMatrix:
        n = self.mesh.num_nodes
        matrix: TrafficMatrix = {}
        uniform_weight = 1.0 / (n - 1)
        for src in range(n):
            target = self._target(src)
            if target == src:
                for dst in range(n):
                    if dst != src:
                        matrix[(src, dst)] = matrix.get((src, dst), 0.0) + uniform_weight
            else:
                matrix[(src, target)] = matrix.get((src, target), 0.0) + 1.0
        return matrix


@register_pattern(
    "shuffle", description="perfect shuffle: destination id is source id rotated left"
)
class ShuffleTraffic(_DeterministicPattern):
    """Perfect-shuffle traffic: destination id is the source id rotated left.

    The rotation is performed over ``ceil(log2(N))`` bits and re-drawn
    uniformly when it falls outside the node range (non-power-of-two
    meshes), following common NoC simulator practice.
    """

    name = "shuffle"

    def __init__(self, mesh: Mesh3D, seed: int = 0) -> None:
        super().__init__(mesh, seed)
        self._bits = max(1, (mesh.num_nodes - 1).bit_length())

    def _target(self, source: int) -> int:
        rotated = ((source << 1) | (source >> (self._bits - 1))) & (
            (1 << self._bits) - 1
        )
        if rotated >= self.mesh.num_nodes:
            return source
        return rotated


@register_pattern(
    "bit_complement",
    aliases=("bitcomplement", "complement"),
    description="destination is the bitwise complement of the source",
)
class BitComplementTraffic(_DeterministicPattern):
    """Bit-complement traffic: destination is the bitwise complement of source."""

    name = "bit_complement"

    def __init__(self, mesh: Mesh3D, seed: int = 0) -> None:
        super().__init__(mesh, seed)
        self._bits = max(1, (mesh.num_nodes - 1).bit_length())

    def _target(self, source: int) -> int:
        target = (~source) & ((1 << self._bits) - 1)
        if target >= self.mesh.num_nodes:
            return source
        return target


@register_pattern(
    "transpose", description="(x, y, z) sends to (y, x, z_max - z)"
)
class TransposeTraffic(_DeterministicPattern):
    """Transpose traffic: ``(x, y, z)`` sends to ``(y, x, z_max - z)``.

    The layer flip makes the pattern exercise inter-layer links even on
    meshes whose horizontal footprint is square, which is the interesting
    case for elevator selection.
    """

    name = "transpose"

    def _target(self, source: int) -> int:
        coord = self.mesh.coordinate(source)
        if coord.x >= self.mesh.size_y or coord.y >= self.mesh.size_x:
            return source
        flipped_z = self.mesh.size_z - 1 - coord.z
        return self.mesh.node_id_xyz(coord.y, coord.x, flipped_z)


@register_pattern(
    "hotspot", description="a fraction of packets target a few hotspot nodes"
)
class HotspotTraffic(TrafficPattern):
    """Hotspot traffic: a fraction of packets target a few hotspot nodes.

    Args:
        mesh: Target mesh.
        hotspots: Node ids of the hotspots.  Defaults to the mesh centre
            router of every layer.
        hotspot_fraction: Probability that a packet targets a hotspot; the
            remaining packets are uniform random.
        seed: RNG seed.
    """

    name = "hotspot"

    def __init__(
        self,
        mesh: Mesh3D,
        hotspots: Optional[List[int]] = None,
        hotspot_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(mesh, seed)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be within [0, 1]")
        if hotspots is None:
            hotspots = [
                mesh.node_id_xyz(mesh.size_x // 2, mesh.size_y // 2, z)
                for z in range(mesh.size_z)
            ]
        if not hotspots:
            raise ValueError("at least one hotspot is required")
        for node in hotspots:
            if not 0 <= node < mesh.num_nodes:
                raise ValueError(f"hotspot {node} out of range")
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformTraffic(mesh, seed=seed + 1)

    def destination(self, source: int) -> int:
        if self.rng.random() < self.hotspot_fraction:
            candidates = [h for h in self.hotspots if h != source]
            if candidates:
                return self.rng.choice(candidates)
        return self._uniform.destination(source)

    def traffic_matrix(self) -> TrafficMatrix:
        n = self.mesh.num_nodes
        matrix: TrafficMatrix = {}
        for src in range(n):
            hot_candidates = [h for h in self.hotspots if h != src]
            hot_share = self.hotspot_fraction if hot_candidates else 0.0
            uniform_share = 1.0 - hot_share
            per_hot = hot_share / len(hot_candidates) if hot_candidates else 0.0
            per_uniform = uniform_share / (n - 1)
            for dst in range(n):
                if dst == src:
                    continue
                weight = per_uniform
                if dst in hot_candidates:
                    weight += per_hot
                if weight > 0.0:
                    matrix[(src, dst)] = weight
        return matrix


@register_pattern(
    "neighbor",
    aliases=("neighbour",),
    description="nearest-neighbour dominated with occasional long-range packets",
)
class NeighborTraffic(TrafficPattern):
    """Nearest-neighbour dominated traffic with occasional long-range packets.

    Args:
        mesh: Target mesh.
        local_fraction: Probability of targeting a direct neighbour
            (horizontal or vertical); remaining packets are uniform.
        seed: RNG seed.
    """

    name = "neighbor"

    def __init__(self, mesh: Mesh3D, local_fraction: float = 0.7, seed: int = 0) -> None:
        super().__init__(mesh, seed)
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError("local_fraction must be within [0, 1]")
        self.local_fraction = local_fraction
        self._uniform = UniformTraffic(mesh, seed=seed + 1)

    def _neighbors(self, source: int) -> List[int]:
        return self.mesh.horizontal_neighbors(source) + self.mesh.vertical_neighbors(
            source
        )

    def destination(self, source: int) -> int:
        neighbors = self._neighbors(source)
        if neighbors and self.rng.random() < self.local_fraction:
            return self.rng.choice(neighbors)
        return self._uniform.destination(source)

    def traffic_matrix(self) -> TrafficMatrix:
        n = self.mesh.num_nodes
        matrix: TrafficMatrix = {}
        for src in range(n):
            neighbors = self._neighbors(src)
            local_share = self.local_fraction if neighbors else 0.0
            per_neighbor = local_share / len(neighbors) if neighbors else 0.0
            per_uniform = (1.0 - local_share) / (n - 1)
            for dst in range(n):
                if dst == src:
                    continue
                weight = per_uniform
                if dst in neighbors:
                    weight += per_neighbor
                matrix[(src, dst)] = weight
        return matrix


def available_patterns() -> List[str]:
    """Sorted canonical names of every registered traffic pattern."""
    return PATTERN_REGISTRY.names()


def make_pattern(name: str, mesh: Mesh3D, seed: int = 0, **kwargs) -> TrafficPattern:
    """Create a traffic pattern by registered name.

    The built-in names are ``uniform``, ``shuffle``, ``transpose``,
    ``bit_complement``, ``hotspot`` and ``neighbor``; anything registered
    through :func:`register_pattern` resolves the same way.

    Args:
        name: Registered pattern name or alias (case-insensitive).
        mesh: Mesh the pattern runs on.
        seed: RNG seed.
        **kwargs: Pattern-specific options (e.g. ``hotspot_fraction``).

    Raises:
        repro.registry.UnknownComponentError: (a :class:`ValueError`) for
            unknown pattern names, listing the registered names.
    """
    return PATTERN_REGISTRY.create(name, mesh, seed=seed, **kwargs)
