"""Synthetic real-application traffic (SPLASH-2 / PARSEC substitution).

The paper extracts traces of six SPLASH-2/PARSEC benchmarks (canneal, fft,
fluidanimate, lu, radix, water) with gem5 and replays them in the NoC
simulator.  gem5 and the original traces are not available offline, so this
module substitutes each benchmark with a synthetic application model that
preserves the properties the paper's evaluation actually relies on
(Section IV-C):

* the *load level*: canneal, fft, radix and water are "applications with
  higher traffic loads", fluidanimate and lu are "applications with lower
  traffic loads" whose latency stays near zero-load latency;
* the *spatial structure*: each benchmark communicates over a sparse,
  non-uniform communication graph (not uniform random), which is what makes
  elevator congestion benchmark-dependent.

Each :class:`ApplicationSpec` carries a relative load factor and parameters
of a deterministic communication-graph generator; :class:`ApplicationTraffic`
turns the graph into a :class:`~repro.traffic.patterns.TrafficPattern` that
can drive the simulator and export a traffic matrix for offline optimization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.registry import Registry
from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import TrafficMatrix, TrafficPattern

#: Registry of application traffic models.  Entries are
#: :class:`ApplicationSpec` instances; register your own with
#: :func:`register_application` and it becomes usable by name (like any
#: synthetic pattern) in :class:`~repro.spec.TrafficSpec`, benches and the
#: CLI.
APPLICATION_REGISTRY: Registry = Registry("application")


@dataclass(frozen=True)
class ApplicationSpec:
    """Parameters of a synthetic application communication model.

    Attributes:
        name: Benchmark name (e.g. ``"fft"``).
        load_factor: Relative injection-rate multiplier; ``1.0`` corresponds
            to the heaviest benchmark in the suite.
        partners_per_node: Mean number of destination partners per node in
            the communication graph.
        hotspot_nodes: Number of globally shared nodes (directory / barrier /
            reduction hubs) that attract extra traffic.
        hotspot_share: Fraction of each node's traffic sent to hotspot nodes.
        locality: Fraction of partner selection biased toward nearby nodes
            (in 3D Manhattan distance); the rest are chosen uniformly.
        zipf_exponent: Skew of the per-partner weight distribution; larger
            values concentrate traffic on fewer partners.
    """

    name: str
    load_factor: float
    partners_per_node: int
    hotspot_nodes: int
    hotspot_share: float
    locality: float
    zipf_exponent: float

    def __post_init__(self) -> None:
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        if self.partners_per_node < 1:
            raise ValueError("partners_per_node must be >= 1")
        if not 0.0 <= self.hotspot_share < 1.0:
            raise ValueError("hotspot_share must be in [0, 1)")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")


#: Application models for the six benchmarks in the paper's Fig. 7.  Load
#: factors encode the paper's high-load (canneal, fft, radix, water) versus
#: low-load (fluidanimate, lu) grouping; graph parameters reflect the
#: qualitative communication structure of each benchmark.
_APPLICATION_SPECS: Dict[str, ApplicationSpec] = {
    "canneal": ApplicationSpec(
        name="canneal",
        load_factor=1.00,
        partners_per_node=10,
        hotspot_nodes=4,
        hotspot_share=0.25,
        locality=0.2,
        zipf_exponent=1.1,
    ),
    "fft": ApplicationSpec(
        name="fft",
        load_factor=0.90,
        partners_per_node=6,
        hotspot_nodes=2,
        hotspot_share=0.15,
        locality=0.1,
        zipf_exponent=0.8,
    ),
    "fluidanimate": ApplicationSpec(
        name="fluidanimate",
        load_factor=0.18,
        partners_per_node=4,
        hotspot_nodes=1,
        hotspot_share=0.10,
        locality=0.8,
        zipf_exponent=1.0,
    ),
    "lu": ApplicationSpec(
        name="lu",
        load_factor=0.22,
        partners_per_node=5,
        hotspot_nodes=2,
        hotspot_share=0.20,
        locality=0.6,
        zipf_exponent=1.2,
    ),
    "radix": ApplicationSpec(
        name="radix",
        load_factor=0.95,
        partners_per_node=12,
        hotspot_nodes=3,
        hotspot_share=0.20,
        locality=0.1,
        zipf_exponent=0.7,
    ),
    "water": ApplicationSpec(
        name="water",
        load_factor=0.85,
        partners_per_node=8,
        hotspot_nodes=2,
        hotspot_share=0.15,
        locality=0.5,
        zipf_exponent=1.0,
    ),
}

#: Benchmark names in the order they appear in the paper's Fig. 7.
APPLICATION_NAMES: Tuple[str, ...] = (
    "canneal",
    "fft",
    "fluidanimate",
    "lu",
    "radix",
    "water",
)

#: Aliases for benchmark names -- "fluid." is the abbreviated spelling the
#: paper's Fig. 7 uses for fluidanimate.
_APPLICATION_ALIASES: Dict[str, Tuple[str, ...]] = {
    "fluidanimate": ("fluid.", "fluid"),
}

for _name, _spec in _APPLICATION_SPECS.items():
    _load = "high" if _spec.load_factor >= 0.5 else "low"
    APPLICATION_REGISTRY.add(
        _name,
        _spec,
        aliases=_APPLICATION_ALIASES.get(_name, ()),
        description=f"SPLASH-2/PARSEC {_name} substitute ({_load} traffic load)",
        load_factor=_spec.load_factor,
    )
del _name, _spec, _load


def register_application(
    spec: ApplicationSpec, *, aliases: Tuple[str, ...] = (), description: str = ""
) -> ApplicationSpec:
    """Register a custom application traffic model under ``spec.name``."""
    return APPLICATION_REGISTRY.add(
        spec.name,
        spec,
        aliases=aliases,
        description=description or f"user application model {spec.name}",
        load_factor=spec.load_factor,
    )


def available_applications() -> List[str]:
    """Sorted canonical names of every registered application model."""
    return APPLICATION_REGISTRY.names()


def application_spec(name: str) -> ApplicationSpec:
    """Return the :class:`ApplicationSpec` registered under a name or alias.

    Raises:
        repro.registry.UnknownComponentError: (a :class:`ValueError`) for
            unknown application names, listing the registered names.
    """
    return APPLICATION_REGISTRY.get(name)


class ApplicationTraffic(TrafficPattern):
    """Traffic pattern generated from a synthetic application model.

    The constructor deterministically builds a per-source destination
    distribution from the :class:`ApplicationSpec`; the same
    ``(spec, mesh, seed)`` triple always produces the same communication
    graph, so experiments are reproducible.

    Args:
        mesh: Target mesh.
        spec: Application model parameters.
        seed: Seed controlling both graph construction and online sampling.
    """

    name = "application"

    def __init__(self, mesh: Mesh3D, spec: ApplicationSpec, seed: int = 0) -> None:
        super().__init__(mesh, seed)
        self.spec = spec
        self._matrix = self._build_matrix(seed)
        self._per_source: Dict[int, Tuple[List[int], List[float]]] = {}
        for src in mesh.nodes():
            destinations = []
            weights = []
            for (s, d), w in self._matrix.items():
                if s == src:
                    destinations.append(d)
                    weights.append(w)
            self._per_source[src] = (destinations, weights)

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _build_matrix(self, seed: int) -> TrafficMatrix:
        spec = self.spec
        mesh = self.mesh
        graph_rng = random.Random((seed, spec.name, "graph").__hash__())
        n = mesh.num_nodes

        hotspots = self._pick_hotspots(graph_rng)
        matrix: TrafficMatrix = {}
        for src in range(n):
            partners = self._pick_partners(src, graph_rng)
            weights = self._zipf_weights(len(partners), graph_rng)
            partner_share = 1.0 - (spec.hotspot_share if hotspots else 0.0)
            for partner, weight in zip(partners, weights):
                matrix[(src, partner)] = (
                    matrix.get((src, partner), 0.0) + partner_share * weight
                )
            if hotspots:
                eligible = [h for h in hotspots if h != src]
                if eligible:
                    per_hot = spec.hotspot_share / len(eligible)
                    for hot in eligible:
                        matrix[(src, hot)] = matrix.get((src, hot), 0.0) + per_hot
                else:
                    # A hotspot node redistributes its own hotspot share.
                    for partner, weight in zip(partners, weights):
                        matrix[(src, partner)] += spec.hotspot_share * weight
        return matrix

    def _pick_hotspots(self, rng: random.Random) -> List[int]:
        count = min(self.spec.hotspot_nodes, self.mesh.num_nodes)
        if count <= 0:
            return []
        return rng.sample(range(self.mesh.num_nodes), count)

    def _pick_partners(self, src: int, rng: random.Random) -> List[int]:
        mesh = self.mesh
        spec = self.spec
        count = min(spec.partners_per_node, mesh.num_nodes - 1)
        others = [node for node in mesh.nodes() if node != src]
        # Local candidates sorted by 3D distance; ties shuffled for variety.
        rng.shuffle(others)
        by_distance = sorted(others, key=lambda node: mesh.manhattan_3d(src, node))
        partners: List[int] = []
        for _ in range(count):
            pool = [node for node in by_distance if node not in partners]
            if not pool:
                break
            if rng.random() < spec.locality:
                partners.append(pool[0])
            else:
                partners.append(rng.choice(pool))
        return partners

    def _zipf_weights(self, count: int, rng: random.Random) -> List[float]:
        if count == 0:
            return []
        raw = [1.0 / ((rank + 1) ** self.spec.zipf_exponent) for rank in range(count)]
        # Small jitter keeps different sources from having identical shapes.
        raw = [w * (0.8 + 0.4 * rng.random()) for w in raw]
        total = sum(raw)
        return [w / total for w in raw]

    # ------------------------------------------------------------------ #
    # TrafficPattern interface
    # ------------------------------------------------------------------ #
    def destination(self, source: int) -> int:
        destinations, weights = self._per_source[source]
        if not destinations:
            # Fallback: uniform target (can only happen for degenerate meshes).
            dst = self.rng.randrange(self.mesh.num_nodes - 1)
            return dst + 1 if dst >= source else dst
        return self.rng.choices(destinations, weights=weights, k=1)[0]

    def traffic_matrix(self) -> TrafficMatrix:
        return dict(self._matrix)

    @property
    def load_factor(self) -> float:
        """Relative injection-rate multiplier of the modelled benchmark."""
        return self.spec.load_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ApplicationTraffic({self.spec.name!r}, mesh={self.mesh!r})"


def make_application_traffic(
    name: str, mesh: Mesh3D, seed: int = 0
) -> ApplicationTraffic:
    """Create the synthetic traffic model for a named benchmark."""
    return ApplicationTraffic(mesh, application_spec(name), seed=seed)
