"""Recorded traffic traces and trace playback.

A :class:`TrafficTrace` is an explicit list of injection events
``(cycle, source, destination, packet_length)``.  Traces can be recorded
from any :class:`~repro.traffic.patterns.TrafficPattern` (to freeze a
workload for reproducible comparisons across routing policies) or built by
hand in tests.  The simulator's packet source can replay a trace instead of
sampling a pattern online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.topology.mesh3d import Mesh3D
from repro.traffic.patterns import TrafficMatrix, TrafficPattern


@dataclass(frozen=True, order=True)
class TraceEvent:
    """A single packet injection event.

    Attributes:
        cycle: Simulation cycle at which the packet becomes ready at the
            source network interface.
        source: Source node id.
        destination: Destination node id.
        length: Packet length in flits (head + body + tail).
    """

    cycle: int
    source: int
    destination: int
    length: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if self.length < 1:
            raise ValueError("packet length must be at least one flit")
        if self.source == self.destination:
            raise ValueError("source and destination must differ")


class TrafficTrace:
    """An ordered collection of :class:`TraceEvent` objects.

    Args:
        events: Injection events; they are sorted by cycle internally.
        mesh: Optional mesh used to validate node ids.
    """

    def __init__(
        self, events: Iterable[TraceEvent], mesh: Optional[Mesh3D] = None
    ) -> None:
        self.events: List[TraceEvent] = sorted(events)
        if mesh is not None:
            for event in self.events:
                if not (
                    0 <= event.source < mesh.num_nodes
                    and 0 <= event.destination < mesh.num_nodes
                ):
                    raise ValueError(f"trace event {event} outside mesh {mesh.shape}")
        self.mesh = mesh

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def duration(self) -> int:
        """Cycle of the last injection event (0 for an empty trace)."""
        if not self.events:
            return 0
        return self.events[-1].cycle

    def events_by_cycle(self) -> Dict[int, List[TraceEvent]]:
        """Group events by their injection cycle."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.cycle, []).append(event)
        return grouped

    def events_for_source(self, source: int) -> List[TraceEvent]:
        """All events injected by a given source node."""
        return [event for event in self.events if event.source == source]

    def total_flits(self) -> int:
        """Total number of flits injected by the trace."""
        return sum(event.length for event in self.events)

    def traffic_matrix(self) -> TrafficMatrix:
        """Empirical traffic matrix of the trace (flit-weighted, normalized).

        Each source's outgoing weights sum to 1, matching the convention of
        :meth:`repro.traffic.patterns.TrafficPattern.traffic_matrix`.
        """
        per_source_total: Dict[int, float] = {}
        raw: Dict[Tuple[int, int], float] = {}
        for event in self.events:
            raw[(event.source, event.destination)] = (
                raw.get((event.source, event.destination), 0.0) + event.length
            )
            per_source_total[event.source] = (
                per_source_total.get(event.source, 0.0) + event.length
            )
        return {
            pair: weight / per_source_total[pair[0]]
            for pair, weight in raw.items()
            if per_source_total[pair[0]] > 0
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def record(
        cls,
        pattern: TrafficPattern,
        injection_rate: float,
        cycles: int,
        min_packet_length: int = 10,
        max_packet_length: int = 30,
        seed: int = 0,
    ) -> "TrafficTrace":
        """Record a trace by sampling a pattern with a Bernoulli process.

        Args:
            pattern: Destination-selection pattern.
            injection_rate: Packet injection rate per node per cycle.
            cycles: Number of cycles to record.
            min_packet_length: Minimum packet length in flits.
            max_packet_length: Maximum packet length in flits.
            seed: RNG seed for injection timing and packet lengths.

        Returns:
            The recorded :class:`TrafficTrace`.
        """
        import random

        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        if min_packet_length < 1 or max_packet_length < min_packet_length:
            raise ValueError("invalid packet length bounds")
        rng = random.Random(seed)
        packet_probability = injection_rate
        events: List[TraceEvent] = []
        for cycle in range(cycles):
            for source in pattern.mesh.nodes():
                if rng.random() < packet_probability:
                    destination = pattern.destination(source)
                    length = rng.randint(min_packet_length, max_packet_length)
                    events.append(
                        TraceEvent(
                            cycle=cycle,
                            source=source,
                            destination=destination,
                            length=length,
                        )
                    )
        return cls(events, mesh=pattern.mesh)
