"""Generic, introspectable component registries.

Every extensible axis of an experiment -- elevator-selection policies,
synthetic traffic patterns, application traffic models, elevator placements
-- is backed by one :class:`Registry` instance.  Registering a component
under a name (usually with the :meth:`Registry.register` decorator) makes it
usable *by name* everywhere a name is accepted: :class:`repro.spec`
specifications, :class:`~repro.exec.batch.ExperimentBatch`, the benchmark
harness, and the ``python -m repro`` CLI.

Design points:

* **Aliases** -- a component may be reachable under several spellings
  (``elevator_first`` / ``elevatorfirst``, ``fluidanimate`` / ``fluid.``),
  all resolving to one canonical entry.
* **Introspection** -- every entry carries its canonical name, aliases, a
  one-line description and free-form metadata; ``python -m repro list``
  renders them.
* **Helpful errors** -- unknown names raise :class:`UnknownComponentError`
  (a :class:`ValueError`) carrying the sorted registered names and
  close-match suggestions, never a bare :class:`KeyError`.
* **Normalization** -- lookups are case-insensitive via a per-registry
  ``normalize`` callable (lower-case for policies and traffic, upper-case
  for placement names like ``PS1``).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")


class UnknownComponentError(ValueError):
    """Lookup of a name nothing was registered under.

    Attributes:
        kind: Human-readable component kind (``"policy"``, ...).
        name: The name that failed to resolve.
        known: Sorted canonical names registered at lookup time.
    """

    def __init__(self, kind: str, name: Any, known: Sequence[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        message = (
            f"unknown {kind} {name!r}; registered: "
            f"{', '.join(self.known) if self.known else '(none)'}"
        )
        suggestions = difflib.get_close_matches(str(name), self.known, n=3)
        if suggestions:
            message += f" -- did you mean {', '.join(repr(s) for s in suggestions)}?"
        super().__init__(message)


class DuplicateComponentError(ValueError):
    """Registration under a name (or alias) that is already taken."""


@dataclass(frozen=True)
class RegistryEntry(Generic[T]):
    """One registered component with its introspectable metadata.

    Attributes:
        name: Canonical (normalized) name.
        value: The registered object -- typically a class or factory.
        aliases: Alternative normalized names resolving to this entry.
        description: One-line human-readable summary (shown by the CLI).
        metadata: Free-form extra attributes supplied at registration.
    """

    name: str
    value: T
    aliases: Tuple[str, ...] = ()
    description: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)


class Registry(Generic[T]):
    """A named component registry with decorator registration.

    Args:
        kind: Human-readable component kind used in error messages and by
            the CLI (``"policy"``, ``"traffic pattern"``, ...).
        normalize: Name-normalization applied to every registered name,
            alias and lookup (default: lower-case).
    """

    def __init__(self, kind: str, normalize: Callable[[str], str] = str.lower) -> None:
        self.kind = kind
        self._normalize = normalize
        self._entries: Dict[str, RegistryEntry[T]] = {}
        self._index: Dict[str, str] = {}  # normalized name/alias -> canonical name

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        value: T,
        *,
        aliases: Sequence[str] = (),
        description: str = "",
        overwrite: bool = False,
        **metadata: Any,
    ) -> T:
        """Register ``value`` under ``name`` (plus optional aliases).

        Returns the value unchanged (so :meth:`register` can decorate).

        Raises:
            DuplicateComponentError: When the name or an alias is already
                registered and ``overwrite`` is false.
        """
        canonical = self._normalize(str(name))
        if not canonical:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        normalized_aliases = tuple(
            dict.fromkeys(self._normalize(str(a)) for a in aliases)
        )
        if overwrite:
            self._discard(canonical)
        taken = [
            candidate
            for candidate in (canonical, *normalized_aliases)
            if candidate in self._index and self._index[candidate] != canonical
        ]
        if canonical in self._entries and not overwrite:
            taken.insert(0, canonical)
        if taken:
            raise DuplicateComponentError(
                f"{self.kind} name(s) already registered: {', '.join(sorted(set(taken)))}"
                f" (pass overwrite=True to replace)"
            )
        entry = RegistryEntry(
            name=canonical,
            value=value,
            aliases=normalized_aliases,
            description=description,
            metadata=dict(metadata),
        )
        self._entries[canonical] = entry
        self._index[canonical] = canonical
        for alias in normalized_aliases:
            self._index[alias] = canonical
        return value

    def register(
        self,
        name: Optional[str] = None,
        *,
        aliases: Sequence[str] = (),
        description: str = "",
        overwrite: bool = False,
        **metadata: Any,
    ) -> Callable[[T], T]:
        """Decorator form of :meth:`add`.

        When ``name`` is omitted, the decorated object's ``name`` attribute
        (or ``__name__``) is used::

            @PATTERN_REGISTRY.register("tornado", description="...")
            class TornadoTraffic(TrafficPattern): ...
        """

        def decorator(value: T) -> T:
            resolved = name
            if resolved is None:
                resolved = getattr(value, "name", None) or getattr(
                    value, "__name__", None
                )
            if not isinstance(resolved, str) or not resolved:
                raise ValueError(
                    f"cannot infer a {self.kind} name for {value!r}; "
                    "pass one explicitly"
                )
            return self.add(
                resolved,
                value,
                aliases=aliases,
                description=description,
                overwrite=overwrite,
                **metadata,
            )

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a component (and its aliases); unknown names raise."""
        canonical = self._index.get(self._normalize(str(name)))
        if canonical is None:
            raise UnknownComponentError(self.kind, name, self.names())
        self._discard(canonical)

    def _discard(self, canonical: str) -> None:
        entry = self._entries.pop(canonical, None)
        if entry is None:
            return
        self._index.pop(canonical, None)
        for alias in entry.aliases:
            if self._index.get(alias) == canonical:
                self._index.pop(alias, None)

    # ------------------------------------------------------------------ #
    # Lookup and introspection
    # ------------------------------------------------------------------ #
    def entry(self, name: str) -> RegistryEntry[T]:
        """The full entry for a name or alias.

        Raises:
            UnknownComponentError: For unknown names (a ``ValueError``).
        """
        canonical = self._index.get(self._normalize(str(name)))
        if canonical is None:
            raise UnknownComponentError(self.kind, name, self.names())
        return self._entries[canonical]

    def get(self, name: str) -> T:
        """The registered value for a name or alias."""
        return self.entry(name).value

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the registered factory/class for a name."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry[T]]:
        """All entries, sorted by canonical name."""
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self._normalize(name) in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry(kind={self.kind!r}, names={self.names()!r})"
