"""JSON-native value validation shared by the spec layers.

Both :mod:`repro.spec` (experiment/policy/traffic options) and
:mod:`repro.scenario.events` (scenario event options) must keep their
free-form option mappings JSON-native, because the canonical dictionary
serialization feeds cache keys, derived seeds and ``--spec`` files.  This
leaf module holds the one validator so the two layers cannot drift --
``repro.spec`` imports ``repro.scenario``, so the scenario package cannot
import the validator from it.
"""

from __future__ import annotations

from typing import Any, Mapping


def check_json_native(value: Any, where: str) -> Any:
    """Validate (and normalize tuples in) a JSON-native value.

    Args:
        value: The value to validate; mappings and sequences are walked
            recursively, tuples normalize to lists.
        where: Human-readable location used in error messages.

    Raises:
        ValueError: For non-string mapping keys or any value outside
            ``str``/``int``/``float``/``bool``/``None``/list/dict.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [check_json_native(item, where) for item in value]
    if isinstance(value, Mapping):
        result = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{where} keys must be strings, got {key!r}")
            result[key] = check_json_native(item, where)
        return result
    raise ValueError(
        f"{where} values must be JSON-native (str/int/float/bool/None/"
        f"list/dict), got {type(value).__name__}: {value!r}"
    )
