"""A small urllib client for the experiment service.

:class:`ServiceClient` speaks the JSON API of :mod:`repro.service.http`;
``repro.api`` re-exports it plus module-level ``submit`` / ``wait`` /
``results`` conveniences.  Example::

    from repro.api import ExperimentSpec, connect

    client = connect("http://127.0.0.1:8765")
    job_id = client.submit([ExperimentSpec().with_(injection_rate=0.004)],
                           base_seed=7)
    job = client.wait(job_id)
    rows = client.results(job_id)          # summary rows, submission order
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.analysis.runner import ExperimentConfig, as_spec
from repro.spec import ExperimentSpec

#: Where ``python -m repro serve`` listens by default.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"

#: Job states that will never change again (mirrors the queue's).
_TERMINAL = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """An HTTP-level or API-level error from the service.

    Attributes:
        status: HTTP status code (``0`` for transport errors).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    Args:
        base_url: ``http://host:port`` of the daemon.
        timeout: Per-request socket timeout, seconds.
    """

    def __init__(self, base_url: str = DEFAULT_SERVICE_URL, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                message = error.reason
            raise ServiceError(error.code, f"{error.code}: {message}") from None
        except urllib.error.URLError as error:
            raise ServiceError(
                0, f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    def _request_text(self, method: str, path: str) -> str:
        """Like :meth:`_request` for text (non-JSON) endpoints."""
        request = urllib.request.Request(
            self.base_url + path, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                error.code, f"{error.code}: {error.reason}"
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                0, f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """Daemon liveness document (worker count, global task counts)."""
        return self._request("GET", "/api/health")

    def metrics(self) -> str:
        """The daemon's ``GET /metrics`` Prometheus text exposition."""
        return self._request_text("GET", "/metrics")

    def submit(
        self,
        specs: Union[ExperimentSpec, ExperimentConfig,
                     Iterable[Union[ExperimentSpec, ExperimentConfig]]],
        base_seed: Optional[int] = None,
    ) -> int:
        """Submit a job; returns its id (an existing one when dedup'd).

        Use :meth:`submit_receipt` when the caller needs to know whether
        the job was newly created.
        """
        return self.submit_receipt(specs, base_seed=base_seed)["job_id"]

    def submit_receipt(
        self,
        specs: Union[ExperimentSpec, ExperimentConfig,
                     Iterable[Union[ExperimentSpec, ExperimentConfig]]],
        base_seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a job and return the full receipt document.

        The receipt is the job-status document plus ``created`` (``False``
        when an identical job already existed -- the dedup path).
        """
        if isinstance(specs, (ExperimentSpec, ExperimentConfig)):
            specs = [specs]
        documents = [as_spec(spec).to_dict() for spec in specs]
        return self._request(
            "POST", "/api/jobs", {"specs": documents, "base_seed": base_seed}
        )

    def status(self, job_id: int) -> Dict[str, Any]:
        """Current job state + per-state task counts (progress polling)."""
        return self._request("GET", f"/api/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job the daemon knows, newest first."""
        return self._request("GET", "/api/jobs")["jobs"]

    def wait(
        self,
        job_id: int,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises:
            TimeoutError: The job was still open after ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in _TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s "
                    f"({status['counts']})"
                )
            time.sleep(poll_interval)

    def results(self, job_id: int) -> List[Dict[str, float]]:
        """Summary rows of a finished job, in submission order.

        Raises:
            ServiceError: Any task is unfinished or failed (use
                :meth:`result_documents` for partial/failed detail).
        """
        documents = self.result_documents(job_id)
        missing = [doc for doc in documents if doc["summary"] is None]
        if missing:
            states = sorted({doc["state"] for doc in missing})
            raise ServiceError(
                409,
                f"job {job_id} has {len(missing)} unfinished/failed task(s) "
                f"(states: {', '.join(states)})",
            )
        return [doc["summary"] for doc in documents]

    def result_documents(self, job_id: int) -> List[Dict[str, Any]]:
        """Per-task documents (index/key/state/summary), submission order."""
        return self._request("GET", f"/api/jobs/{job_id}/result")["results"]

    def cancel(self, job_id: int) -> Dict[str, Any]:
        """Cancel the job's queued tasks; returns the updated status."""
        return self._request("POST", f"/api/jobs/{job_id}/cancel")


__all__ = ["DEFAULT_SERVICE_URL", "ServiceClient", "ServiceError"]
