"""Supervised worker pool draining the durable job queue.

Workers are threads inside the daemon process; each loops claim -> execute
-> report.  Execution goes through the existing
:class:`~repro.exec.batch.ExperimentBatch` machinery (one task at a time,
``workers=1``) against the shared SQLite caches, so a service run takes the
*exact* code path of a direct ``repro run`` -- same design resolution, same
seeding, same cache keys -- and stays bit-identical to it.  Seeds were
already derived at submit time (the task row stores the effective spec), so
workers never need the job's base seed.

Supervision: a supervisor thread restarts workers that died from an
unhandled error and periodically re-queues lease-expired ``running`` tasks
(:meth:`JobQueue.requeue_stale`), so a worker lost to a hard crash only
delays its task by one lease instead of wedging the job.  A task that
raises is reported through :meth:`JobQueue.fail` -- re-queued until its
attempt limit, then failed permanently.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Optional, Sequence, Tuple

from repro.exec.batch import ExperimentBatch
from repro.exec.shard import ShardSpec
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.service.queue import JobQueue, TaskRecord
from repro.service.store import SqliteDesignCache, SqliteResultCache, SqliteStore

#: Default seconds before a claimed-but-silent task is considered orphaned.
DEFAULT_LEASE_SECONDS = 600.0


def execute_claimed_task(
    queue: JobQueue,
    task: TaskRecord,
    result_cache: SqliteResultCache,
    design_cache: SqliteDesignCache,
    plugins: Sequence[str] = (),
    replica_batch: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> bool:
    """Execute one claimed task and report its outcome to the queue.

    Shared by the in-process worker threads and the out-of-process worker
    entry point (tests exercise crash-resume by running this in a killable
    subprocess).  Returns ``True`` on completion, ``False`` on failure.
    ``replica_batch`` is forwarded to the batch engine (tasks are claimed
    one at a time today, so its effect here is enabling the engine's
    replica-aware path for future multi-spec tasks; the warm-worker setup
    memo is per-process and always active).  ``metrics`` is handed to the
    batch engine, so a pool-wide registry aggregates engine counters
    across every task (the ``GET /metrics`` source).
    """
    try:
        batch = ExperimentBatch(
            [task.spec],
            workers=1,
            result_cache=result_cache,
            design_cache=design_cache,
            plugins=tuple(plugins),
            replica_batch=replica_batch,
            metrics=metrics,
        )
        outcome = batch.run()[0]
        if outcome.key != task.key:
            # Canonicalization drift between submit and execute would split
            # the cache silently; fail loudly instead.
            raise RuntimeError(
                f"task key mismatch: submitted {task.key}, executed {outcome.key}"
            )
        queue.complete(task, outcome.summary)
        return True
    except Exception:
        queue.fail(task, traceback.format_exc(limit=20))
        return False


class WorkerPool:
    """N supervised worker threads draining a :class:`JobQueue`.

    Args:
        store: The shared service database.
        workers: Worker thread count.
        poll_interval: Idle sleep between claim attempts, seconds.
        lease_seconds: Claim age after which the supervisor re-queues a
            ``running`` task (orphan recovery).
        plugins: Module names imported before specs resolve, mirroring the
            batch engine's ``--plugin`` behaviour.
        shard: Optional :class:`~repro.exec.shard.ShardSpec` forwarded to
            the pool's default :class:`JobQueue`, restricting its claims
            to the shard's deterministic slice of every job (``repro
            serve --shard K/N``).  Ignored when an explicit ``queue`` is
            given -- configure that queue's shard directly.
        replica_batch: Forwarded to every task execution's batch engine
            (``repro serve --replica-batch N``); see
            :func:`execute_claimed_task`.
    """

    def __init__(
        self,
        store: SqliteStore,
        workers: int = 2,
        queue: Optional[JobQueue] = None,
        poll_interval: float = 0.1,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        plugins: Sequence[str] = (),
        shard: Optional[ShardSpec] = None,
        replica_batch: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.queue = queue if queue is not None else JobQueue(store, shard=shard)
        self.workers = workers
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds
        self.plugins: Tuple[str, ...] = tuple(plugins)
        self.replica_batch = replica_batch
        self.result_cache = SqliteResultCache(store)
        self.design_cache = SqliteDesignCache(store)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._supervisor: Optional[threading.Thread] = None
        self._restarts = 0
        #: Tasks executed (completed or failed) since start, all workers.
        self.executed = 0
        self._executed_lock = threading.Lock()
        #: Pool-wide metrics registry: worker gauges/counters plus the
        #: engine counters of every executed task (``GET /metrics``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.gauge(
            "repro_workers", help="Configured worker thread count."
        ).set(self.workers)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the workers and the supervisor (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            self._threads.append(self._spawn(index))
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-supervisor", daemon=True
        )
        self._supervisor.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Signal every thread to stop and join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        self._threads = []
        self._supervisor = None

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no task is queued or running (or timeout).

        Returns ``True`` when the queue is idle; primarily for tests and
        one-shot embedding.
        """
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            counts = self.queue.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                return True
            if deadline is not None and _monotonic() > deadline:
                return False
            self._stop.wait(self.poll_interval)
            if self._stop.is_set():
                return False

    # ------------------------------------------------------------------ #
    def _spawn(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._work,
            name=f"repro-worker-{index}",
            daemon=True,
        )
        thread.start()
        return thread

    def _worker_id(self) -> str:
        return f"{os.getpid()}:{threading.current_thread().name}"

    def _work(self) -> None:
        worker = self._worker_id()
        task_hist = self.metrics.histogram(
            "repro_worker_task_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="End-to-end claimed-task execution time.",
        )
        completed_total = self.metrics.counter(
            "repro_worker_tasks_completed_total",
            help="Claimed tasks that completed successfully.",
        )
        failed_total = self.metrics.counter(
            "repro_worker_tasks_failed_total",
            help="Claimed-task attempts reported as failed.",
        )
        while not self._stop.is_set():
            task = self.queue.claim(worker)
            if task is None:
                self._stop.wait(self.poll_interval)
                continue
            started = time.perf_counter()
            ok = execute_claimed_task(
                self.queue,
                task,
                self.result_cache,
                self.design_cache,
                plugins=self.plugins,
                replica_batch=self.replica_batch,
                metrics=self.metrics,
            )
            task_hist.observe(time.perf_counter() - started)
            (completed_total if ok else failed_total).inc()
            with self._executed_lock:
                self.executed += 1

    def _supervise(self) -> None:
        # Lease sweeps are cheap; run them at a fraction of the lease so an
        # orphaned task waits at most ~1.25 leases.
        sweep_interval = max(self.poll_interval, self.lease_seconds / 4)
        next_sweep = _monotonic() + sweep_interval
        while not self._stop.is_set():
            for index, thread in enumerate(self._threads):
                if not thread.is_alive() and not self._stop.is_set():
                    # claim()/execute_claimed_task() contain all expected
                    # failures; an unhandled one (e.g. the database went
                    # away mid-claim) kills the thread -- replace it.
                    self._restarts += 1
                    self.metrics.counter(
                        "repro_worker_restarts_total",
                        help="Worker threads replaced after unhandled errors.",
                    ).inc()
                    self._threads[index] = self._spawn(index)
            if _monotonic() >= next_sweep:
                try:
                    self.queue.requeue_stale(self.lease_seconds)
                except Exception:  # pragma: no cover - sweep must not die
                    pass
                next_sweep = _monotonic() + sweep_interval
            self._stop.wait(self.poll_interval)


def _monotonic() -> float:
    return time.monotonic()


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "execute_claimed_task",
    "WorkerPool",
]
