"""Persistent experiment service: durable jobs, SQLite store, worker pool.

``repro.service`` turns the one-shot batch engine into a long-running job
system that many clients share:

* :mod:`repro.service.store` -- one SQLite database (WAL mode, schema
  migrations) holding the result/design caches *and* the job queue, keyed
  by the exact canonical hashes of :mod:`repro.exec.cache`, so warm JSON
  cache directories migrate losslessly (``repro cache migrate``) and every
  cache-identity guarantee carries over;
* :mod:`repro.service.queue` -- a durable job queue with states
  ``queued -> running -> done/failed``, dedup by spec hash (resubmitting an
  identical job attaches to the existing one or returns the cached result),
  per-task completion records (interrupted sweeps resume without re-running
  finished tasks) and retry-with-limit on worker crash;
* :mod:`repro.service.workers` -- a supervised worker pool draining the
  queue through the existing :class:`~repro.exec.batch.ExperimentBatch`
  machinery with derived per-task seeds, preserving the
  serial == parallel == warm-cache bit-identity contract;
* :mod:`repro.service.http` -- a thin stdlib HTTP API
  (``python -m repro serve``): submit/status/result/cancel plus incremental
  progress polling;
* :mod:`repro.service.client` -- the matching urllib client
  (:class:`ServiceClient`; re-exported as ``repro.api.connect`` /
  ``submit`` / ``wait`` / ``results``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobQueue, JobRecord, SubmitReceipt, TaskRecord
from repro.service.store import (
    SqliteDesignCache,
    SqliteResultCache,
    SqliteStore,
    migrate_json_cache,
)
from repro.service.workers import WorkerPool

__all__ = [
    "SqliteStore",
    "SqliteResultCache",
    "SqliteDesignCache",
    "migrate_json_cache",
    "JobQueue",
    "JobRecord",
    "TaskRecord",
    "SubmitReceipt",
    "WorkerPool",
    "ServiceClient",
    "ServiceError",
]
