"""The thin HTTP API of the experiment service (stdlib only).

``python -m repro serve`` binds a :class:`ThreadingHTTPServer` (no new
dependency -- the repo's hard-dependency budget stays numpy-only) in front
of the shared :class:`~repro.service.store.SqliteStore`, the
:class:`~repro.service.queue.JobQueue` and a
:class:`~repro.service.workers.WorkerPool`:

====== ============================= =====================================
Method Path                          Meaning
====== ============================= =====================================
GET    ``/api/health``               daemon liveness + global task counts
                                     + cache stats (sqlite table rows)
GET    ``/metrics``                  Prometheus text exposition: engine
                                     counters, queue-depth/job-state/
                                     worker gauges, latency histograms
POST   ``/api/jobs``                 submit (``{"specs": [...],
                                     "base_seed": N}``); dedup by spec
                                     hash -- 200 with ``created=false``
                                     for an identical resubmission,
                                     201 for a new job
GET    ``/api/jobs``                 list jobs, newest first
GET    ``/api/jobs/<id>``            job state + progress counts
                                     (incremental polling)
GET    ``/api/jobs/<id>/result``     per-task results in submission order
POST   ``/api/jobs/<id>/cancel``     cancel the job's queued tasks
====== ============================= =====================================

All API bodies are JSON (``/metrics`` is ``text/plain``).  Floats serialize
with Python's ``Infinity`` extension (saturated runs carry infinite
latencies); the bundled client parses it back, as does any ``json.loads``.

Request logging goes through the ``repro.service`` :mod:`logging` logger:
one structured access-log event per request (method, path, status,
duration) at INFO, stdlib ``log_message`` chatter at DEBUG.  ``repro serve
--verbose`` attaches a stderr handler; embedders configure the logger like
any other.
"""

from __future__ import annotations

import json
import logging
import os
import re
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

from repro.exec.shard import ShardSpec
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import span
from repro.service.queue import JobQueue
from repro.service.store import SqliteStore
from repro.service.workers import WorkerPool
from repro.spec import ExperimentSpec

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: The service logger; request handlers emit one structured access-log
#: event per request here (see :func:`configure_service_logging`).
LOGGER = logging.getLogger("repro.service")

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def configure_service_logging(verbose: bool = False) -> None:
    """Attach a stderr handler to the ``repro.service`` logger.

    ``verbose`` lowers the threshold to DEBUG (per-request stdlib
    ``log_message`` chatter included); otherwise INFO shows the structured
    access-log events.  Idempotent -- an existing handler is reused, so
    embedders that configured logging themselves are left alone.
    """
    level = logging.DEBUG if verbose else logging.INFO
    LOGGER.setLevel(level)
    if not LOGGER.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(name)s] %(levelname)s %(message)s")
        )
        LOGGER.addHandler(handler)
    for handler in LOGGER.handlers:
        handler.setLevel(level)


class ServiceContext:
    """Everything one daemon instance shares across request threads."""

    def __init__(self, store: SqliteStore, queue: JobQueue, pool: WorkerPool) -> None:
        self.store = store
        self.queue = queue
        self.pool = pool
        #: The daemon's cumulative metrics: the pool registry (worker and
        #: engine counters) plus the HTTP-layer series recorded here.
        self.metrics: MetricsRegistry = pool.metrics


class _ApiError(Exception):
    """A client-visible error with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Route dispatch for the experiment-service API."""

    #: Set by :func:`make_server` on the generated subclass.
    context: ServiceContext

    server_version = "repro-service/1.7"
    protocol_version = "HTTP/1.1"

    _ROUTES = (
        ("GET", re.compile(r"^/api/health$"), "_health"),
        ("GET", re.compile(r"^/metrics$"), "_metrics"),
        ("POST", re.compile(r"^/api/jobs$"), "_submit"),
        ("GET", re.compile(r"^/api/jobs$"), "_list_jobs"),
        ("GET", re.compile(r"^/api/jobs/(?P<job_id>\d+)$"), "_job_status"),
        ("GET", re.compile(r"^/api/jobs/(?P<job_id>\d+)/result$"), "_job_result"),
        ("POST", re.compile(r"^/api/jobs/(?P<job_id>\d+)/cancel$"), "_job_cancel"),
    )

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Route stdlib per-request chatter through the service logger
        # (visible with ``--verbose``) instead of swallowing it.
        LOGGER.debug("%s %s", self.address_string(), format % args)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        started = time.perf_counter()
        with span("http.request", method=method, path=path) as request_span:
            status = self._route(method, path)
            if request_span is not None:
                request_span.args["status"] = status
        elapsed = time.perf_counter() - started
        metrics = self.context.metrics
        metrics.counter(
            "repro_http_requests_total",
            labels={"method": method, "status": str(status)},
            help="HTTP requests served, by method and status.",
        ).inc()
        metrics.histogram(
            "repro_http_request_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="HTTP request handling latency.",
        ).observe(elapsed)
        LOGGER.info(
            "%s",
            json.dumps(
                {
                    "event": "http.request",
                    "client": self.client_address[0],
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(elapsed * 1000.0, 3),
                },
                sort_keys=True,
            ),
        )

    def _route(self, method: str, path: str) -> int:
        """Dispatch to the matching handler; returns the response status."""
        allowed_methods = set()
        for route_method, pattern, handler_name in self._ROUTES:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method:
                allowed_methods.add(route_method)
                continue
            try:
                status, payload = getattr(self, handler_name)(**match.groupdict())
            except _ApiError as error:
                status, payload = error.status, {"error": str(error)}
            except KeyError as error:
                status, payload = 404, {"error": str(error.args[0])}
            except ValueError as error:
                status, payload = 400, {"error": str(error)}
            except Exception as error:  # pragma: no cover - last resort
                status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
            self._send(status, payload)
            return status
        if allowed_methods:
            status = 405
            self._send(status, {"error": f"method {method} not allowed for {path}"})
        else:
            status = 404
            self._send(status, {"error": f"no route for {method} {path}"})
        return status

    def _send(self, status: int, payload: Union[Dict[str, Any], str]) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = METRICS_CONTENT_TYPE
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError as error:
            raise _ApiError(400, f"request body is not valid JSON: {error}")
        if not isinstance(data, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return data

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _health(self) -> Tuple[int, Dict[str, Any]]:
        shard = self.context.queue.shard
        return 200, {
            "status": "ok",
            "workers": self.context.pool.workers,
            "shard": None if shard is None else str(shard),
            "tasks": self.context.queue.counts(),
            "cache": self._cache_stats(),
        }

    def _cache_stats(self) -> Dict[str, Any]:
        """Row counts and database size of the service store."""
        store = self.context.store
        stats: Dict[str, Any] = {
            "backend": "sqlite",
            "tables": store.table_counts(),
            "bytes": 0,
        }
        for suffix in ("", "-wal", "-shm"):
            try:
                stats["bytes"] += os.path.getsize(store.path + suffix)
            except OSError:
                pass
        return stats

    def _metrics(self) -> Tuple[int, str]:
        """Prometheus text exposition of the daemon's metrics.

        Live queue/job/worker gauges are sampled into a fresh registry at
        scrape time, then the cumulative pool registry (engine counters,
        worker counters, HTTP series) is merged in -- gauges merge by
        addition, so the sampled values pass through unchanged (the pool
        registry holds no queue gauges).
        """
        queue = self.context.queue
        snapshot = MetricsRegistry()
        task_counts = queue.counts()
        for state, count in sorted(task_counts.items()):
            snapshot.gauge(
                "repro_tasks",
                labels={"state": state},
                help="Current tasks by lifecycle state.",
            ).set(count)
        for state, count in sorted(queue.job_counts().items()):
            snapshot.gauge(
                "repro_jobs_total",
                labels={"state": state},
                help="Current jobs by lifecycle state.",
            ).set(count)
        snapshot.gauge(
            "repro_queue_depth",
            help="Tasks waiting to be claimed (queued state).",
        ).set(task_counts.get("queued", 0))
        for table, rows in sorted(self.context.store.table_counts().items()):
            snapshot.gauge(
                "repro_store_rows",
                labels={"table": table},
                help="Row counts of the service database tables.",
            ).set(rows)
        snapshot.merge(self.context.metrics)
        return 200, snapshot.render_prometheus()

    def _submit(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        documents = body.get("specs")
        if documents is None and "spec" in body:
            documents = [body["spec"]]
        if not isinstance(documents, list) or not documents:
            raise _ApiError(
                400, "submission needs 'specs' (a non-empty list of "
                     "ExperimentSpec documents) or a single 'spec'"
            )
        try:
            specs = [ExperimentSpec.from_dict(doc) for doc in documents]
        except ValueError as error:
            raise _ApiError(400, f"invalid experiment spec: {error}")
        base_seed = body.get("base_seed")
        if base_seed is not None and not isinstance(base_seed, int):
            raise _ApiError(400, "base_seed must be an integer or null")
        receipt = self.context.queue.submit(specs, base_seed=base_seed)
        document = receipt.job.to_dict()
        document["created"] = receipt.created
        return (201 if receipt.created else 200), document

    def _list_jobs(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"jobs": [job.to_dict() for job in self.context.queue.jobs()]}

    def _job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        return 200, self.context.queue.job(int(job_id)).to_dict()

    def _job_result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.context.queue.job(int(job_id))
        document = job.to_dict()
        document["results"] = self.context.queue.results(job.id)
        return 200, document

    def _job_cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        return 200, self.context.queue.cancel(int(job_id)).to_dict()


def make_server(
    context: ServiceContext,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> ThreadingHTTPServer:
    """Build the HTTP server bound to ``host:port`` (port 0 = ephemeral)."""
    handler = type(
        "BoundServiceRequestHandler", (ServiceRequestHandler,), {"context": context}
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    store: SqliteStore,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 2,
    max_attempts: Optional[int] = None,
    plugins: Tuple[str, ...] = (),
    install_signal_handlers: bool = True,
    ready: Optional[threading.Event] = None,
    shard: Optional[ShardSpec] = None,
    replica_batch: Optional[int] = None,
    verbose: bool = False,
) -> int:
    """Run the daemon until SIGINT/SIGTERM: recover, serve, drain, close.

    Startup re-queues tasks left ``running`` by a previous process
    (:meth:`JobQueue.recover_running`), which is what makes interrupted
    sweeps resume without re-running completed tasks.

    A ``shard`` restricts this daemon's worker pool to its deterministic
    slice of every job -- N daemons sharing one database (or merging their
    caches afterwards) split submissions exactly like ``repro sweep
    --shard`` splits a grid, through the same :class:`JobQueue` claim
    path the CLI-less pool uses.  A sharded daemon skips startup recovery
    of other shards' tasks only in the sense that it never claims them;
    ``recover_running`` itself is shard-agnostic (an orphaned row must be
    re-queued no matter which shard owns it).

    ``verbose`` attaches a DEBUG-level stderr handler to the
    ``repro.service`` logger (``repro serve --verbose``): structured
    access-log events plus stdlib per-request chatter.  Without it the
    logger is configured at INFO, which shows the access-log events once
    any handler is attached.
    """
    configure_service_logging(verbose=verbose)
    queue = (
        JobQueue(store, max_attempts=max_attempts, shard=shard)
        if max_attempts is not None
        else JobQueue(store, shard=shard)
    )
    recovered = queue.recover_running()
    if recovered:
        print(f"[repro.serve] re-queued {recovered} interrupted task(s)",
              file=sys.stderr)
    pool = WorkerPool(
        store,
        workers=workers,
        queue=queue,
        plugins=plugins,
        replica_batch=replica_batch,
    )
    context = ServiceContext(store, queue, pool)
    server = make_server(context, host=host, port=port)
    stop = threading.Event()

    if install_signal_handlers:
        def _handle(signum, frame):  # noqa: ARG001
            stop.set()

        signal.signal(signal.SIGINT, _handle)
        signal.signal(signal.SIGTERM, _handle)

    pool.start()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    thread.start()
    bound = server.server_address
    shard_note = "" if shard is None else f", shard {shard}"
    print(f"[repro.serve] listening on http://{bound[0]}:{bound[1]} "
          f"({workers} worker{'s' if workers != 1 else ''}, "
          f"db {store.path}{shard_note})")
    if ready is not None:
        ready.set()
    try:
        stop.wait()
    finally:
        print("[repro.serve] shutting down", file=sys.stderr)
        server.shutdown()
        server.server_close()
        pool.stop()
        store.close()
    return 0


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "LOGGER",
    "METRICS_CONTENT_TYPE",
    "ServiceContext",
    "ServiceRequestHandler",
    "configure_service_logging",
    "make_server",
    "serve",
]
