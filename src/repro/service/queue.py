"""Durable job queue with dedup, retries and crash-resume.

A **job** is one submission: an ordered list of experiment specs plus an
optional batch-level base seed.  Submission immediately derives each task's
effective spec (seed applied via :func:`repro.exec.cache.derive_seed`) and
its canonical cache key (:func:`repro.exec.cache.config_key` with the
default energy model, exactly like a direct :class:`ExperimentBatch` run),
then persists one task row per spec.  Everything downstream keys off those
hashes:

* **Dedup by spec hash.**  The job hash is the SHA-256 of the ordered task
  key list, so resubmitting an identical job attaches to the existing job
  (``SubmitReceipt.created`` is ``False``).  Individual tasks dedup through
  the result store: a task whose key already has a result row is marked
  ``done`` at submit time (warm-cache submission returns instantly), and
  completing a key also completes every other queued task waiting on it --
  overlapping jobs never run the same simulation twice.
* **States.**  Tasks move ``queued -> running -> done``/``failed``
  (``cancelled`` terminal for cancelled jobs); a job's state is derived
  from its tasks and finalized when the last task reaches a terminal state.
* **Retry with limit.**  Claiming increments ``attempts``; a failed or
  crash-recovered task re-queues until ``attempts`` reaches the limit, then
  fails permanently.
* **Crash resume.**  Completions are recorded per task, so an interrupted
  sweep (daemon killed, worker crashed) resumes by re-queueing ``running``
  tasks (:meth:`JobQueue.recover_running` at daemon startup,
  :meth:`JobQueue.requeue_stale` for lease-expired claims) -- finished
  tasks are never re-run because their keys are already in the result
  store.

All mutating operations run in ``BEGIN IMMEDIATE`` transactions on the
shared :class:`~repro.service.store.SqliteStore`, so any number of worker
threads/processes can claim concurrently without handing out one task
twice.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.runner import ExperimentConfig, as_spec
from repro.exec.batch import key_extra_for
from repro.exec.cache import config_key, derive_seed
from repro.exec.shard import ShardSpec
from repro.obs.tracing import span
from repro.service.store import SqliteStore, _dumps
from repro.spec import ExperimentSpec

#: Job / task lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Task states that will never change again.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Default cap on claim attempts per task (first run + two retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Queued-task page size while scanning for a shard-owned claim.  Shard
#: membership is a Python-side hash of the key (SQLite cannot take a
#: 256-bit modulus), so a sharded claim walks candidates in pages instead
#: of ``LIMIT 1``.
_CLAIM_PAGE = 64


@dataclass(frozen=True)
class TaskRecord:
    """One persisted task (a single experiment spec within a job)."""

    job_id: int
    index: int
    key: str
    spec: ExperimentSpec
    state: str
    attempts: int
    error: Optional[str] = None


@dataclass(frozen=True)
class JobRecord:
    """One persisted job with its derived progress counts."""

    id: int
    job_hash: str
    state: str
    base_seed: Optional[int]
    num_tasks: int
    counts: Dict[str, int]
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (the HTTP status document)."""
        return {
            "job_id": self.id,
            "job_hash": self.job_hash,
            "state": self.state,
            "base_seed": self.base_seed,
            "num_tasks": self.num_tasks,
            "counts": dict(self.counts),
            "error": self.error,
        }


@dataclass(frozen=True)
class SubmitReceipt:
    """What a submission returns: the job, and whether it was new."""

    job: JobRecord
    created: bool


def job_hash_for(keys: Sequence[str]) -> str:
    """Content hash of a job -- the ordered task-key list.

    Task keys already capture everything a run depends on (canonical spec
    with its effective seed, plus the energy model), so two submissions
    hash identically exactly when they would simulate identical work.
    """
    blob = json.dumps(list(keys), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class JobQueue:
    """The durable queue over a shared :class:`SqliteStore`.

    Args:
        store: The service database (jobs/tasks/results tables).
        max_attempts: Claim-count limit per task; a task failing (or being
            crash-recovered) this many times fails permanently.
        shard: Optional :class:`~repro.exec.shard.ShardSpec`; a sharded
            queue only *claims* tasks whose canonical keys it owns (the
            same deterministic partition ``repro sweep --shard`` uses, so
            N daemons over copies of one database -- or one shared
            database -- split a job without coordinating).  Submission,
            status and results are unaffected: every shard sees every job.
    """

    def __init__(
        self,
        store: SqliteStore,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        shard: Optional[ShardSpec] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.max_attempts = max_attempts
        self.shard = shard

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        specs: Union[ExperimentSpec, ExperimentConfig,
                     Iterable[Union[ExperimentSpec, ExperimentConfig]]],
        base_seed: Optional[int] = None,
    ) -> SubmitReceipt:
        """Submit a job (one spec or an ordered list of specs).

        Seeds are derived here, once, exactly like
        :meth:`ExperimentBatch.effective_specs`: with a ``base_seed`` each
        task's seed becomes ``derive_seed(spec, base_seed)``; without one,
        specs keep their own seeds.  An identical resubmission (same
        ordered task keys) attaches to the existing job instead of
        creating a new one.
        """
        if isinstance(specs, (ExperimentSpec, ExperimentConfig)):
            specs = [specs]
        resolved = [as_spec(spec) for spec in specs]
        if not resolved:
            raise ValueError("a job needs at least one experiment spec")
        if base_seed is not None:
            resolved = [
                spec.with_(seed=derive_seed(spec, base_seed)) for spec in resolved
            ]
        extra = key_extra_for(None)
        keys = [config_key(spec, extra=extra) for spec in resolved]
        job_hash = job_hash_for(keys)

        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT id FROM jobs WHERE job_hash=?", (job_hash,)
            ).fetchone()
            if row is not None:
                job_id, created = row["id"], False
            else:
                cursor = conn.execute(
                    "INSERT INTO jobs(job_hash, base_seed, num_tasks) "
                    "VALUES(?,?,?)",
                    (job_hash, base_seed, len(resolved)),
                )
                job_id, created = cursor.lastrowid, True
                warm = {
                    r["key"]
                    for r in conn.execute(
                        "SELECT key FROM results WHERE key IN "
                        f"({','.join('?' * len(set(keys)))})",
                        tuple(set(keys)),
                    )
                }
                for index, (spec, key) in enumerate(zip(resolved, keys)):
                    conn.execute(
                        "INSERT INTO tasks(job_id, idx, key, spec, state) "
                        "VALUES(?,?,?,?,?)",
                        (
                            job_id,
                            index,
                            key,
                            _dumps(spec.to_dict()),
                            DONE if key in warm else QUEUED,
                        ),
                    )
                self._finalize_job(conn, job_id)
        return SubmitReceipt(job=self.job(job_id), created=created)

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def claim(self, worker: str) -> Optional[TaskRecord]:
        """Atomically claim the next runnable task, or ``None``.

        Tasks are handed out in ``(job_id, idx)`` order.  Queued tasks
        whose key was completed meanwhile (by an overlapping job) are
        absorbed as ``done`` instead of claimed, and queued tasks that
        exhausted their attempts are failed in place.  A sharded queue
        skips (never touches) tasks owned by other shards.
        """
        with span("queue.claim", worker=worker) as record_span:
            task = self._claim(worker)
            if record_span is not None:
                record_span.args["claimed"] = task is not None
            return task

    def _claim(self, worker: str) -> Optional[TaskRecord]:
        with self.store.transaction() as conn:
            # Absorb free wins first: a result row satisfies every queued
            # task waiting on that key, whichever job queued it.
            absorbed = conn.execute(
                "UPDATE tasks SET state=?, worker=NULL, claimed_at=NULL "
                "WHERE state=? AND key IN (SELECT key FROM results)",
                (DONE, QUEUED),
            ).rowcount
            if absorbed:
                self._finalize_jobs_of_absorbed(conn)
            offset = 0
            while True:
                rows = conn.execute(
                    "SELECT t.job_id, t.idx, t.key, t.spec, t.attempts "
                    "FROM tasks t JOIN jobs j ON j.id = t.job_id "
                    "WHERE t.state=? AND j.state NOT IN (?,?) "
                    "ORDER BY t.job_id, t.idx LIMIT ? OFFSET ?",
                    (QUEUED, CANCELLED, FAILED, _CLAIM_PAGE, offset),
                ).fetchall()
                if not rows:
                    return None
                mutated = False
                for row in rows:
                    if self.shard is not None and not self.shard.owns(row["key"]):
                        continue
                    if row["attempts"] >= self.max_attempts:
                        conn.execute(
                            "UPDATE tasks SET state=?, error=? "
                            "WHERE job_id=? AND idx=?",
                            (FAILED, "attempt limit exhausted",
                             row["job_id"], row["idx"]),
                        )
                        self._finalize_job(conn, row["job_id"])
                        # The queued set changed; restart the scan so the
                        # page offsets stay consistent.
                        mutated = True
                        break
                    conn.execute(
                        "UPDATE tasks SET state=?, attempts=attempts+1, "
                        "worker=?, claimed_at=? WHERE job_id=? AND idx=?",
                        (RUNNING, worker, time.time(), row["job_id"], row["idx"]),
                    )
                    conn.execute(
                        "UPDATE jobs SET state=? WHERE id=? AND state=?",
                        (RUNNING, row["job_id"], QUEUED),
                    )
                    return TaskRecord(
                        job_id=row["job_id"],
                        index=row["idx"],
                        key=row["key"],
                        spec=ExperimentSpec.from_dict(json.loads(row["spec"])),
                        state=RUNNING,
                        attempts=row["attempts"] + 1,
                    )
                if mutated:
                    offset = 0
                elif len(rows) < _CLAIM_PAGE:
                    return None  # walked every queued task; none ours
                else:
                    offset += _CLAIM_PAGE

    def complete(
        self,
        task: TaskRecord,
        summary: Dict[str, float],
        config_data: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a finished task: result row + per-task completion."""
        with span("queue.complete", job=task.job_id, idx=task.index), \
                self.store.transaction() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results(key, config, summary) "
                "VALUES(?,?,?)",
                (task.key,
                 None if config_data is None else _dumps(config_data),
                 _dumps(summary)),
            )
            # This completion satisfies every queued task on the same key.
            conn.execute(
                "UPDATE tasks SET state=?, error=NULL WHERE "
                "(job_id=? AND idx=?) OR (state=? AND key=?)",
                (DONE, task.job_id, task.index, QUEUED, task.key),
            )
            self._finalize_jobs_of_absorbed(conn)

    def fail(self, task: TaskRecord, error: str) -> None:
        """Record a failed attempt: re-queue under the limit, else fail."""
        with self.store.transaction() as conn:
            if task.attempts < self.max_attempts:
                conn.execute(
                    "UPDATE tasks SET state=?, worker=NULL, claimed_at=NULL, "
                    "error=? WHERE job_id=? AND idx=?",
                    (QUEUED, error, task.job_id, task.index),
                )
            else:
                conn.execute(
                    "UPDATE tasks SET state=?, error=? WHERE job_id=? AND idx=?",
                    (FAILED, error, task.job_id, task.index),
                )
                self._finalize_job(conn, task.job_id)

    def requeue_stale(self, lease_seconds: float) -> int:
        """Re-queue running tasks whose claim is older than the lease.

        Covers workers that died without reporting (crash, ``kill -9``).
        Attempts are preserved, so a task that keeps killing its worker
        exhausts the attempt limit instead of looping forever.
        """
        cutoff = time.time() - lease_seconds
        with self.store.transaction() as conn:
            requeued = conn.execute(
                "UPDATE tasks SET state=?, worker=NULL, claimed_at=NULL "
                "WHERE state=? AND claimed_at IS NOT NULL AND claimed_at<?",
                (QUEUED, RUNNING, cutoff),
            ).rowcount
        return requeued

    def recover_running(self) -> int:
        """Re-queue *every* running task (daemon restart after a crash).

        Only call when no workers are active: a clean startup knows any
        ``running`` row is an orphan of the previous process.  Completed
        tasks keep their results, so the sweep resumes with the remainder.
        """
        with self.store.transaction() as conn:
            requeued = conn.execute(
                "UPDATE tasks SET state=?, worker=NULL, claimed_at=NULL "
                "WHERE state=?",
                (QUEUED, RUNNING),
            ).rowcount
            conn.execute(
                "UPDATE jobs SET state=? WHERE state=?", (QUEUED, RUNNING)
            )
        return requeued

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: int) -> JobRecord:
        """Cancel a job's queued tasks (running ones finish their attempt)."""
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT id FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown job id {job_id}")
            conn.execute(
                "UPDATE tasks SET state=? WHERE job_id=? AND state=?",
                (CANCELLED, job_id, QUEUED),
            )
            self._finalize_job(conn, job_id)
        return self.job(job_id)

    def job(self, job_id: int) -> JobRecord:
        """The current state and progress counts of one job.

        Raises:
            KeyError: Unknown job id.
        """
        rows = self.store.query("SELECT * FROM jobs WHERE id=?", (job_id,))
        if not rows:
            raise KeyError(f"unknown job id {job_id}")
        return self._record(rows[0])

    def find_by_hash(self, job_hash: str) -> Optional[JobRecord]:
        """The job submitted under a hash, or ``None``."""
        rows = self.store.query(
            "SELECT * FROM jobs WHERE job_hash=?", (job_hash,)
        )
        return self._record(rows[0]) if rows else None

    def jobs(self) -> List[JobRecord]:
        """Every job, newest first."""
        return [
            self._record(row)
            for row in self.store.query("SELECT * FROM jobs ORDER BY id DESC")
        ]

    def tasks(self, job_id: int) -> List[TaskRecord]:
        """A job's tasks in submission order."""
        return [
            TaskRecord(
                job_id=row["job_id"],
                index=row["idx"],
                key=row["key"],
                spec=ExperimentSpec.from_dict(json.loads(row["spec"])),
                state=row["state"],
                attempts=row["attempts"],
                error=row["error"],
            )
            for row in self.store.query(
                "SELECT * FROM tasks WHERE job_id=? ORDER BY idx", (job_id,)
            )
        ]

    def results(self, job_id: int) -> List[Dict[str, Any]]:
        """Per-task result documents of a job, in submission order.

        Each document carries the task's ``index``, ``key``, ``state`` and,
        for done tasks, the bit-identical ``summary`` row a direct
        ``repro run`` of the same spec produces.
        """
        self.job(job_id)  # raise KeyError for unknown ids
        rows = self.store.query(
            "SELECT t.idx, t.key, t.state, t.error, r.summary "
            "FROM tasks t LEFT JOIN results r ON r.key = t.key "
            "WHERE t.job_id=? ORDER BY t.idx",
            (job_id,),
        )
        return [
            {
                "index": row["idx"],
                "key": row["key"],
                "state": row["state"],
                "error": row["error"],
                "summary": None if row["summary"] is None
                else json.loads(row["summary"]),
            }
            for row in rows
        ]

    def counts(self) -> Dict[str, int]:
        """Global task counts by state (the health document)."""
        counts = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for row in self.store.query(
            "SELECT state, COUNT(*) AS n FROM tasks GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    def job_counts(self) -> Dict[str, int]:
        """Global *job* counts by state (the ``repro_jobs_total`` metric)."""
        counts = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for row in self.store.query(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _record(self, row) -> JobRecord:
        counts = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for task_row in self.store.query(
            "SELECT state, COUNT(*) AS n FROM tasks WHERE job_id=? "
            "GROUP BY state",
            (row["id"],),
        ):
            counts[task_row["state"]] = task_row["n"]
        return JobRecord(
            id=row["id"],
            job_hash=row["job_hash"],
            state=row["state"],
            base_seed=row["base_seed"],
            num_tasks=row["num_tasks"],
            counts=counts,
            error=row["error"],
        )

    @staticmethod
    def _finalize_job(conn, job_id: int) -> None:
        """Derive (and persist) a job's state from its task states."""
        states = {
            row["state"]: row["n"]
            for row in conn.execute(
                "SELECT state, COUNT(*) AS n FROM tasks WHERE job_id=? "
                "GROUP BY state",
                (job_id,),
            )
        }
        open_tasks = states.get(QUEUED, 0) + states.get(RUNNING, 0)
        if open_tasks:
            return
        if states.get(FAILED, 0):
            final = FAILED
        elif states.get(CANCELLED, 0):
            final = CANCELLED
        else:
            final = DONE
        conn.execute(
            "UPDATE jobs SET state=?, finished_at=? WHERE id=?",
            (final, time.time(), job_id),
        )

    def _finalize_jobs_of_absorbed(self, conn) -> None:
        """Finalize every job that no longer has open tasks."""
        for row in conn.execute(
            "SELECT DISTINCT job_id FROM tasks WHERE job_id IN "
            "(SELECT id FROM jobs WHERE state NOT IN (?,?,?))",
            TERMINAL_STATES,
        ).fetchall():
            self._finalize_job(conn, row["job_id"])


__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "DEFAULT_MAX_ATTEMPTS",
    "TaskRecord",
    "JobRecord",
    "SubmitReceipt",
    "job_hash_for",
    "JobQueue",
]
