"""SQLite-backed result/design store (the service's durable backbone).

One database file holds everything the experiment service persists: the
summary-row result cache, the AdEle offline-design cache, and the durable
job queue (tables owned by :mod:`repro.service.queue` but migrated here so
there is a single schema authority).  Compared with the JSON-per-key caches
of :mod:`repro.exec.cache` it adds what a long-running, many-client service
needs:

* **Concurrent safety** -- WAL journal mode plus a generous busy timeout
  make simultaneous readers/writers from many threads *and* processes safe;
  the JSON backend only guarantees atomic single-entry replacement (two
  processes may duplicate work; a reader listing the directory races
  writers).
* **Identical keys** -- rows are indexed by the exact canonical hashes the
  JSON caches use (:func:`repro.exec.cache.config_key` for results,
  :func:`repro.exec.cache.design_key_hash` for designs), so warm JSON
  entries migrate losslessly via :func:`migrate_json_cache` and every
  cache-identity test keeps passing against either backend.
* **Schema migrations** -- ``PRAGMA user_version`` tracks the schema; new
  versions append to :data:`MIGRATIONS` and existing databases upgrade in
  one transaction on open.

:class:`SqliteResultCache` and :class:`SqliteDesignCache` implement the same
interfaces as :class:`~repro.exec.cache.ResultCache` and
:class:`~repro.exec.cache.DiskDesignCache`, so :class:`ExperimentBatch`,
the CLI and the benchmarks work with either backend unchanged (see
``--cache-backend`` and :func:`repro.exec.cache.open_caches`).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.runner import DesignCache, DesignKey
from repro.core.pipeline import AdEleDesign
from repro.obs.tracing import span
from repro.exec.cache import (
    design_from_record,
    design_key_hash,
    design_to_record,
    iter_json_cache_entries,
)

#: File name of the service database inside a ``--cache-dir``.
DEFAULT_DB_FILENAME = "repro.sqlite3"

#: Ordered schema migrations; ``PRAGMA user_version`` records how many have
#: been applied.  Append-only -- never edit an entry that shipped.
MIGRATIONS: Tuple[Tuple[str, ...], ...] = (
    # v1: result + design caches.
    (
        """
        CREATE TABLE results (
            key        TEXT PRIMARY KEY,
            config     TEXT,
            summary    TEXT NOT NULL,
            created_at REAL NOT NULL DEFAULT (strftime('%s','now'))
        )
        """,
        """
        CREATE TABLE designs (
            key_hash   TEXT PRIMARY KEY,
            record     TEXT NOT NULL,
            created_at REAL NOT NULL DEFAULT (strftime('%s','now'))
        )
        """,
    ),
    # v2: durable job queue (jobs + per-task completion records).
    (
        """
        CREATE TABLE jobs (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            job_hash    TEXT NOT NULL UNIQUE,
            state       TEXT NOT NULL DEFAULT 'queued',
            base_seed   INTEGER,
            num_tasks   INTEGER NOT NULL,
            error       TEXT,
            created_at  REAL NOT NULL DEFAULT (strftime('%s','now')),
            finished_at REAL
        )
        """,
        """
        CREATE TABLE tasks (
            job_id     INTEGER NOT NULL REFERENCES jobs(id),
            idx        INTEGER NOT NULL,
            key        TEXT NOT NULL,
            spec       TEXT NOT NULL,
            state      TEXT NOT NULL DEFAULT 'queued',
            attempts   INTEGER NOT NULL DEFAULT 0,
            worker     TEXT,
            claimed_at REAL,
            error      TEXT,
            PRIMARY KEY (job_id, idx)
        )
        """,
        "CREATE INDEX tasks_by_state ON tasks(state)",
        "CREATE INDEX tasks_by_key ON tasks(key)",
    ),
)

SCHEMA_VERSION = len(MIGRATIONS)


def _dumps(value: Any) -> str:
    """Canonical JSON text (sorted keys; ``Infinity`` allowed -- saturated
    runs carry infinite latencies and must round-trip like the JSON caches)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class SqliteStore:
    """One SQLite database shared by caches, queue and HTTP layer.

    Connections are per-thread (SQLite objects must not hop threads) and
    lazily opened; WAL mode means readers never block the writer and vice
    versa, and ``busy_timeout`` turns inter-process write contention into
    short waits instead of ``database is locked`` errors.

    Args:
        path: Database file path; parent directories are created.  The
            special name ``":memory:"`` is rejected -- a memory database is
            per-connection and this store is explicitly shared.
    """

    def __init__(self, path: str) -> None:
        if path == ":memory:":
            raise ValueError("SqliteStore needs a file path (shared across "
                             "threads/processes); ':memory:' is per-connection")
        self.path = os.path.abspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._local = threading.local()
        # Open (and migrate) eagerly so schema errors surface at
        # construction, not at first use on some worker thread.
        self._connect()

    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        conn: Optional[sqlite3.Connection] = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA foreign_keys=ON")
        self._local.conn = conn
        self._migrate(conn)
        return conn

    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version >= SCHEMA_VERSION:
            return
        # BEGIN IMMEDIATE serializes concurrent first-openers; re-read the
        # version inside the transaction in case another process migrated
        # while this one waited for the lock.
        conn.execute("BEGIN IMMEDIATE")
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            for index in range(version, SCHEMA_VERSION):
                for statement in MIGRATIONS[index]:
                    conn.execute(statement)
            conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            conn.commit()
        except BaseException:
            conn.rollback()
            raise

    def connection(self) -> sqlite3.Connection:
        """This thread's connection (opened and migrated on first use)."""
        return self._connect()

    def execute(self, sql: str, params: Tuple = ()) -> sqlite3.Cursor:
        """Run one autocommitted statement on this thread's connection."""
        conn = self._connect()
        cursor = conn.execute(sql, params)
        conn.commit()
        return cursor

    def query(self, sql: str, params: Tuple = ()) -> List[sqlite3.Row]:
        """Run a read-only statement and fetch every row."""
        return self._connect().execute(sql, params).fetchall()

    def transaction(self) -> "_Transaction":
        """An ``IMMEDIATE`` write transaction context manager."""
        return _Transaction(self._connect())

    def close(self) -> None:
        """Close this thread's connection (other threads' stay open)."""
        conn: Optional[sqlite3.Connection] = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------ #
    # Result rows
    # ------------------------------------------------------------------ #
    def get_result(self, key: str) -> Optional[Dict[str, float]]:
        rows = self.query("SELECT summary FROM results WHERE key=?", (key,))
        if not rows:
            return None
        return json.loads(rows[0]["summary"])

    def put_result(
        self,
        key: str,
        config_data: Optional[Dict[str, Any]],
        summary: Dict[str, float],
    ) -> None:
        # Entries are deterministic functions of their key, so last-write-
        # wins replacement is harmless (same contract as the JSON backend).
        self.execute(
            "INSERT OR REPLACE INTO results(key, config, summary) VALUES(?,?,?)",
            (key, None if config_data is None else _dumps(config_data),
             _dumps(summary)),
        )

    def result_count(self) -> int:
        return self.query("SELECT COUNT(*) AS n FROM results")[0]["n"]

    def iter_results(
        self,
    ) -> Iterator[Tuple[str, Optional[Dict[str, Any]], Dict[str, float]]]:
        """Every result row as ``(key, config, summary)``, key-ordered.

        The merge path (:func:`repro.exec.aggregate.merge_results`) walks
        this to fold a SQLite shard into another backend.
        """
        for row in self.query(
            "SELECT key, config, summary FROM results ORDER BY key"
        ):
            config = None if row["config"] is None else json.loads(row["config"])
            yield row["key"], config, json.loads(row["summary"])

    def clear_results(self) -> None:
        self.execute("DELETE FROM results")

    # ------------------------------------------------------------------ #
    # Design records
    # ------------------------------------------------------------------ #
    def get_design_record(self, key_hash: str) -> Optional[Dict[str, Any]]:
        rows = self.query(
            "SELECT record FROM designs WHERE key_hash=?", (key_hash,)
        )
        if not rows:
            return None
        return json.loads(rows[0]["record"])

    def put_design_record(self, key_hash: str, record: Dict[str, Any]) -> None:
        self.execute(
            "INSERT OR REPLACE INTO designs(key_hash, record) VALUES(?,?)",
            (key_hash, _dumps(record)),
        )

    def design_count(self) -> int:
        return self.query("SELECT COUNT(*) AS n FROM designs")[0]["n"]

    def iter_design_records(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Every design row as ``(key_hash, record)``, hash-ordered."""
        for row in self.query(
            "SELECT key_hash, record FROM designs ORDER BY key_hash"
        ):
            yield row["key_hash"], json.loads(row["record"])

    def clear_designs(self) -> None:
        self.execute("DELETE FROM designs")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def table_counts(self) -> Dict[str, int]:
        """Row counts of every schema table (``cache stats`` / ``/health``)."""
        return {
            table: self.query(f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
            for table in ("results", "designs", "jobs", "tasks")
        }


class _Transaction:
    """``with store.transaction() as conn:`` -- IMMEDIATE begin, commit on
    success, rollback on error.  IMMEDIATE takes the write lock up front so
    read-then-write sequences (queue claims) are atomic across processes."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.commit()
        else:
            self._conn.rollback()


# ---------------------------------------------------------------------- #
# Cache adapters (drop-in for the JSON backends)
# ---------------------------------------------------------------------- #
class SqliteResultCache:
    """:class:`~repro.exec.cache.ResultCache` interface over a SqliteStore.

    Keys are the same canonical config hashes; a small per-instance memory
    layer keeps warm re-reads free, exactly like the JSON backend.
    """

    def __init__(self, store: SqliteStore) -> None:
        self.store = store
        self._memory: Dict[str, Dict[str, float]] = {}

    def get(self, key: str) -> Optional[Dict[str, float]]:
        """The cached summary row for a config hash, or ``None``."""
        with span("cache.get", backend="sqlite", key=key[:12]) as record_span:
            if key in self._memory:
                if record_span is not None:
                    record_span.args["hit"] = True
                return dict(self._memory[key])
            summary = self.store.get_result(key)
            if summary is not None:
                self._memory[key] = dict(summary)
            if record_span is not None:
                record_span.args["hit"] = summary is not None
            return summary

    def put(
        self,
        key: str,
        config_data: Optional[Dict[str, Any]],
        summary: Dict[str, float],
    ) -> None:
        """Store a summary row (with its canonical config, for debugging)."""
        with span("cache.put", backend="sqlite", key=key[:12]):
            self._memory[key] = dict(summary)
            self.store.put_result(key, config_data, summary)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.store.result_count()

    def clear(self) -> None:
        """Drop every entry (memory and database)."""
        self._memory.clear()
        self.store.clear_results()


class SqliteDesignCache(DesignCache):
    """:class:`~repro.analysis.runner.DesignCache` over a SqliteStore.

    Records use the exact JSON document format of
    :class:`~repro.exec.cache.DiskDesignCache` (format 2), keyed by the same
    :func:`~repro.exec.cache.design_key_hash`, with the same persistability
    rule: designs keyed by a content-hashed explicit traffic matrix stay
    memory-only.
    """

    def __init__(self, store: SqliteStore) -> None:
        super().__init__()
        self.store = store

    def get(self, key: DesignKey) -> Optional[AdEleDesign]:
        design = super().get(key)
        if design is not None:
            return design
        if not _design_persistable(key):
            return None
        record = self.store.get_design_record(design_key_hash(key))
        if not isinstance(record, dict) or record.get("format") != 2:
            return None
        design = design_from_record(record)
        super().put(key, design)
        return design

    def put(self, key: DesignKey, design: AdEleDesign) -> None:
        super().put(key, design)
        if _design_persistable(key):
            self.store.put_design_record(
                design_key_hash(key), design_to_record(key, design)
            )

    def clear(self) -> None:
        super().clear()
        self.store.clear_designs()


def _design_persistable(key: DesignKey) -> bool:
    # Same rule as DiskDesignCache._persistable, without reaching into a
    # private method of a sibling class.
    from repro.exec.cache import DiskDesignCache

    return DiskDesignCache._persistable(key)


# ---------------------------------------------------------------------- #
# JSON -> SQLite migration
# ---------------------------------------------------------------------- #
#: Backward-compatible alias; the helper now lives in repro.exec.cache so
#: the merge path can use it without importing the service layer.
_iter_json_entries = iter_json_cache_entries


def migrate_json_cache(cache_dir: str, store: SqliteStore) -> Dict[str, int]:
    """Carry a warm JSON cache directory into a SQLite store.

    Every ``result-<key>.json`` and ``design-<hash>.json`` entry is inserted
    under its *unchanged* key/hash, so anything that hit the JSON cache hits
    the SQLite cache afterwards.  Unreadable files are skipped (same
    tolerance as the JSON readers); existing SQLite rows with the same key
    are left alone -- both backends store deterministic functions of the
    key, so neither copy can be stale.

    Returns:
        ``{"results": n, "designs": n, "skipped": n}`` migration counts.
    """
    migrated = {"results": 0, "designs": 0, "skipped": 0}
    for key, record in _iter_json_entries(cache_dir, "result-"):
        summary = record.get("summary")
        if not isinstance(summary, dict):
            migrated["skipped"] += 1
            continue
        if store.get_result(key) is None:
            store.put_result(key, record.get("config"), summary)
            migrated["results"] += 1
    for key_hash, record in _iter_json_entries(cache_dir, "design-"):
        if record.get("format") != 2:
            migrated["skipped"] += 1
            continue
        if store.get_design_record(key_hash) is None:
            store.put_design_record(key_hash, record)
            migrated["designs"] += 1
    return migrated


__all__ = [
    "DEFAULT_DB_FILENAME",
    "SCHEMA_VERSION",
    "SqliteStore",
    "SqliteResultCache",
    "SqliteDesignCache",
    "migrate_json_cache",
]
