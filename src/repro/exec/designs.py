"""Parallel offline-design batches (DesignSpec grids over worker processes).

Offline designs were computed serially -- one :func:`design_for` call at a
time -- even though a placement study wants a whole grid of
:class:`~repro.spec.DesignSpec` values (placements x optimizers x subset
caps).  :class:`DesignBatch` mirrors :class:`~repro.exec.batch.ExperimentBatch`
for that grid:

* uncached designs fan out over a ``ProcessPoolExecutor`` (serial fallback
  at ``workers=1``), deduplicated by design-cache key;
* workers return the *persisted record form*
  (:func:`repro.exec.cache.design_to_record` -- plain JSON-native dicts, so
  nothing unpicklable crosses the process boundary) and the parent rebuilds
  and caches the designs;
* with a batch-level ``base_seed``, each design's optimizer seed is
  *derived* from the canonical design key plus the base seed
  (:func:`derive_design_seed`), so -- exactly like experiment batches --
  two batches with the same base seed assign identical seeds to identical
  designs regardless of worker count or submission order.

Determinism: a design batch produces bit-identical archives whether it runs
serially, with N workers, or from a warm design cache (pinned by
``tests/test_design_batch.py``).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.runner import (
    DesignCache,
    DesignKey,
    design_for,
    design_key_for,
)
from repro.core.optimizers import OPTIMIZER_REGISTRY, canonical_optimizer_options
from repro.core.pipeline import AdEleDesign
from repro.exec.cache import (
    SEED_SPACE,
    _jsonify,
    design_from_record,
    design_to_record,
)
from repro.spec import DesignSpec


def derive_design_seed(spec: DesignSpec, base_seed: int) -> int:
    """Deterministic per-design optimizer seed from the canonical key.

    The spec's own ``options["seed"]`` is *replaced* by ``base_seed``
    before hashing (the analogue of :func:`repro.exec.cache.derive_seed`),
    so the derived seed depends only on *what* is optimized plus the
    batch-level base seed.
    """
    canonical = OPTIMIZER_REGISTRY.entry(spec.optimizer).name
    options = canonical_optimizer_options(canonical, spec.options)
    options["seed"] = int(base_seed)
    key = design_key_for(spec.with_(options=options))
    blob = json.dumps(_jsonify(key), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_SPACE


@dataclass(frozen=True)
class _DesignTask:
    """One design shipped to a worker (spec already seed-derived)."""

    spec: DesignSpec
    plugins: Tuple[str, ...] = ()


@dataclass
class DesignOutcome:
    """Result of one batched offline design.

    Attributes:
        spec: The effective design spec (seed already derived).
        key: The design-cache key.
        design: The completed design (archive, representatives, selected).
        from_cache: ``True`` when no search ran for this spec.
    """

    spec: DesignSpec
    key: DesignKey
    design: AdEleDesign
    from_cache: bool


def _execute_design(task: _DesignTask) -> Dict[str, Any]:
    """Run one offline design end to end (module-level so it pickles)."""
    for module in task.plugins:
        importlib.import_module(module)
    # A fresh cache: the worker must not consult its own process-wide
    # default (inherited under fork), or warm parent state would make
    # "executed" outcomes silently cache-dependent.
    design = design_for(task.spec, cache=DesignCache())
    return design_to_record(design_key_for(task.spec), design)


class DesignBatch:
    """Run a grid of :class:`DesignSpec` values, in parallel and cached.

    Args:
        specs: Design specs (any iterable; order preserved in outcomes).
        workers: Process count (``1`` = serial fallback, no subprocess).
        cache: Design cache consulted before and populated after execution;
            defaults to a fresh in-memory cache (which still deduplicates
            identical specs within the batch).  Pass a disk- or
            SQLite-backed cache to persist.
        base_seed: When given, each spec's optimizer seed is replaced by
            :func:`derive_design_seed`; when ``None``, specs keep their
            own seeds.
        plugins: Module names imported inside workers before specs resolve
            (custom placements/patterns/optimizers under ``spawn``).
    """

    def __init__(
        self,
        specs: Iterable[DesignSpec],
        workers: int = 1,
        cache: Optional[DesignCache] = None,
        base_seed: Optional[int] = None,
        plugins: Sequence[str] = (),
    ) -> None:
        self.specs: List[DesignSpec] = list(specs)
        for spec in self.specs:
            if not isinstance(spec, DesignSpec):
                raise TypeError(f"expected DesignSpec, got {type(spec).__name__}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else DesignCache()
        self.base_seed = base_seed
        self.plugins: Tuple[str, ...] = tuple(plugins)
        #: Number of searches actually executed by the last ``run()``.
        self.last_executed = 0
        #: Number of outcomes served from cache by the last ``run()``.
        self.last_cached = 0

    def effective_specs(self) -> List[DesignSpec]:
        """Specs with batch-level seed derivation applied."""
        if self.base_seed is None:
            return list(self.specs)
        effective = []
        for spec in self.specs:
            canonical = OPTIMIZER_REGISTRY.entry(spec.optimizer).name
            options = canonical_optimizer_options(canonical, spec.options)
            options["seed"] = derive_design_seed(spec, self.base_seed)
            effective.append(spec.with_(options=options))
        return effective

    def run(self) -> List[DesignOutcome]:
        """Execute the batch and return outcomes in input order."""
        specs = self.effective_specs()
        keys = [design_key_for(spec) for spec in specs]
        outcomes: List[Optional[DesignOutcome]] = [None] * len(specs)

        pending: Dict[DesignKey, _DesignTask] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if key in pending:
                continue  # deduplicated: identical design already queued
            design = self.cache.get(key)
            if design is not None:
                outcomes[index] = DesignOutcome(
                    spec=spec, key=key, design=design, from_cache=True
                )
            else:
                pending[key] = _DesignTask(spec=spec, plugins=self.plugins)

        executed: Dict[DesignKey, AdEleDesign] = {}
        if pending:
            tasks = list(pending.values())
            if self.workers == 1 or len(tasks) == 1:
                records = [_execute_design(task) for task in tasks]
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks))
                ) as pool:
                    records = list(pool.map(_execute_design, tasks))
            for key, record in zip(pending, records):
                design = design_from_record(record)
                executed[key] = design
                self.cache.put(key, design)

        self.last_executed = len(executed)
        self.last_cached = 0
        freshly_reported: set = set()
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if outcomes[index] is not None:
                self.last_cached += 1
                continue
            if key in executed and key not in freshly_reported:
                freshly_reported.add(key)
                outcomes[index] = DesignOutcome(
                    spec=spec, key=key, design=executed[key], from_cache=False
                )
            else:
                # Duplicate of an earlier identical spec in this batch.
                design = self.cache.get(key)
                assert design is not None
                outcomes[index] = DesignOutcome(
                    spec=spec, key=key, design=design, from_cache=True
                )
                self.last_cached += 1
        return [outcome for outcome in outcomes if outcome is not None]


def run_design_batch(
    specs: Iterable[DesignSpec],
    workers: int = 1,
    cache: Optional[DesignCache] = None,
    base_seed: Optional[int] = None,
    plugins: Sequence[str] = (),
) -> List[DesignOutcome]:
    """Convenience wrapper: build a :class:`DesignBatch` and run it."""
    batch = DesignBatch(
        specs, workers=workers, cache=cache, base_seed=base_seed, plugins=plugins
    )
    return batch.run()


__all__ = [
    "derive_design_seed",
    "DesignOutcome",
    "DesignBatch",
    "run_design_batch",
]
