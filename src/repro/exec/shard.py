"""Deterministic sharding of experiment grids by canonical config hash.

A *shard* is one of ``N`` disjoint, deterministic slices of an experiment
grid.  Membership is a pure function of the task's canonical cache key
(:func:`repro.exec.cache.config_key`): key ``k`` belongs to shard
``int(k, 16) % N``.  Because the key already captures the *effective* spec
(seed derived, aliases collapsed, defaults dropped), any two processes --
on any hosts, in any order, with any worker counts -- agree on which shard
owns which spec without coordinating.  That gives the batch engine
horizontal scale past one process pool:

* ``repro sweep --shard K/N`` (and ``run`` / ``scenario``) makes worker
  ``K`` simulate only its slice, writing its own cache shard;
* ``repro merge`` folds the shard caches back into one result set
  (:func:`repro.exec.aggregate.merge_results`), bit-identical to an
  unsharded run of the same grid;
* ``repro serve --shard K/N`` makes a service daemon claim only its
  slice of the durable job queue, so N daemons over N copies of a job
  split it the same way the CLI does.

The invariant every consumer relies on: **sharded + merged == unsharded,
bit for bit.**  Each spec is a deterministic function of its key, each key
belongs to exactly one shard, so the union of shard outputs is exactly the
unsharded output -- sharding restructures *where* work runs, never *what*
it computes.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

#: ``K/N`` with 1-based K.
_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


def shard_of(key: str, num_shards: int) -> int:
    """The 0-based shard owning a canonical cache key (sha256 hex).

    Uses the full hash value, so slices stay balanced even for adversarial
    grids; two calls on any host always agree.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return int(key, 16) % num_shards


@dataclass(frozen=True)
class ShardSpec:
    """One slice of an N-way deterministic partition.

    Attributes:
        index: 1-based shard number (matches the CLI's ``--shard K/N``).
        count: Total number of shards.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be >= 1")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    def owns(self, key: str) -> bool:
        """Whether this shard owns a canonical cache key."""
        return shard_of(key, self.count) == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(text: str) -> ShardSpec:
    """Parse a ``K/N`` shard argument (1-based K).

    Raises:
        ValueError: Malformed text or out-of-range K/N.
    """
    match = _SHARD_RE.match(text or "")
    if match is None:
        raise ValueError(
            f"shard must look like K/N (e.g. 2/4), got {text!r}"
        )
    return ShardSpec(index=int(match.group(1)), count=int(match.group(2)))


def partition(keys: Iterable[str], num_shards: int) -> List[List[str]]:
    """Split keys into their ``num_shards`` slices (index ``k`` = shard k+1).

    Every key lands in exactly one slice; relative order within a slice is
    preserved.
    """
    slices: List[List[str]] = [[] for _ in range(num_shards)]
    for key in keys:
        slices[shard_of(key, num_shards)].append(key)
    return slices


def shard_counts(keys: Sequence[str], num_shards: int) -> Dict[int, int]:
    """``{1-based shard index: owned key count}`` for balance inspection."""
    counts = {index: 0 for index in range(1, num_shards + 1)}
    for key in keys:
        counts[shard_of(key, num_shards) + 1] += 1
    return counts


def shard_cache_dir(base_dir: str, shard: ShardSpec) -> str:
    """Conventional per-shard cache directory under a shared base.

    Purely a naming convention (``<base>/shard-KofN``) for single-host
    demos and benches; multi-host deployments typically point every shard
    at its own local directory and merge afterwards.  Because entries are
    keyed by canonical hash, shards may even share one directory safely --
    merging is then a no-op.
    """
    return os.path.join(base_dir, f"shard-{shard.index}of{shard.count}")


__all__ = [
    "ShardSpec",
    "shard_of",
    "parse_shard",
    "partition",
    "shard_counts",
    "shard_cache_dir",
]
