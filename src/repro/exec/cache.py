"""Canonical configuration hashing, deterministic seeding and disk caches.

The parallel experiment engine (:mod:`repro.exec.batch`) needs three things
from this module:

* a *canonical serialization* of :class:`~repro.analysis.runner.ExperimentConfig`
  -- a JSON-stable dictionary that is independent of field/keyword order,
  round-trips through JSON, and captures custom placements structurally (mesh
  shape + elevator columns) so two different placements sharing a name never
  collide (:func:`canonical_config`, :func:`config_key`);
* a *deterministic per-task seed* derived from that serialization plus a
  batch-level base seed (:func:`derive_seed`), so re-runs -- serial, parallel
  or cross-process -- regenerate bit-identical traffic;
* *disk-backed caches* keyed by the canonical hash: :class:`ResultCache`
  persists ``SimulationResult.summary()`` rows and :class:`DiskDesignCache`
  persists completed AdEle offline designs, so warm re-runs and cross-process
  sweeps skip finished work entirely.

Cache files are plain JSON (one file per entry, written atomically via
rename), which keeps concurrent writers from different worker processes safe:
the worst case is two processes computing the same entry and one rename
winning, which is harmless because entries are deterministic functions of
their key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.runner import (
    DEFAULT_OFFLINE_AMOSA,
    DesignCache,
    DesignKey,
    ExperimentConfig,
    as_spec,
)
from repro.core.amosa import AmosaResult, ArchiveEntry
from repro.core.optimizers import OPTIMIZER_REGISTRY, canonical_optimizer_options
from repro.core.pipeline import AdEleDesign
from repro.core.subset_search import ElevatorSubsetProblem, SubsetSolution
from repro.obs.tracing import span
from repro.registry import Registry
from repro.routing.base import POLICY_REGISTRY
from repro.sim.backends import BACKEND_REGISTRY, DEFAULT_BACKEND
from repro.spec import ADELE_POLICY_NAMES, DesignSpec, ExperimentSpec
from repro.topology.elevators import PLACEMENT_REGISTRY, ElevatorPlacement
from repro.topology.mesh3d import Mesh3D
from repro.traffic.applications import APPLICATION_REGISTRY
from repro.traffic.patterns import PATTERN_REGISTRY, UniformTraffic

#: Either experiment description accepted by the hashing helpers.
ConfigLike = Union[ExperimentSpec, ExperimentConfig]

#: Maximum derived seed (exclusive); fits ``random.Random`` comfortably and
#: keeps seeds readable in logs.
SEED_SPACE = 2 ** 32


# ---------------------------------------------------------------------- #
# Canonical serialization and hashing
# ---------------------------------------------------------------------- #
def _canonical_placement(placement: ElevatorPlacement) -> Dict[str, Any]:
    """Structural serialization of a placement (name alone is ambiguous)."""
    return {
        "name": placement.name,
        "mesh": list(placement.mesh.shape),
        "columns": [list(column) for column in placement.columns()],
    }


def _canonical_name(registry: Registry, name: str, fallback_case: Any) -> str:
    """Resolve a component name to its canonical registered spelling.

    Aliases and case variants collapse onto the entry's canonical name;
    names not (yet) registered fall back to plain case normalization so
    keys are at least case-stable.
    """
    if name in registry:
        return registry.entry(name).name
    return fallback_case(name)


def canonical_config(config: ConfigLike) -> Dict[str, Any]:
    """The canonical JSON-native dictionary of an experiment.

    This is :meth:`repro.spec.ExperimentSpec.to_dict` with component names
    normalized to their canonical registered spelling (``AdEle`` ->
    ``adele``, the ``fluid.`` alias -> ``fluidanimate``) -- the single
    serialization shared by cache keys, derived seeds and ``--spec`` files.
    Legacy :class:`~repro.analysis.runner.ExperimentConfig` values are
    converted through their spec form first, so a flat config and its
    equivalent spec hash identically.  The result is independent of how the
    experiment was constructed and round-trips through
    ``json.dumps``/``json.loads`` without loss: all values are
    ``str``/``int``/``float``/``None`` or nested lists/dicts thereof.
    """
    data = as_spec(config).to_dict()
    if data["placement"]["mesh"] is None:
        # Named placements resolve case-insensitively through the registry;
        # structural ones keep their label verbatim (it is an identity tag,
        # the mesh/columns carry the structure).
        data["placement"]["name"] = _canonical_name(
            PLACEMENT_REGISTRY, data["placement"]["name"], str.upper
        )
    data["policy"]["name"] = _canonical_name(
        POLICY_REGISTRY, data["policy"]["name"], str.lower
    )
    pattern = data["traffic"]["pattern"]
    if pattern in APPLICATION_REGISTRY:
        data["traffic"]["pattern"] = APPLICATION_REGISTRY.entry(pattern).name
    else:
        data["traffic"]["pattern"] = _canonical_name(
            PATTERN_REGISTRY, pattern, str.lower
        )
    # Backends are result-equivalent, so the canonical form drops the key
    # entirely when an alias resolves to the default kernel -- a spec that
    # spells the default differently must not split the cache (and specs
    # predating the backend field hash identically to default-backend ones).
    backend = data["sim"].get("backend")
    if backend is not None:
        canonical_backend = _canonical_name(BACKEND_REGISTRY, backend, str.lower)
        if canonical_backend == DEFAULT_BACKEND:
            del data["sim"]["backend"]
        else:
            data["sim"]["backend"] = canonical_backend
    # A nested design spec (present only when explicitly set) normalizes its
    # optimizer name/options and traffic label the same way: aliases and
    # explicitly spelled defaults never split the cache.
    design = data.get("design")
    if design is not None:
        optimizer = _canonical_name(
            OPTIMIZER_REGISTRY, design.get("optimizer", "amosa"), str.lower
        )
        design["optimizer"] = optimizer
        design["traffic"] = _canonical_name(
            PATTERN_REGISTRY, design.get("traffic", "uniform"), str.lower
        )
        if optimizer in OPTIMIZER_REGISTRY:
            try:
                design["options"] = canonical_optimizer_options(
                    optimizer, design.get("options") or {}
                )
            except ValueError:
                # Unknown option names for this optimizer: keep them verbatim
                # (validation happens at run time, not hash time).
                pass
        if _design_is_redundant(design, data["policy"]):
            del data["design"]
    # Scenario events naming a traffic pattern (traffic-phase) normalize it
    # like the experiment's own traffic field: aliases and case variants
    # never split the cache.  The scenario key itself exists only when a
    # timeline is attached, so plain specs keep their historical hash.
    scenario = data.get("scenario")
    if scenario is not None:
        for event in scenario.get("events", ()):
            if not isinstance(event, dict) or event.get("kind") != "traffic-phase":
                # Only the bundled traffic-phase kind is known to carry a
                # registry pattern name; a custom kind's 'pattern' field may
                # mean something else entirely and must hash verbatim.
                continue
            pattern = event.get("pattern")
            if isinstance(pattern, str):
                if pattern in APPLICATION_REGISTRY:
                    event["pattern"] = APPLICATION_REGISTRY.entry(pattern).name
                else:
                    event["pattern"] = _canonical_name(
                        PATTERN_REGISTRY, pattern, str.lower
                    )
    return data


def _design_is_redundant(design: Dict[str, Any], policy: Dict[str, Any]) -> bool:
    """Whether a (canonicalized) nested design cannot affect the run.

    Two cases collapse onto the design-free serialization so that spelling
    the implicit behaviour explicitly never splits the cache:

    * the policy does not use an offline design at all (non-AdEle policies
      ignore the field entirely);
    * the design spells out exactly the defaults the design-free path would
      use -- same assumed traffic, optimizer, resolved options, cap and
      selection -- *and* the policy options do not carry their own
      ``max_subset_size`` (with no design, that option would win; with one,
      the design's cap wins, so the two forms only coincide without it).
    """
    if str(policy.get("name", "")).lower() not in ADELE_POLICY_NAMES:
        return True
    if "max_subset_size" in (policy.get("options") or {}):
        return False
    defaults = DesignSpec().to_dict(include_placement=False)
    defaults["options"] = canonical_optimizer_options("amosa", {})
    return design == defaults


def canonical_json(config: ConfigLike) -> str:
    """The canonical JSON string of an experiment (sorted keys, no spaces)."""
    return json.dumps(canonical_config(config), sort_keys=True, separators=(",", ":"))


def config_key(config: ConfigLike, extra: Optional[Dict[str, Any]] = None) -> str:
    """Content hash of an experiment -- the cache key.

    Args:
        extra: Optional JSON-native dictionary of additional inputs the run
            depends on (e.g. non-default energy-model parameters); mixed into
            the hash so runs differing only in those inputs never share a
            cache entry.
    """
    blob = canonical_json(config)
    if extra:
        blob += json.dumps(extra, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def structural_config(config: ConfigLike) -> Dict[str, Any]:
    """The canonical dictionary of an experiment *minus its seed*.

    Two experiments with the same structural configuration simulate the
    same mesh, placement, policy, traffic shape, cycles and scenario --
    they differ only in which RNG streams they draw.  Such seed-replicas
    can share one replica-batched kernel pass (see
    :mod:`repro.sim.backends.batched`); everything else about them (their
    ``config_key``, derived seed, cache entry) stays per-spec.
    """
    payload = canonical_config(config)
    payload["sim"] = dict(payload["sim"])
    payload["sim"].pop("seed", None)
    return payload


def structural_key(config: ConfigLike, extra: Optional[Dict[str, Any]] = None) -> str:
    """Content hash of :func:`structural_config` -- the replica-group key.

    ``extra`` is mixed in exactly as in :func:`config_key`, so specs whose
    results depend on different out-of-spec inputs (e.g. energy-model
    parameters) never land in the same replica group.
    """
    blob = json.dumps(
        structural_config(config), sort_keys=True, separators=(",", ":")
    )
    if extra:
        blob += json.dumps(extra, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_from_canonical(data: Dict[str, Any]) -> ExperimentSpec:
    """Rebuild a typed spec from its canonical dictionary."""
    return ExperimentSpec.from_dict(data)


def config_from_canonical(data: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild a legacy flat configuration from a canonical dictionary.

    Provided for callers still holding :class:`ExperimentConfig`; new code
    should use :func:`spec_from_canonical`.
    """
    return ExperimentConfig.from_spec(spec_from_canonical(data))


def derive_seed(config: ConfigLike, base_seed: int = 0) -> int:
    """Deterministic per-task seed from an experiment's canonical form.

    The experiment's own ``seed`` field is *replaced* by ``base_seed``
    before hashing, so the derived seed depends only on *what* is simulated
    plus the batch-level base seed -- two batches with the same base seed
    assign identical seeds to identical tasks regardless of process, worker
    count or submission order.  The simulation *backend* is excluded for
    the same reason: backends are result-equivalent, so the same experiment
    run on different kernels must draw the same traffic.
    """
    payload = canonical_config(config)
    payload["sim"] = dict(payload["sim"], seed=int(base_seed))
    payload["sim"].pop("backend", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_SPACE


# ---------------------------------------------------------------------- #
# Atomic JSON helpers
# ---------------------------------------------------------------------- #
def _write_json_atomic(path: str, payload: Any) -> None:
    """Write JSON to ``path`` via a temp file + rename (crash/race safe)."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _read_json(path: str) -> Optional[Any]:
    """Load JSON from ``path``; ``None`` when missing or unreadable."""
    try:
        with open(path, "r") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def iter_json_cache_entries(
    cache_dir: str, prefix: str
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Walk a JSON cache directory's ``<prefix><key>.json`` entries.

    Yields ``(key, record)`` pairs in sorted-filename order, skipping
    unreadable or non-dict files (same tolerance as the cache readers).
    Used by the SQLite migration and the shard-merge path, which both need
    to enumerate a cache directory rather than probe known keys.
    """
    if not os.path.isdir(cache_dir):
        return
    for name in sorted(os.listdir(cache_dir)):
        if not (name.startswith(prefix) and name.endswith(".json")):
            continue
        record = _read_json(os.path.join(cache_dir, name))
        if isinstance(record, dict):
            yield name[len(prefix):-len(".json")], record


def cache_stats(cache_dir: str, backend: str = "json") -> Dict[str, Any]:
    """Entry counts and on-disk bytes of a cache directory.

    Args:
        cache_dir: The ``--cache-dir`` to inspect.
        backend: ``json`` counts ``result-*.json`` / ``design-*.json`` files;
            ``sqlite`` counts table rows of the service database (bytes are
            the database file's size, WAL/SHM sidecars included).

    Returns:
        JSON-native ``{"backend", "cache_dir", "results", "designs",
        "bytes"}`` (plus ``"manifests"`` for the JSON backend, counting
        checkpoint manifests that are *not* part of the result set).
    """
    name = (backend or "json").strip().lower()
    if name not in _CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r}; registered: "
            f"{', '.join(available_cache_backends())}"
        )
    stats: Dict[str, Any] = {
        "backend": name,
        "cache_dir": cache_dir,
        "results": 0,
        "designs": 0,
        "bytes": 0,
    }
    if name == "sqlite":
        from repro.service.store import DEFAULT_DB_FILENAME, SqliteStore

        db_path = os.path.join(cache_dir, DEFAULT_DB_FILENAME)
        if os.path.exists(db_path):
            store = SqliteStore(db_path)
            tables = store.table_counts()
            stats["results"] = tables["results"]
            stats["designs"] = tables["designs"]
            stats["tables"] = tables
            for suffix in ("", "-wal", "-shm"):
                try:
                    stats["bytes"] += os.path.getsize(db_path + suffix)
                except OSError:
                    pass
        return stats
    stats["manifests"] = 0
    if os.path.isdir(cache_dir):
        for entry_name in os.listdir(cache_dir):
            if not entry_name.endswith(".json"):
                continue
            if entry_name.startswith("result-"):
                stats["results"] += 1
            elif entry_name.startswith("design-"):
                stats["designs"] += 1
            elif entry_name.startswith("manifest-"):
                stats["manifests"] += 1
            else:
                continue
            try:
                stats["bytes"] += os.path.getsize(
                    os.path.join(cache_dir, entry_name)
                )
            except OSError:
                pass
    return stats


# ---------------------------------------------------------------------- #
# Result cache
# ---------------------------------------------------------------------- #
class ResultCache:
    """Cache of ``SimulationResult.summary()`` rows keyed by config hash.

    Args:
        cache_dir: Optional directory for disk persistence.  Without it the
            cache is memory-only (still useful for deduplication inside one
            batch); with it entries survive the process and are shared by
            concurrent sweeps.  Non-finite floats (``inf`` latencies of
            saturated runs) survive the JSON round trip because Python's
            ``json`` emits/parses ``Infinity``.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self._memory: Dict[str, Dict[str, float]] = {}
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"result-{key}.json")

    def get(self, key: str) -> Optional[Dict[str, float]]:
        """The cached summary row for a config hash, or ``None``."""
        with span("cache.get", backend="json", key=key[:12]) as record_span:
            if key in self._memory:
                if record_span is not None:
                    record_span.args["hit"] = True
                return dict(self._memory[key])
            if self.cache_dir is not None:
                record = _read_json(self._path(key))
                if isinstance(record, dict) and "summary" in record:
                    summary = dict(record["summary"])
                    self._memory[key] = summary
                    if record_span is not None:
                        record_span.args["hit"] = True
                    return dict(summary)
            if record_span is not None:
                record_span.args["hit"] = False
            return None

    def put(
        self,
        key: str,
        config_data: Optional[Dict[str, Any]],
        summary: Dict[str, float],
    ) -> None:
        """Store a summary row (with its canonical config, for debugging)."""
        with span("cache.put", backend="json", key=key[:12]):
            self._memory[key] = dict(summary)
            if self.cache_dir is not None:
                _write_json_atomic(
                    self._path(key),
                    {"key": key, "config": config_data, "summary": summary},
                )

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.cache_dir is not None and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.startswith("result-") and name.endswith(".json"):
                    keys.add(name[len("result-"):-len(".json")])
        return len(keys)

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        if self.cache_dir is not None and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.startswith("result-") and name.endswith(".json"):
                    os.unlink(os.path.join(self.cache_dir, name))


# ---------------------------------------------------------------------- #
# Disk-backed design cache
# ---------------------------------------------------------------------- #
def design_to_record(key: DesignKey, design: AdEleDesign) -> Dict[str, Any]:
    """Serialize an AdEle offline design to a JSON-native record.

    The record keeps the final Pareto archive (per-router subsets +
    objectives), the representative/selected indices, the baseline point
    and the assumed-traffic label -- everything policies, figures and
    tables read from a design.  The raw annealing trajectory (`explored`
    samples) is not persisted.
    """
    archive: List[Dict[str, Any]] = []
    entry_index = {id(entry): i for i, entry in enumerate(design.result.archive)}
    for entry in design.result.archive:
        archive.append(
            {
                "subsets": {
                    str(node): list(subset)
                    for node, subset in entry.solution.subsets().items()
                },
                "objectives": list(entry.objectives),
            }
        )

    def _index_of(entry: ArchiveEntry) -> int:
        index = entry_index.get(id(entry))
        if index is None:  # entry equal to, but not identical with, an archive member
            for i, candidate in enumerate(design.result.archive):
                if candidate.objectives == entry.objectives:
                    return i
            return 0
        return index

    # make_key layout: (name, shape, columns, traffic_label, cap, ...).
    traffic_label = key[3] if len(key) > 3 and isinstance(key[3], str) else "uniform"
    record = {
        "format": 2,
        "key": list(_jsonify(key)),
        "placement": _canonical_placement(design.placement),
        "traffic": traffic_label,
        "max_subset_size": design.problem.max_subset_size,
        "archive": archive,
        "representatives": [_index_of(e) for e in design.representatives],
        "selected": _index_of(design.selected),
        "baseline_objectives": list(design.baseline_objectives),
        "evaluations": design.result.evaluations,
        "accepted_moves": design.result.accepted_moves,
    }
    # Additive optional key (format stays 2): records without it rebuild
    # with the historical unweighted distance objective.
    if design.problem.evaluator.weight_distance_by_traffic:
        record["weight_distance_by_traffic"] = True
    return record


def design_from_record(record: Dict[str, Any]) -> AdEleDesign:
    """Rebuild a functional :class:`AdEleDesign` from a persisted record.

    The subset problem is reconstructed against the traffic matrix of the
    record's assumed-traffic label -- the registered pattern built with
    seed 0, exactly what :func:`repro.analysis.runner.design_for` optimized
    against (a missing label defaults to uniform).  Designs optimized
    against an explicit content-hashed matrix are never persisted; see
    :meth:`DiskDesignCache.put`.
    """
    placement_data = record["placement"]
    mesh = Mesh3D(*placement_data["mesh"])
    placement = ElevatorPlacement(
        mesh,
        [tuple(column) for column in placement_data["columns"]],
        name=placement_data["name"],
    )
    label = record.get("traffic", "uniform")
    if label == "uniform":
        traffic = UniformTraffic(mesh).traffic_matrix()
    else:
        traffic = PATTERN_REGISTRY.create(label, mesh, seed=0).traffic_matrix()
    problem = ElevatorSubsetProblem(
        placement,
        traffic,
        max_subset_size=record["max_subset_size"],
        weight_distance_by_traffic=record.get("weight_distance_by_traffic", False),
    )
    entries: List[ArchiveEntry[SubsetSolution]] = []
    for item in record["archive"]:
        assignment = {
            int(node): frozenset(subset)
            for node, subset in item["subsets"].items()
        }
        entries.append(
            ArchiveEntry(
                solution=SubsetSolution(assignment=assignment),
                objectives=tuple(item["objectives"]),
            )
        )
    result: AmosaResult[SubsetSolution] = AmosaResult(
        archive=entries,
        evaluations=int(record.get("evaluations", 0)),
        accepted_moves=int(record.get("accepted_moves", 0)),
    )
    return AdEleDesign(
        placement=placement,
        problem=problem,
        result=result,
        representatives=[entries[i] for i in record["representatives"]],
        selected=entries[record["selected"]],
        baseline_objectives=tuple(record["baseline_objectives"]),
    )


def _jsonify(value: Any) -> Any:
    """Recursively convert tuples to lists so a key becomes JSON-stable."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def design_key_hash(key: DesignKey) -> str:
    """Stable content hash of a design-cache key (for filenames)."""
    blob = json.dumps(_jsonify(key), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskDesignCache(DesignCache):
    """A :class:`~repro.analysis.runner.DesignCache` with JSON persistence.

    Completed designs are written to ``<cache_dir>/design-<hash>.json`` and
    reloaded lazily, so a warm cache directory lets new processes (parallel
    workers, repeated CLI invocations) skip the expensive offline search
    entirely.  Designs optimized against any *registered pattern* label
    (uniform included) are persisted -- the record stores the label and the
    matrix rebuilds deterministically from it (seed 0).  Designs keyed by
    an explicit content-hashed matrix (``label#digest``) stay memory-only,
    because such a matrix cannot be reconstructed from its label.
    """

    def __init__(self, cache_dir: str) -> None:
        super().__init__()
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, key: DesignKey) -> str:
        return os.path.join(self.cache_dir, f"design-{design_key_hash(key)}.json")

    @staticmethod
    def _persistable(key: DesignKey) -> bool:
        # make_key layout: (name, shape, columns, traffic_label, cap,
        # optimizer, options).  Labels containing '#' are content-hashed
        # explicit matrices -- not reconstructible, so memory-only; plain
        # registered-pattern labels (uniform included) rebuild from seed 0.
        return (
            len(key) >= 4
            and isinstance(key[3], str)
            and "#" not in key[3]
            and (key[3] == "uniform" or key[3] in PATTERN_REGISTRY)
        )

    def get(self, key: DesignKey) -> Optional[AdEleDesign]:
        design = super().get(key)
        if design is not None:
            return design
        if not self._persistable(key):
            return None
        record = _read_json(self._path(key))
        # Only format-2 records are reachable: the key layout (and hence
        # the file name hash) changed together with the format bump, so
        # pre-format-2 files can never resolve here.
        if not isinstance(record, dict) or record.get("format") != 2:
            return None
        design = design_from_record(record)
        super().put(key, design)
        return design

    def put(self, key: DesignKey, design: AdEleDesign) -> None:
        super().put(key, design)
        if self._persistable(key):
            _write_json_atomic(self._path(key), design_to_record(key, design))

    def clear(self) -> None:
        super().clear()
        if os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.startswith("design-") and name.endswith(".json"):
                    os.unlink(os.path.join(self.cache_dir, name))


# ---------------------------------------------------------------------- #
# Pluggable cache backends
# ---------------------------------------------------------------------- #
#: Registered cache backends: name -> factory(cache_dir) -> (result_cache,
#: design_cache).  ``json`` is the historical one-file-per-entry layout;
#: ``sqlite`` is the concurrent-safe service store (one database file,
#: same canonical keys -- see :mod:`repro.service.store`).
_CACHE_BACKENDS: Dict[str, Any] = {}


def register_cache_backend(name: str, factory) -> None:
    """Register a cache backend factory under a (lower-cased) name.

    The factory takes a cache directory and returns a
    ``(result_cache, design_cache)`` pair implementing the
    :class:`ResultCache` / :class:`~repro.analysis.runner.DesignCache`
    interfaces.
    """
    _CACHE_BACKENDS[name.strip().lower()] = factory


def available_cache_backends() -> List[str]:
    """Sorted names of every registered cache backend."""
    return sorted(_CACHE_BACKENDS)


def open_caches(cache_dir: Optional[str], backend: str = "json"):
    """Open the result and design caches of a cache directory.

    Args:
        cache_dir: Cache directory; ``None`` returns a memory-only
            :class:`ResultCache` and no design cache (in-batch
            deduplication only), whatever the backend.
        backend: Registered backend name (``json`` or ``sqlite``).

    Returns:
        A ``(result_cache, design_cache)`` pair usable with
        :class:`~repro.exec.batch.ExperimentBatch`.

    Raises:
        ValueError: Unknown backend name.
    """
    name = (backend or "json").strip().lower()
    if name not in _CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r}; registered: "
            f"{', '.join(available_cache_backends())}"
        )
    if cache_dir is None:
        return ResultCache(), None
    return _CACHE_BACKENDS[name](cache_dir)


def _open_json_caches(cache_dir: str):
    return ResultCache(cache_dir), DiskDesignCache(cache_dir)


def _open_sqlite_caches(cache_dir: str):
    # Imported lazily: repro.service.store imports this module.
    from repro.service.store import (
        DEFAULT_DB_FILENAME,
        SqliteDesignCache,
        SqliteResultCache,
        SqliteStore,
    )

    store = SqliteStore(os.path.join(cache_dir, DEFAULT_DB_FILENAME))
    return SqliteResultCache(store), SqliteDesignCache(store)


register_cache_backend("json", _open_json_caches)
register_cache_backend("sqlite", _open_sqlite_caches)


#: Default AMOSA settings, re-exported so CLI/benchmark code can key designs
#: consistently with :func:`repro.analysis.runner.adele_design_for`.
__all__ = [
    "SEED_SPACE",
    "canonical_config",
    "canonical_json",
    "config_key",
    "config_from_canonical",
    "spec_from_canonical",
    "derive_seed",
    "ResultCache",
    "DiskDesignCache",
    "design_to_record",
    "design_from_record",
    "design_key_hash",
    "register_cache_backend",
    "available_cache_backends",
    "open_caches",
    "iter_json_cache_entries",
    "cache_stats",
    "DEFAULT_OFFLINE_AMOSA",
]
