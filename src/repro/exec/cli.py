"""Command-line front end for the parallel experiment engine.

``python -m repro`` (or the ``repro`` console script) exposes the workflows
every figure of the paper is built from, plus the component registries:

``sweep``
    A Fig. 4-style latency-vs-injection-rate sweep: one latency curve per
    policy, with the 10x-zero-load saturation rate per curve.

``compare``
    A Fig. 6/7-style single-operating-point comparison: one row per policy
    with absolute and Elevator-First-normalized metrics.

``run``
    Execute experiment specs from a ``--spec`` JSON file (a single
    :meth:`repro.spec.ExperimentSpec.to_dict` document or a list of them)
    through the batch engine and print one summary row per spec.

``optimize``
    Run (or fetch from the disk design cache) the paper's offline stage for
    one placement: a registered optimizer (``amosa`` by default;
    ``random-search`` / ``greedy-swap`` as baselines) searches the
    per-router elevator-subset space, prints the Pareto front, the
    representative (S0...) points and the strategy-selected solution.
    ``--spec FILE`` reads a ``DesignSpec`` JSON document; flags override
    its fields, ``--progress`` streams per-iteration progress, and a warm
    ``--cache-dir`` serves the whole design from disk.

``scenario``
    Run event-driven dynamic scenarios from a ``--spec`` JSON file: each
    spec carries a ``scenario`` timeline (traffic phases, rate ramps,
    elevator faults/repairs, markers) and the report shows one row per
    spec plus its per-phase measurement windows.  Shares the engine flags,
    so scenario grids fan out over workers and cache like any other runs.

``serve``
    Run the persistent experiment service: a ``ThreadingHTTPServer`` front
    end (submit/status/result/cancel; see :mod:`repro.service.http`) over a
    durable SQLite-backed job queue drained by a supervised worker pool.
    Jobs dedup by spec hash, completed tasks are recorded individually so
    interrupted sweeps resume, and results are bit-identical to direct
    ``repro run`` invocations of the same specs.

``merge``
    Fold the outputs of N sharded runs -- cache directories (JSON or
    SQLite) and/or ``--json`` output documents -- into one destination
    cache, verifying that overlapping keys carry identical rows.  The
    merged set is bit-identical to an unsharded run of the same grid (the
    invariant the shard tests pin) and immediately servable via
    ``--cache-dir``.

``cache migrate``
    Carry a warm JSON cache directory (``result-*.json`` /
    ``design-*.json``) into the SQLite store under unchanged keys, so
    existing caches keep hitting after switching backends.

``cache stats``
    Entry counts and bytes of a cache directory (either backend) --
    shard-cache health at a glance before/after ``repro merge``.

``trace export`` / ``trace report``
    Inspect a span log written by ``--trace FILE``: ``export`` converts
    the JSONL log to Chrome trace-event JSON (open it in Perfetto),
    ``report`` prints a per-span-name latency summary (count, total,
    p50/p95/max).

``stats``
    Scrape a live ``repro serve`` daemon: its ``/api/health`` document
    and the full ``GET /metrics`` Prometheus exposition (engine counters,
    queue gauges, latency histograms).

``probe``
    Run experiment specs with an opt-in kernel probe attached (sample
    interval + channel selection) and dump the per-cycle congestion
    series as JSONL rows.  The probe is a run argument, never a spec
    field: probed results are bit-identical to unprobed ones.

``list``
    Show every registered policy, traffic pattern, application model,
    placement, simulation backend, offline optimizer and scenario event
    kind with its aliases and description -- including components
    registered by ``--plugin`` modules.

``sweep``/``compare``/``run`` also accept ``--backend NAME`` selecting the
simulation kernel (``optimized`` by default; ``reference`` for the original
full-scan loop).  Backends are result-equivalent -- the flag changes wall
clock, never numbers.

All subcommands accept ``--plugin MODULE`` (repeatable): the module is
imported first, so its ``@register_policy`` / ``@register_pattern`` /
``register_placement`` calls run and the components become usable *by name*
(see ``examples/custom_policy.py``).

``sweep``/``compare``/``run`` share the engine flags:

``--workers N``
    Fan the experiment grid out over N processes (``1`` = serial).

``--cache-dir DIR``
    Disk-backed caching of summary rows *and* AdEle offline designs; a warm
    directory makes re-runs skip every finished simulation and the AMOSA
    stage.  Without it, caching is in-memory (deduplication only).

``--seed S``
    Batch-level base seed: every task's RNG seed is derived from the
    canonical hash of its spec plus S, so results are reproducible across
    processes and worker counts.

``--cache-backend {json,sqlite}``
    Which cache backend ``--cache-dir`` opens: ``json`` (one file per
    entry, the historical layout) or ``sqlite`` (the concurrent-safe
    service store).  Both key by the same canonical hashes.

``sweep``/``compare``/``run``/``scenario``/``optimize`` also accept
``--json``: one machine-readable JSON document on stdout instead of the
human tables (the format clients and scripts consume; note non-finite
floats serialize as ``Infinity``/``NaN``, which ``json.loads`` accepts).

``sweep``/``compare``/``run``/``scenario`` (and ``serve``) share the
observability flags:

``--trace FILE``
    Append one JSONL span record per instrumented boundary (setup,
    kernel, cache, chunk flush, queue, HTTP) to FILE; inspect with
    ``repro trace report`` / ``repro trace export``.  Multi-process runs
    (``--workers`` > 1) record only parent-side spans.

``--probe-interval N`` / ``--probe-channels C1,C2``
    Attach a kernel probe sampling per-cycle congestion gauges every N
    cycles; the sampled series ride in the ``--json`` document under
    ``probes`` (keyed by cache key).  Results stay bit-identical.

``sweep``/``run``/``scenario`` additionally accept the horizontal-scale
flags:

``--shard K/N``
    Run only the grid slice shard K of N owns (deterministic partition by
    canonical spec hash; see :mod:`repro.exec.shard`).  N invocations with
    shards ``1/N .. N/N`` -- on any hosts, each with its own
    ``--cache-dir`` -- cover the grid exactly once; ``repro merge`` folds
    their caches into the bit-identical unsharded result set.

``--chunk-size C``
    Flush results to the cache (and a ``manifest-*.json`` checkpoint)
    every C completed specs, so a killed mega-sweep resumes from its last
    chunk instead of restarting.

The sweep/compare target is either a named placement (``--placement PS1``)
or an ad-hoc one (``--mesh X Y Z --elevators "x,y;x,y"``), which keeps CI
smoke runs on tiny meshes fast.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.comparison import format_table, policy_comparison_from_summaries
from repro.analysis.runner import design_for, design_key_for, run_experiment
from repro.analysis.sweep import LatencyCurve, saturation_rate
from repro.core.optimizers import OPTIMIZER_REGISTRY
from repro.core.selection import SELECTION_STRATEGIES
from repro.exec.aggregate import MergeConflict, StreamingAggregator, merge_results
from repro.exec.batch import ExperimentBatch, summaries_by_policy
from repro.exec.cache import available_cache_backends, cache_stats, open_caches
from repro.exec.designs import DesignBatch
from repro.exec.shard import ShardSpec, parse_shard
from repro.obs.probes import PROBE_CHANNELS, ProbeSpec
from repro.obs.tracing import (
    JsonlRecorder,
    Tracer,
    chrome_trace_document,
    install_tracer,
    load_span_records,
    span,
    trace_report,
)
from repro.routing.base import POLICY_REGISTRY
from repro.scenario.events import SCENARIO_EVENT_REGISTRY
from repro.service import http as service_http
from repro.service.client import DEFAULT_SERVICE_URL, ServiceClient, ServiceError
from repro.service.store import DEFAULT_DB_FILENAME, SqliteStore, migrate_json_cache
from repro.sim.backends import BACKEND_REGISTRY, DEFAULT_BACKEND
from repro.spec import DesignSpec, ExperimentSpec, PlacementSpec, SimSpec, TrafficSpec
from repro.topology.elevators import PLACEMENT_REGISTRY
from repro.traffic.applications import APPLICATION_REGISTRY
from repro.traffic.patterns import PATTERN_REGISTRY


def _comma_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _comma_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_columns(text: str) -> List[Tuple[int, int]]:
    """Parse ``"x,y;x,y"`` elevator column lists."""
    columns: List[Tuple[int, int]] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        x, y = part.split(",")
        columns.append((int(x), int(y)))
    return columns


def _add_plugin_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help="import MODULE first so its registered components are usable "
             "by name (repeatable)",
    )


def _load_plugins(args: argparse.Namespace) -> None:
    for module in getattr(args, "plugin", []):
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise SystemExit(f"cannot import --plugin {module!r}: {error}")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    _add_plugin_argument(parser)
    target = parser.add_argument_group("target")
    target.add_argument(
        "--placement", default="PS1",
        help="registered placement name (see `repro list`); "
             "ignored when --mesh is given",
    )
    target.add_argument(
        "--mesh", nargs=3, type=int, metavar=("X", "Y", "Z"), default=None,
        help="ad-hoc mesh dimensions for a custom placement",
    )
    target.add_argument(
        "--elevators", default=None, metavar="X,Y;X,Y",
        help='elevator columns of the ad-hoc placement, e.g. "0,0;1,1"',
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument(
        "--policies", default="elevator_first,cda,adele",
        help="comma-separated registered policy names",
    )
    workload.add_argument(
        "--traffic", default="uniform",
        help="registered traffic pattern or application name",
    )
    workload.add_argument("--warmup", type=int, default=300, help="warm-up cycles")
    workload.add_argument(
        "--measure", type=int, default=1500, help="measurement cycles"
    )
    workload.add_argument("--drain", type=int, default=800, help="max drain cycles")
    _add_backend_argument(workload)
    _add_engine_arguments(parser)


def _add_backend_argument(target) -> None:
    target.add_argument(
        "--backend", default=None, metavar="NAME",
        help="simulation kernel (see `repro list`; backends are "
             f"result-equivalent, default: {DEFAULT_BACKEND})",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    engine = parser.add_argument_group("engine")
    engine.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial fallback)",
    )
    engine.add_argument(
        "--cache-dir", default=None,
        help="directory for disk-backed result/design caching",
    )
    engine.add_argument(
        "--seed", type=int, default=None,
        help="base seed; per-task seeds derive from it and the spec hash",
    )
    _add_cache_backend_argument(engine)
    engine.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print one machine-readable JSON document instead of tables",
    )
    _add_observability_arguments(parser)


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    obs = parser.add_argument_group("observability")
    _add_trace_argument(obs)
    obs.add_argument(
        "--probe-interval", type=int, default=None, metavar="N",
        help="attach a kernel probe sampling congestion gauges every N "
             "cycles (series ride in the --json document; results stay "
             "bit-identical)",
    )
    obs.add_argument(
        "--probe-channels", default=None, metavar="C1,C2",
        help="probe channel selection (default: all of "
             f"{','.join(PROBE_CHANNELS)}); implies --probe-interval 100",
    )


def _add_trace_argument(target) -> None:
    target.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append one JSONL span record per instrumented boundary to "
             "FILE (inspect with `repro trace report` / `repro trace "
             "export`; multi-process runs record only parent-side spans)",
    )


def _parse_probe_argument(args: argparse.Namespace) -> Optional[ProbeSpec]:
    interval = getattr(args, "probe_interval", None)
    channels_text = getattr(args, "probe_channels", None)
    if interval is None and not channels_text:
        return None
    kwargs: Dict[str, Any] = {}
    if interval is not None:
        kwargs["interval"] = interval
    if channels_text:
        try:
            kwargs["channels"] = ProbeSpec.parse_channels(channels_text)
        except ValueError as error:
            raise SystemExit(f"--probe-channels: {error}")
    try:
        return ProbeSpec(**kwargs)
    except ValueError as error:
        raise SystemExit(f"--probe-interval: {error}")


def _install_cli_tracer(args: argparse.Namespace) -> None:
    """Install a process-global JSONL tracer when ``--trace FILE`` is set."""
    path = getattr(args, "trace", None)
    if not path:
        return
    try:
        recorder = JsonlRecorder(path)
    except OSError as error:
        raise SystemExit(f"--trace: cannot open {path!r}: {error}")
    install_tracer(Tracer(recorder))


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_argument_group("horizontal scale")
    scale.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run only shard K of an N-way deterministic grid partition "
             "(merge the shard caches afterwards with `repro merge`)",
    )
    scale.add_argument(
        "--chunk-size", type=int, default=None, metavar="C",
        help="flush results to the cache every C completed specs (chunked "
             "checkpointing; a killed run resumes from its last chunk)",
    )
    scale.add_argument(
        "--replica-batch", type=int, default=None, metavar="R",
        help="coalesce up to R structurally identical specs (differing only "
             "in seed) into one multi-replica kernel pass; cache contents "
             "stay byte-identical to ungrouped execution",
    )


def _parse_shard_argument(args: argparse.Namespace) -> Optional[ShardSpec]:
    text = getattr(args, "shard", None)
    if text is None:
        return None
    try:
        return parse_shard(text)
    except ValueError as error:
        raise SystemExit(f"--shard: {error}")


def _add_cache_backend_argument(target) -> None:
    target.add_argument(
        "--cache-backend", default="json", choices=available_cache_backends(),
        help="cache layout under --cache-dir: 'json' (one file per entry) "
             "or 'sqlite' (concurrent-safe service store); same keys either "
             "way (default: json)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdEle reproduction: parallel experiment engine",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="latency-vs-injection-rate sweep (Fig. 4 style)"
    )
    _add_common_arguments(sweep)
    _add_shard_arguments(sweep)
    sweep.add_argument(
        "--rates", default="0.001,0.003,0.005",
        help="comma-separated packet injection rates",
    )

    compare = subparsers.add_parser(
        "compare", help="policy comparison at one operating point (Fig. 6/7 style)"
    )
    _add_common_arguments(compare)
    compare.add_argument(
        "--rate", type=float, default=0.004, help="packet injection rate"
    )
    compare.add_argument(
        "--baseline", default="elevator_first", help="normalization baseline policy"
    )

    run = subparsers.add_parser(
        "run", help="run experiment specs from a --spec JSON file"
    )
    _add_plugin_argument(run)
    run.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON file with one ExperimentSpec document or a list of them",
    )
    _add_backend_argument(run)
    _add_engine_arguments(run)
    _add_shard_arguments(run)

    scenario = subparsers.add_parser(
        "scenario",
        help="run event-driven dynamic scenarios from a --spec JSON file",
    )
    _add_plugin_argument(scenario)
    scenario.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON file with one ExperimentSpec document (or a list); each "
             "should carry a 'scenario' event timeline",
    )
    _add_backend_argument(scenario)
    _add_engine_arguments(scenario)
    _add_shard_arguments(scenario)

    optimize = subparsers.add_parser(
        "optimize",
        help="run the offline elevator-subset optimization (Fig. 3 front)",
    )
    _add_plugin_argument(optimize)
    optimize.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON file with one DesignSpec document or a list of them "
             "(flags below override every document's fields)",
    )
    optimize.add_argument(
        "--workers", type=int, default=1,
        help="worker processes fanning a design grid out (1 = serial)",
    )
    optimize.add_argument(
        "--seed", type=int, default=None,
        help="base seed; per-design optimizer seeds derive from it and "
             "the canonical design key",
    )
    optimize.add_argument(
        "--optimizer", default=None, metavar="NAME",
        help="registered optimizer (see `repro list`; default: amosa)",
    )
    target = optimize.add_argument_group("target")
    target.add_argument(
        "--placement", default=None,
        help="registered placement name; ignored when --mesh is given",
    )
    target.add_argument(
        "--mesh", nargs=3, type=int, metavar=("X", "Y", "Z"), default=None,
        help="ad-hoc mesh dimensions for a custom placement",
    )
    target.add_argument(
        "--elevators", default=None, metavar="X,Y;X,Y",
        help='elevator columns of the ad-hoc placement, e.g. "0,0;1,1"',
    )
    optimize.add_argument(
        "--traffic", default=None,
        help="assumed traffic pattern of the offline objectives "
             "(default: uniform)",
    )
    optimize.add_argument(
        "--max-subset-size", type=int, default=None, metavar="N",
        help="cap on each router's elevator subset size",
    )
    optimize.add_argument(
        "--selection", default=None, choices=sorted(SELECTION_STRATEGIES),
        help="archive-selection strategy for the deployed solution",
    )
    optimize.add_argument(
        "--weight-by-traffic", action="store_true",
        help="weight the distance objective by the assumed traffic matrix",
    )
    optimize.add_argument(
        "--representatives", type=int, default=None, metavar="N",
        help="how many spread (S0...) solutions to print (default: 6)",
    )
    optimize.add_argument(
        "--cache-dir", default=None,
        help="directory for the disk-backed design cache",
    )
    _add_cache_backend_argument(optimize)
    optimize.add_argument(
        "--progress", action="store_true",
        help="print optimizer progress (temperature/stage, archive size, "
             "current objectives) to stderr",
    )
    optimize.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print one machine-readable JSON document instead of tables "
             "(includes the engine hit/miss counters)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the persistent experiment service (HTTP + durable queue)",
    )
    _add_plugin_argument(serve)
    serve.add_argument(
        "--host", default=service_http.DEFAULT_HOST,
        help=f"bind address (default: {service_http.DEFAULT_HOST})",
    )
    serve.add_argument(
        "--port", type=int, default=service_http.DEFAULT_PORT,
        help=f"bind port, 0 = ephemeral (default: {service_http.DEFAULT_PORT})",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads draining the job queue (default: 2)",
    )
    serve.add_argument(
        "--cache-dir", required=True,
        help=f"service state directory (holds {DEFAULT_DB_FILENAME})",
    )
    serve.add_argument(
        "--db", default=None, metavar="FILE",
        help=f"explicit SQLite path (default: CACHE_DIR/{DEFAULT_DB_FILENAME})",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="times a task may be claimed before it is marked failed "
             "(default: 3)",
    )
    serve.add_argument(
        "--shard", default=None, metavar="K/N",
        help="this daemon's worker pool only claims tasks shard K of N "
             "owns (N daemons split every job deterministically)",
    )
    serve.add_argument(
        "--replica-batch", type=int, default=None, metavar="R",
        help="forward a replica-batch width to every worker's batch engine "
             "(see the sweep/run flag of the same name)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="DEBUG-level service logging on stderr (structured access-log "
             "events show at the default INFO level already)",
    )
    _add_trace_argument(serve)

    merge = subparsers.add_parser(
        "merge",
        help="fold sharded caches / --json documents into one result set",
    )
    merge.add_argument(
        "inputs", nargs="+", metavar="INPUT",
        help="shard outputs to fold: cache directories (JSON or SQLite), "
             "*.sqlite3 store files, or --json output documents",
    )
    merge.add_argument(
        "--into", required=True, metavar="DIR",
        help="destination cache directory (created if missing; may already "
             "hold rows, e.g. merging shards incrementally)",
    )
    _add_cache_backend_argument(merge)
    merge.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print the merge report (and streaming aggregate) as JSON",
    )

    cache = subparsers.add_parser(
        "cache", help="cache maintenance (migration, stats)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    migrate = cache_sub.add_parser(
        "migrate",
        help="copy a warm JSON cache directory into the SQLite store "
             "under unchanged keys",
    )
    migrate.add_argument(
        "--cache-dir", required=True,
        help="JSON cache directory (result-*.json / design-*.json)",
    )
    migrate.add_argument(
        "--db", default=None, metavar="FILE",
        help=f"SQLite store to fill (default: CACHE_DIR/{DEFAULT_DB_FILENAME})",
    )
    stats = cache_sub.add_parser(
        "stats",
        help="entry counts and bytes of a cache directory (either backend)",
    )
    stats.add_argument(
        "--cache-dir", required=True,
        help="cache directory to inspect",
    )
    _add_cache_backend_argument(stats)
    stats.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print the stats as one JSON document",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect span logs written by --trace FILE"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="convert a span JSONL log to Chrome trace-event JSON "
             "(open the output in Perfetto / chrome://tracing)",
    )
    export.add_argument(
        "log", metavar="FILE", help="span JSONL log written by --trace"
    )
    export.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: stdout)",
    )
    report = trace_sub.add_parser(
        "report",
        help="per-span-name latency summary of a span JSONL log "
             "(count, total, p50/p95/max)",
    )
    report.add_argument(
        "log", metavar="FILE", help="span JSONL log written by --trace"
    )
    report.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print the report as one JSON document",
    )

    stats_cmd = subparsers.add_parser(
        "stats",
        help="scrape a live `repro serve` daemon: health + /metrics",
    )
    stats_cmd.add_argument(
        "--url", default=DEFAULT_SERVICE_URL,
        help=f"daemon base URL (default: {DEFAULT_SERVICE_URL})",
    )
    stats_cmd.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print health + raw metrics text as one JSON document",
    )

    probe = subparsers.add_parser(
        "probe",
        help="run specs with a kernel probe and dump the sampled series",
    )
    _add_plugin_argument(probe)
    probe.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON file with one ExperimentSpec document or a list of them",
    )
    _add_backend_argument(probe)
    probe.add_argument(
        "--interval", type=int, default=100, metavar="N",
        help="sample every N cycles (default: 100)",
    )
    probe.add_argument(
        "--channels", default=None, metavar="C1,C2",
        help=f"channel selection (default: all of {','.join(PROBE_CHANNELS)})",
    )
    probe.add_argument(
        "--max-samples", type=int, default=4096, metavar="M",
        help="bound on samples kept per run (default: 4096)",
    )
    probe.add_argument(
        "--out", default=None, metavar="FILE",
        help="write JSONL rows here (default: stdout)",
    )

    listing = subparsers.add_parser(
        "list", help="list registered policies, traffic, applications, placements"
    )
    _add_plugin_argument(listing)
    listing.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print every registry as one machine-readable JSON document",
    )
    return parser


def _base_spec(args: argparse.Namespace) -> ExperimentSpec:
    if args.mesh is None and args.elevators:
        raise SystemExit("--elevators requires --mesh")
    if args.mesh is not None:
        if not args.elevators:
            raise SystemExit("--mesh requires --elevators")
        placement = PlacementSpec(
            name="cli-custom",
            mesh=tuple(args.mesh),
            columns=tuple(_parse_columns(args.elevators)),
        )
    else:
        placement = PlacementSpec(name=args.placement)
    return ExperimentSpec(
        placement=placement,
        traffic=TrafficSpec(pattern=args.traffic),
        sim=SimSpec(
            warmup_cycles=args.warmup,
            measurement_cycles=args.measure,
            drain_cycles=args.drain,
            backend=args.backend or DEFAULT_BACKEND,
        ),
    )


def _make_batch(
    args: argparse.Namespace, specs: List[ExperimentSpec]
) -> ExperimentBatch:
    result_cache, design_cache = open_caches(
        args.cache_dir, getattr(args, "cache_backend", "json")
    )
    return ExperimentBatch(
        specs,
        workers=args.workers,
        result_cache=result_cache,
        design_cache=design_cache,
        base_seed=args.seed,
        # Re-imported inside worker processes, so --plugin components exist
        # by name under any multiprocessing start method (not just fork).
        plugins=tuple(getattr(args, "plugin", [])),
        shard=_parse_shard_argument(args),
        chunk_size=getattr(args, "chunk_size", None),
        manifest_dir=args.cache_dir,
        replica_batch=getattr(args, "replica_batch", None),
        probe=_parse_probe_argument(args),
    )


def _report_engine(batch: ExperimentBatch) -> None:
    print(
        f"[repro.exec] {batch.last_executed} simulated, "
        f"{batch.last_cached} served from cache "
        f"({batch.workers} worker{'s' if batch.workers != 1 else ''})"
    )
    shard = getattr(batch, "shard", None)
    if shard is not None:
        print(
            f"[repro.exec] shard {shard}: {batch.last_skipped} spec(s) "
            "owned by other shards skipped"
        )
    if getattr(batch, "replica_batch", None) is not None:
        print(
            f"[repro.exec] replica batching: {batch.last_replica_groups} "
            f"group(s) of width <= {batch.replica_batch}"
        )
    if batch.last_executed:
        print(
            f"[repro.exec] setup {batch.last_setup_s:.3f}s "
            f"(memo {batch.last_memo_hits} hit(s) / "
            f"{batch.last_memo_misses} miss(es)), "
            f"kernel {batch.last_kernel_s:.3f}s"
        )
    if getattr(batch, "probe", None) is not None:
        print(
            f"[repro.obs] probe: {len(batch.last_probes)} series sampled "
            f"every {batch.probe.interval} cycle(s) "
            f"(use --json to read them)"
        )


def _probe_document(batch: ExperimentBatch) -> Dict[str, Any]:
    """The conditional ``probes`` block: one series document per key."""
    return {
        key: series.to_dict()
        for key, series in sorted(batch.last_probes.items())
    }


def _engine_document(batch) -> Dict[str, Any]:
    document: Dict[str, Any] = {
        "executed": batch.last_executed,
        "cached": batch.last_cached,
        "workers": batch.workers,
        # Observability counters ride along in every engine block: wall
        # seconds split into setup (network/route construction) vs kernel
        # (simulation proper), plus warm-worker setup-memo hit/miss counts.
        "setup_s": batch.last_setup_s,
        "kernel_s": batch.last_kernel_s,
        "memo_hits": batch.last_memo_hits,
        "memo_misses": batch.last_memo_misses,
    }
    # Shard/chunk/replica keys appear only when the features are in play,
    # keeping plain documents (and everything pinned on them) unchanged.
    shard = getattr(batch, "shard", None)
    if shard is not None:
        document["shard"] = str(shard)
        document["skipped"] = batch.last_skipped
    if getattr(batch, "chunk_size", None) is not None:
        document["chunks"] = batch.last_chunks
    if getattr(batch, "replica_batch", None) is not None:
        document["replica_batch"] = batch.replica_batch
        document["replica_groups"] = batch.last_replica_groups
    return document


def _outcome_document(outcome) -> Dict[str, Any]:
    return {
        "key": outcome.key,
        "from_cache": outcome.from_cache,
        "spec": outcome.spec.to_dict(),
        "summary": outcome.summary,
    }


def _print_json(document: Dict[str, Any]) -> None:
    # Python's json extension serializes non-finite floats as Infinity/NaN
    # (saturated runs carry infinite latencies); json.loads reads them back.
    print(json.dumps(document, indent=2, sort_keys=True))


def _run_sweep(args: argparse.Namespace) -> int:
    policies = _comma_names(args.policies)
    rates = _comma_floats(args.rates)
    if not policies or not rates:
        raise SystemExit("need at least one policy and one rate")
    base = _base_spec(args)
    specs = [
        base.with_(policy=policy, injection_rate=rate)
        for policy in policies
        for rate in rates
    ]
    batch = _make_batch(args, specs)
    outcomes = batch.run()

    curves = {policy: LatencyCurve(policy=policy) for policy in policies}
    for outcome in outcomes:
        curves[outcome.spec.policy.name].add_point(
            outcome.spec.traffic.injection_rate, outcome.summary["average_latency"]
        )
    if args.json_output:
        document = {
            "command": "sweep",
            "placement": base.placement.name,
            "traffic": base.traffic.pattern,
            "engine": _engine_document(batch),
            "curves": [
                {
                    "policy": policy,
                    "points": [
                        {"injection_rate": rate, "average_latency": latency}
                        for rate, latency in curves[policy].points
                    ],
                    # A sharded slice may leave a curve empty; None rather
                    # than a crash (merge the shards for the real number).
                    "saturation_rate": (
                        saturation_rate(curves[policy])
                        if curves[policy].points else None
                    ),
                }
                for policy in policies
            ],
            # Same per-spec rows as `run --json`, so sharded sweep documents
            # feed `repro merge` directly.
            "outcomes": [_outcome_document(outcome) for outcome in outcomes],
        }
        # The probes block appears only when a probe was attached, keeping
        # plain documents (and everything pinned on them) unchanged.
        if batch.probe is not None:
            document["probes"] = _probe_document(batch)
        _print_json(document)
        return 0
    _report_engine(batch)
    print(f"placement={base.placement.name} traffic={base.traffic.pattern}")
    for policy in policies:
        curve = curves[policy]
        if not curve.points:
            print(f"{policy:15s} (no points in this shard)")
            continue
        points = "  ".join(
            f"{rate:.4f}:{latency:9.2f}" for rate, latency in curve.points
        )
        print(f"{policy:15s} {points}")
        print(
            f"{policy:15s} saturation rate (10x zero-load): "
            f"{saturation_rate(curve):.4f}"
        )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    policies = _comma_names(args.policies)
    if not policies:
        raise SystemExit("need at least one policy")
    base = _base_spec(args)
    specs = [
        base.with_(policy=policy, injection_rate=args.rate) for policy in policies
    ]
    batch = _make_batch(args, specs)
    outcomes = batch.run()

    summaries = summaries_by_policy(outcomes)
    baseline = args.baseline
    if baseline not in summaries:
        baseline = policies[0]
        print(
            f"[repro.exec] warning: baseline {args.baseline!r} not among "
            f"--policies; normalizing to {baseline!r} instead",
            file=sys.stderr,
        )
    table = policy_comparison_from_summaries(summaries, baseline=baseline)
    if args.json_output:
        document = {
            "command": "compare",
            "placement": base.placement.name,
            "traffic": base.traffic.pattern,
            "rate": args.rate,
            "baseline": baseline,
            "engine": _engine_document(batch),
            "policies": table,
        }
        if batch.probe is not None:
            document["probes"] = _probe_document(batch)
        _print_json(document)
        return 0
    _report_engine(batch)
    print(
        f"placement={base.placement.name} traffic={base.traffic.pattern} "
        f"rate={args.rate}"
    )
    print(format_table(table))
    return 0


def _load_spec_documents(path: str) -> List[ExperimentSpec]:
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
    except OSError as error:
        raise SystemExit(f"cannot read --spec file {path!r}: {error}")
    except ValueError as error:
        raise SystemExit(f"--spec file {path!r} is not valid JSON: {error}")
    documents = data if isinstance(data, list) else [data]
    specs: List[ExperimentSpec] = []
    for index, document in enumerate(documents):
        try:
            specs.append(ExperimentSpec.from_dict(document))
        except ValueError as error:
            raise SystemExit(f"--spec file {path!r}, document {index}: {error}")
    if not specs:
        raise SystemExit(f"--spec file {path!r} contains no experiment specs")
    return specs


def _run_specs(args: argparse.Namespace) -> int:
    specs = _load_spec_documents(args.spec)
    if args.backend:
        specs = [spec.with_(backend=args.backend) for spec in specs]
    batch = _make_batch(args, specs)
    outcomes = batch.run()
    if args.json_output:
        document = {
            "command": "run",
            "engine": _engine_document(batch),
            "outcomes": [_outcome_document(outcome) for outcome in outcomes],
        }
        if batch.probe is not None:
            document["probes"] = _probe_document(batch)
        _print_json(document)
        return 0
    _report_engine(batch)
    header = f"{'placement':12s} {'policy':15s} {'traffic':14s} {'rate':>8s} {'avg_latency':>12s} {'throughput':>11s}"
    print(header)
    for outcome in outcomes:
        spec = outcome.spec
        print(
            f"{spec.placement.name:12s} {spec.policy.name:15s} "
            f"{spec.traffic.pattern:14s} {spec.traffic.injection_rate:8.4f} "
            f"{outcome.summary['average_latency']:12.2f} "
            f"{outcome.summary.get('throughput', float('nan')):11.4f}"
        )
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    specs = _load_spec_documents(args.spec)
    without = sum(1 for spec in specs if spec.scenario is None)
    if without:
        print(
            f"[repro.exec] warning: {without} spec(s) carry no scenario "
            "timeline; they run as plain static experiments",
            file=sys.stderr,
        )
    if args.backend:
        specs = [spec.with_(backend=args.backend) for spec in specs]
    batch = _make_batch(args, specs)
    outcomes = batch.run()
    if args.json_output:
        document = {
            "command": "scenario",
            "engine": _engine_document(batch),
            "outcomes": [_outcome_document(outcome) for outcome in outcomes],
        }
        if batch.probe is not None:
            document["probes"] = _probe_document(batch)
        _print_json(document)
        return 0
    _report_engine(batch)
    for outcome in outcomes:
        spec = outcome.spec
        events = len(spec.scenario.events) if spec.scenario is not None else 0
        print(
            f"{spec.placement.name} policy={spec.policy.name} "
            f"traffic={spec.traffic.pattern} rate={spec.traffic.injection_rate:g} "
            f"events={events} avg_latency={outcome.summary['average_latency']:.2f} "
            f"delivery={outcome.summary['delivery_ratio'] * 100:.1f}%"
        )
        for phase in outcome.summary.get("phases", []):
            end = phase["end_cycle"]
            window = f"[{phase['start_cycle']},{'...' if end is None else end})"
            latency = phase["average_latency"]
            latency_text = f"{latency:9.2f}" if latency != float("inf") else "      inf"
            energy = phase.get("energy_j")
            energy_text = f"  energy={energy * 1e9:8.2f} nJ" if energy is not None else ""
            print(
                f"  {phase['label']:24s} {window:>14s} "
                f"created={phase['packets_created']:5d} "
                f"delivered={phase['packets_delivered']:5d} "
                f"avg_latency={latency_text}{energy_text}"
            )
    return 0


def _load_design_specs(path: str) -> List[DesignSpec]:
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
    except OSError as error:
        raise SystemExit(f"cannot read --spec file {path!r}: {error}")
    except ValueError as error:
        raise SystemExit(f"--spec file {path!r} is not valid JSON: {error}")
    documents = data if isinstance(data, list) else [data]
    specs: List[DesignSpec] = []
    for index, document in enumerate(documents):
        try:
            specs.append(DesignSpec.from_dict(document))
        except ValueError as error:
            raise SystemExit(f"--spec file {path!r}, document {index}: {error}")
    if not specs:
        raise SystemExit(f"--spec file {path!r} contains no design specs")
    return specs


def _apply_design_overrides(
    args: argparse.Namespace, spec: DesignSpec
) -> DesignSpec:
    changes = {}
    if args.mesh is not None:
        if not args.elevators:
            raise SystemExit("--mesh requires --elevators")
        changes["placement"] = PlacementSpec(
            name="cli-custom",
            mesh=tuple(args.mesh),
            columns=tuple(_parse_columns(args.elevators)),
        )
    elif args.elevators:
        raise SystemExit("--elevators requires --mesh")
    elif args.placement:
        changes["placement"] = PlacementSpec(name=args.placement)
    if args.optimizer:
        changes["optimizer"] = args.optimizer

        def _canonical(name: str) -> str:
            return (
                OPTIMIZER_REGISTRY.entry(name).name
                if name in OPTIMIZER_REGISTRY
                else name.strip().lower()
            )

        if _canonical(args.optimizer) != _canonical(spec.optimizer):
            # Options rarely transfer between optimizers (same rule as
            # policy names in ExperimentSpec.with_).
            changes["options"] = {}
    if args.traffic:
        changes["traffic"] = args.traffic
    if args.max_subset_size is not None:
        changes["max_subset_size"] = args.max_subset_size
    if args.selection:
        changes["selection"] = args.selection
    if args.weight_by_traffic:
        changes["weight_distance_by_traffic"] = True
    if args.representatives is not None:
        changes["num_representatives"] = args.representatives
    if changes:
        spec = spec.with_(**changes)
    return spec


def _run_optimize(args: argparse.Namespace) -> int:
    specs = _load_design_specs(args.spec) if args.spec else [DesignSpec()]
    specs = [_apply_design_overrides(args, spec) for spec in specs]

    # Resolve optimizer names eagerly so typos surface as the registry's
    # did-you-mean ValueError before any work happens.
    for spec in specs:
        OPTIMIZER_REGISTRY.entry(spec.optimizer)

    _, design_cache = open_caches(
        args.cache_dir, getattr(args, "cache_backend", "json")
    )
    if len(specs) == 1 and args.workers == 1 and args.seed is None:
        return _run_optimize_single(args, specs[0], design_cache)
    return _run_optimize_grid(args, specs, design_cache)


def _design_document(spec: DesignSpec, design, from_cache: bool) -> Dict[str, Any]:
    placement = spec.placement.resolve()
    selected = design.selected
    return {
        "spec": spec.to_dict(),
        "placement": placement.name,
        "from_cache": from_cache,
        "evaluations": design.result.evaluations,
        "archive_size": len(design.result.archive),
        "baseline_objectives": list(design.baseline_objectives),
        "representatives": [
            {
                "objectives": list(entry.objectives),
                "selected": entry is design.selected,
            }
            for entry in design.representatives
        ],
        "selected": {
            "objectives": list(selected.objectives),
            "average_subset_size": selected.solution.average_subset_size(),
        },
    }


def _run_optimize_single(
    args: argparse.Namespace, spec: DesignSpec, cache
) -> int:
    placement = spec.placement.resolve()
    was_cached = (
        cache is not None and cache.get(design_key_for(spec, placement)) is not None
    )

    on_iteration = None
    if args.progress:
        def on_iteration(stage, archive_size, best):
            print(
                f"[optimize] stage={stage:g} archive={archive_size} "
                f"objectives=({best[0]:.6g}, {best[1]:.6g})",
                file=sys.stderr,
            )

    design = design_for(spec, cache=cache, on_iteration=on_iteration)

    if args.json_output:
        _print_json({
            "command": "optimize",
            "engine": {
                "executed": 0 if was_cached else 1,
                "cached": 1 if was_cached else 0,
                "workers": 1,
            },
            "designs": [_design_document(spec, design, was_cached)],
        })
        return 0

    result = design.result
    print(
        f"placement={placement.name} mesh={'x'.join(map(str, placement.mesh.shape))} "
        f"elevators={placement.num_elevators} traffic={spec.traffic} "
        f"optimizer={spec.optimizer} selection={spec.selection}"
    )
    print(
        f"evaluations={result.evaluations} accepted={result.accepted_moves} "
        f"archive={len(result.archive)}"
    )
    baseline = design.baseline_objectives
    print(f"{'elevator-first baseline':28s} variance={baseline[0]:.6g} distance={baseline[1]:.6g}")
    for index, entry in enumerate(design.representatives):
        marker = " *" if entry is design.selected else ""
        print(
            f"{f'S{index}':28s} variance={entry.objectives[0]:.6g} "
            f"distance={entry.objectives[1]:.6g}{marker}"
        )
    selected = design.selected
    print(
        f"{'selected':28s} variance={selected.objectives[0]:.6g} "
        f"distance={selected.objectives[1]:.6g} "
        f"avg_subset={selected.solution.average_subset_size():.2f}"
    )
    print(
        f"[repro.exec] design {'served from cache' if was_cached else 'optimized'}"
    )
    return 0


def _run_optimize_grid(
    args: argparse.Namespace, specs: List[DesignSpec], cache
) -> int:
    """Fan a DesignSpec grid over worker processes (one row per design)."""
    if args.progress:
        print(
            "[repro.exec] warning: --progress only applies to single serial "
            "designs; ignored for grids",
            file=sys.stderr,
        )
    batch = DesignBatch(
        specs,
        workers=args.workers,
        cache=cache,
        base_seed=args.seed,
        plugins=tuple(getattr(args, "plugin", [])),
    )
    outcomes = batch.run()
    if args.json_output:
        _print_json({
            "command": "optimize",
            "engine": _engine_document(batch),
            "designs": [
                _design_document(outcome.spec, outcome.design, outcome.from_cache)
                for outcome in outcomes
            ],
        })
        return 0
    for outcome in outcomes:
        spec = outcome.spec
        placement = spec.placement.resolve()
        selected = outcome.design.selected
        source = "cache" if outcome.from_cache else "optimized"
        print(
            f"{placement.name:12s} optimizer={spec.optimizer:14s} "
            f"seed={spec.options.get('seed', '-')!s:>10s} "
            f"variance={selected.objectives[0]:.6g} "
            f"distance={selected.objectives[1]:.6g} "
            f"avg_subset={selected.solution.average_subset_size():.2f} "
            f"[{source}]"
        )
    print(
        f"[repro.exec] {batch.last_executed} optimized, "
        f"{batch.last_cached} served from cache "
        f"({batch.workers} worker{'s' if batch.workers != 1 else ''})"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    os.makedirs(args.cache_dir, exist_ok=True)
    db_path = args.db or os.path.join(args.cache_dir, DEFAULT_DB_FILENAME)
    store = SqliteStore(db_path)
    return service_http.serve(
        store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_attempts=args.max_attempts,
        plugins=tuple(getattr(args, "plugin", [])),
        shard=_parse_shard_argument(args),
        replica_batch=getattr(args, "replica_batch", None),
        verbose=getattr(args, "verbose", False),
    )


def _run_merge(args: argparse.Namespace) -> int:
    aggregator = StreamingAggregator()

    def on_progress(source: str, rows: int) -> None:
        print(f"[repro.merge] {source}: {rows} row(s) read", file=sys.stderr)

    try:
        report = merge_results(
            args.inputs,
            args.into,
            backend=getattr(args, "cache_backend", "json"),
            aggregator=aggregator,
            on_progress=None if args.json_output else on_progress,
        )
    except MergeConflict as error:
        # Two shards produced different rows for one key: the bit-identity
        # invariant is broken, so refuse to write a merged set at all.
        raise SystemExit(f"merge conflict: {error}")
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json_output:
        _print_json({
            "command": "merge",
            "into": args.into,
            "report": report.to_summary(),
            "aggregate": aggregator.summary(),
        })
        return 0
    print(
        f"[repro.merge] {report.results} result(s) and {report.designs} "
        f"design(s) merged into {args.into} from {len(report.sources)} "
        f"source(s) ({report.result_duplicates} duplicate row(s))"
    )
    front = aggregator.summary()["pareto"]
    print(
        f"[repro.merge] streaming aggregate: {aggregator.rows} row(s), "
        f"pareto front size {front['size']}"
    )
    return 0


def _run_cache_stats(args: argparse.Namespace) -> int:
    try:
        stats = cache_stats(args.cache_dir, getattr(args, "cache_backend", "json"))
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json_output:
        _print_json({"command": "cache-stats", **stats})
        return 0
    print(
        f"[repro.cache] {stats['cache_dir']} ({stats['backend']}): "
        f"{stats['results']} result(s), {stats['designs']} design(s), "
        f"{stats['bytes']} byte(s)"
        + (
            f", {stats['manifests']} manifest(s)"
            if "manifests" in stats else ""
        )
    )
    return 0


def _run_cache_migrate(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.cache_dir):
        raise SystemExit(f"--cache-dir {args.cache_dir!r} is not a directory")
    db_path = args.db or os.path.join(args.cache_dir, DEFAULT_DB_FILENAME)
    store = SqliteStore(db_path)
    try:
        counts = migrate_json_cache(args.cache_dir, store)
    finally:
        store.close()
    print(
        f"[repro.cache] migrated {counts['results']} result(s) and "
        f"{counts['designs']} design(s) into {db_path} "
        f"({counts['skipped']} skipped)"
    )
    return 0


def _load_trace_log(path: str):
    try:
        return load_span_records(path)
    except OSError as error:
        raise SystemExit(f"cannot read trace log {path!r}: {error}")
    except ValueError as error:
        raise SystemExit(str(error))


def _run_trace_export(args: argparse.Namespace) -> int:
    records = _load_trace_log(args.log)
    text = json.dumps(chrome_trace_document(records), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(
            f"[repro.trace] {len(records)} span(s) -> {args.out} "
            "(open in https://ui.perfetto.dev or chrome://tracing)",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def _run_trace_report(args: argparse.Namespace) -> int:
    records = _load_trace_log(args.log)
    rows = trace_report(records)
    if args.json_output:
        _print_json({
            "command": "trace-report",
            "log": args.log,
            "spans": rows,
        })
        return 0
    print(
        f"{'span':24s} {'count':>7s} {'total_ms':>10s} "
        f"{'p50_us':>9s} {'p95_us':>9s} {'max_us':>9s}"
    )
    for row in rows:
        print(
            f"{row['name']:24s} {row['count']:7d} "
            f"{row['total_us'] / 1000.0:10.2f} "
            f"{row['p50_us']:9d} {row['p95_us']:9d} {row['max_us']:9d}"
        )
    if not rows:
        print("(no spans recorded)")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        health = client.health()
        metrics_text = client.metrics()
    except ServiceError as error:
        raise SystemExit(f"repro stats: {error}")
    if args.json_output:
        _print_json({
            "command": "stats",
            "url": args.url,
            "health": health,
            # The raw exposition embeds as one string; Prometheus semantics
            # (cumulative buckets etc.) do not survive naive JSON re-encoding.
            "metrics_text": metrics_text,
        })
        return 0
    tasks = health.get("tasks", {})
    counts = " ".join(f"{state}={tasks[state]}" for state in sorted(tasks))
    print(
        f"[repro.stats] {args.url}: status={health.get('status')} "
        f"workers={health.get('workers')} {counts}"
    )
    cache = health.get("cache")
    if cache:
        tables = cache.get("tables", {})
        rows = " ".join(f"{name}={tables[name]}" for name in sorted(tables))
        print(
            f"[repro.stats] cache ({cache.get('backend')}): {rows} "
            f"{cache.get('bytes')} byte(s)"
        )
    print(metrics_text, end="")
    return 0


def _run_probe(args: argparse.Namespace) -> int:
    specs = _load_spec_documents(args.spec)
    if args.backend:
        specs = [spec.with_(backend=args.backend) for spec in specs]
    try:
        channels = (
            ProbeSpec.parse_channels(args.channels)
            if args.channels else PROBE_CHANNELS
        )
        probe = ProbeSpec(
            interval=args.interval,
            channels=channels,
            max_samples=args.max_samples,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    lines: List[str] = []
    for index, spec in enumerate(specs):
        with span("probe.run", spec=index):
            result = run_experiment(spec, probe=probe)
        series = result.probe
        if series is None:  # pragma: no cover - every backend fills it
            raise SystemExit(
                f"backend {spec.sim.backend!r} returned no probe series"
            )
        for row in series.rows():
            document = {"spec": index, **row} if len(specs) > 1 else row
            lines.append(json.dumps(document, sort_keys=True))
        print(
            f"[repro.probe] spec {index}: {len(series.cycles)} sample(s) "
            f"every {probe.interval} cycle(s), {series.dropped} dropped",
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        print(
            f"[repro.probe] {len(lines)} row(s) -> {args.out}",
            file=sys.stderr,
        )
    else:
        for line in lines:
            print(line)
    return 0


def _print_registry(title: str, registry) -> None:
    print(f"{title}:")
    for entry in registry.entries():
        alias_note = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        description = entry.description or ""
        print(f"  {entry.name:18s} {description}{alias_note}")


def _registry_document(registry) -> List[Dict[str, Any]]:
    return [
        {
            "name": entry.name,
            "description": entry.description or "",
            "aliases": list(entry.aliases),
        }
        for entry in registry.entries()
    ]


def _run_list(args: argparse.Namespace) -> int:
    registries = (
        ("policies", POLICY_REGISTRY),
        ("traffic patterns", PATTERN_REGISTRY),
        ("applications", APPLICATION_REGISTRY),
        ("placements", PLACEMENT_REGISTRY),
        ("simulation backends", BACKEND_REGISTRY),
        ("optimizers", OPTIMIZER_REGISTRY),
        ("scenario events", SCENARIO_EVENT_REGISTRY),
    )
    if getattr(args, "json_output", False):
        _print_json({
            "command": "list",
            "registries": {
                title: _registry_document(registry)
                for title, registry in registries
            },
        })
        return 0
    for index, (title, registry) in enumerate(registries):
        if index:
            print()
        _print_registry(title, registry)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (console script ``repro`` / ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    _load_plugins(args)
    _install_cli_tracer(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "run":
        return _run_specs(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "optimize":
        return _run_optimize(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "merge":
        return _run_merge(args)
    if args.command == "cache":
        if args.cache_command == "migrate":
            return _run_cache_migrate(args)
        if args.cache_command == "stats":
            return _run_cache_stats(args)
        raise SystemExit(
            f"unknown cache command {args.cache_command!r}"
        )  # pragma: no cover
    if args.command == "trace":
        if args.trace_command == "export":
            return _run_trace_export(args)
        if args.trace_command == "report":
            return _run_trace_report(args)
        raise SystemExit(
            f"unknown trace command {args.trace_command!r}"
        )  # pragma: no cover
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "probe":
        return _run_probe(args)
    if args.command == "list":
        return _run_list(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
