"""Command-line front end for the parallel experiment engine.

``python -m repro`` (or the ``repro`` console script) exposes the two
workflows every figure of the paper is built from:

``sweep``
    A Fig. 4-style latency-vs-injection-rate sweep: one latency curve per
    policy, with the 10x-zero-load saturation rate per curve.

``compare``
    A Fig. 6/7-style single-operating-point comparison: one row per policy
    with absolute and Elevator-First-normalized metrics.

Both subcommands share the engine flags:

``--workers N``
    Fan the experiment grid out over N processes (``1`` = serial).

``--cache-dir DIR``
    Disk-backed caching of summary rows *and* AdEle offline designs; a warm
    directory makes re-runs skip every finished simulation and the AMOSA
    stage.  Without it, caching is in-memory (deduplication only).

``--seed S``
    Batch-level base seed: every task's RNG seed is derived from the
    canonical hash of its configuration plus S, so results are reproducible
    across processes and worker counts.

The target is either a named placement (``--placement PS1``) or an ad-hoc
one (``--mesh X Y Z --elevators "x,y;x,y"``), which keeps CI smoke runs on
tiny meshes fast.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.comparison import format_table, policy_comparison_from_summaries
from repro.analysis.runner import DesignCache, ExperimentConfig
from repro.analysis.sweep import LatencyCurve, saturation_rate
from repro.exec.batch import ExperimentBatch, summaries_by_policy
from repro.exec.cache import DiskDesignCache, ResultCache
from repro.topology.elevators import ElevatorPlacement
from repro.topology.mesh3d import Mesh3D


def _comma_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _comma_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_columns(text: str) -> List[Tuple[int, int]]:
    """Parse ``"x,y;x,y"`` elevator column lists."""
    columns: List[Tuple[int, int]] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        x, y = part.split(",")
        columns.append((int(x), int(y)))
    return columns


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    target = parser.add_argument_group("target")
    target.add_argument(
        "--placement", default="PS1",
        help="named placement (PS1-PS3, PM); ignored when --mesh is given",
    )
    target.add_argument(
        "--mesh", nargs=3, type=int, metavar=("X", "Y", "Z"), default=None,
        help="ad-hoc mesh dimensions for a custom placement",
    )
    target.add_argument(
        "--elevators", default=None, metavar="X,Y;X,Y",
        help='elevator columns of the ad-hoc placement, e.g. "0,0;1,1"',
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument(
        "--policies", default="elevator_first,cda,adele",
        help="comma-separated policy names",
    )
    workload.add_argument("--traffic", default="uniform", help="traffic pattern name")
    workload.add_argument("--warmup", type=int, default=300, help="warm-up cycles")
    workload.add_argument(
        "--measure", type=int, default=1500, help="measurement cycles"
    )
    workload.add_argument("--drain", type=int, default=800, help="max drain cycles")
    engine = parser.add_argument_group("engine")
    engine.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial fallback)",
    )
    engine.add_argument(
        "--cache-dir", default=None,
        help="directory for disk-backed result/design caching",
    )
    engine.add_argument(
        "--seed", type=int, default=None,
        help="base seed; per-task seeds derive from it and the config hash",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdEle reproduction: parallel experiment engine",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="latency-vs-injection-rate sweep (Fig. 4 style)"
    )
    _add_common_arguments(sweep)
    sweep.add_argument(
        "--rates", default="0.001,0.003,0.005",
        help="comma-separated packet injection rates",
    )

    compare = subparsers.add_parser(
        "compare", help="policy comparison at one operating point (Fig. 6/7 style)"
    )
    _add_common_arguments(compare)
    compare.add_argument(
        "--rate", type=float, default=0.004, help="packet injection rate"
    )
    compare.add_argument(
        "--baseline", default="elevator_first", help="normalization baseline policy"
    )
    return parser


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    placement_obj: Optional[ElevatorPlacement] = None
    placement_name = args.placement
    if args.mesh is not None:
        if not args.elevators:
            raise SystemExit("--mesh requires --elevators")
        mesh = Mesh3D(*args.mesh)
        columns = _parse_columns(args.elevators)
        placement_name = "cli-custom"
        placement_obj = ElevatorPlacement(mesh, columns, name=placement_name)
    return ExperimentConfig(
        placement=placement_name,
        placement_obj=placement_obj,
        traffic=args.traffic,
        warmup_cycles=args.warmup,
        measurement_cycles=args.measure,
        drain_cycles=args.drain,
    )


def _make_batch(
    args: argparse.Namespace, configs: List[ExperimentConfig]
) -> ExperimentBatch:
    result_cache = ResultCache(args.cache_dir)
    design_cache: Optional[DesignCache] = (
        DiskDesignCache(args.cache_dir) if args.cache_dir else None
    )
    return ExperimentBatch(
        configs,
        workers=args.workers,
        result_cache=result_cache,
        design_cache=design_cache,
        base_seed=args.seed,
    )


def _report_engine(batch: ExperimentBatch) -> None:
    print(
        f"[repro.exec] {batch.last_executed} simulated, "
        f"{batch.last_cached} served from cache "
        f"({batch.workers} worker{'s' if batch.workers != 1 else ''})"
    )


def _run_sweep(args: argparse.Namespace) -> int:
    policies = _comma_names(args.policies)
    rates = _comma_floats(args.rates)
    if not policies or not rates:
        raise SystemExit("need at least one policy and one rate")
    base = _base_config(args)
    configs = [
        base.with_(policy=policy, injection_rate=rate)
        for policy in policies
        for rate in rates
    ]
    batch = _make_batch(args, configs)
    outcomes = batch.run()
    _report_engine(batch)

    curves = {policy: LatencyCurve(policy=policy) for policy in policies}
    for outcome in outcomes:
        curves[outcome.config.policy].add_point(
            outcome.config.injection_rate, outcome.summary["average_latency"]
        )
    print(f"placement={base.placement} traffic={base.traffic}")
    for policy in policies:
        curve = curves[policy]
        points = "  ".join(
            f"{rate:.4f}:{latency:9.2f}" for rate, latency in curve.points
        )
        print(f"{policy:15s} {points}")
        print(
            f"{policy:15s} saturation rate (10x zero-load): "
            f"{saturation_rate(curve):.4f}"
        )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    policies = _comma_names(args.policies)
    if not policies:
        raise SystemExit("need at least one policy")
    base = _base_config(args)
    configs = [
        base.with_(policy=policy, injection_rate=args.rate) for policy in policies
    ]
    batch = _make_batch(args, configs)
    outcomes = batch.run()
    _report_engine(batch)

    summaries = summaries_by_policy(outcomes)
    baseline = args.baseline
    if baseline not in summaries:
        baseline = policies[0]
        print(
            f"[repro.exec] warning: baseline {args.baseline!r} not among "
            f"--policies; normalizing to {baseline!r} instead",
            file=sys.stderr,
        )
    table = policy_comparison_from_summaries(summaries, baseline=baseline)
    print(f"placement={base.placement} traffic={base.traffic} rate={args.rate}")
    print(format_table(table))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (console script ``repro`` / ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "compare":
        return _run_compare(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
