"""Parallel experiment execution engine.

``repro.exec`` turns lists of declarative experiment configurations into
results -- in parallel, deterministically, and with disk-backed caching:

* :class:`~repro.exec.batch.ExperimentBatch` fans configs out over a process
  pool (serial fallback at ``workers=1``) and returns summary rows in input
  order;
* :mod:`repro.exec.cache` provides the canonical config serialization and
  hash every cache key and derived seed is built from, plus the
  :class:`~repro.exec.cache.ResultCache` (summary rows) and
  :class:`~repro.exec.cache.DiskDesignCache` (AdEle offline designs);
* :mod:`repro.exec.cli` is the ``python -m repro`` front end (``sweep`` /
  ``compare`` / ``run --spec`` / ``list`` subcommands with ``--workers``,
  ``--cache-dir``, ``--seed`` and ``--plugin``).

Determinism guarantee: identical configuration + seed produce bit-identical
``SimulationResult.summary()`` rows whether a batch runs serially, with N
workers, or replays from a warm cache directory.
"""

from repro.exec.batch import (
    ExperimentBatch,
    ExperimentOutcome,
    run_batch,
    summaries_by_policy,
)
from repro.exec.cache import (
    DiskDesignCache,
    ResultCache,
    canonical_config,
    canonical_json,
    config_from_canonical,
    config_key,
    derive_seed,
    spec_from_canonical,
)

__all__ = [
    "ExperimentBatch",
    "ExperimentOutcome",
    "run_batch",
    "summaries_by_policy",
    "ResultCache",
    "DiskDesignCache",
    "canonical_config",
    "canonical_json",
    "config_from_canonical",
    "spec_from_canonical",
    "config_key",
    "derive_seed",
]
