"""Parallel experiment execution engine.

``repro.exec`` turns lists of declarative experiment configurations into
results -- in parallel, deterministically, and with disk-backed caching:

* :class:`~repro.exec.batch.ExperimentBatch` fans configs out over a process
  pool (serial fallback at ``workers=1``) and returns summary rows in input
  order;
* :class:`~repro.exec.designs.DesignBatch` does the same for offline
  :class:`~repro.spec.DesignSpec` grids (per-design derived optimizer
  seeds, design-cache deduplication);
* :mod:`repro.exec.cache` provides the canonical config serialization and
  hash every cache key and derived seed is built from, plus the
  :class:`~repro.exec.cache.ResultCache` (summary rows), the
  :class:`~repro.exec.cache.DiskDesignCache` (AdEle offline designs) and
  the pluggable :func:`~repro.exec.cache.open_caches` backend registry
  (``json`` files or the service's SQLite store);
* :mod:`repro.exec.shard` partitions grids deterministically by canonical
  key hash (``--shard K/N``), :mod:`repro.exec.aggregate` folds outcomes
  into bounded streaming aggregates and merges shard outputs back into one
  bit-identical result set (``repro merge``);
* :mod:`repro.exec.cli` is the ``python -m repro`` front end (``sweep`` /
  ``compare`` / ``run --spec`` / ``list`` subcommands with ``--workers``,
  ``--cache-dir``, ``--seed`` and ``--plugin``).

Determinism guarantee: identical configuration + seed produce bit-identical
``SimulationResult.summary()`` rows whether a batch runs serially, with N
workers, or replays from a warm cache directory.
"""

from repro.exec.aggregate import (
    MergeConflict,
    MergeReport,
    ParetoFront,
    ParetoPoint,
    StreamingAggregator,
    merge_results,
)
from repro.exec.batch import (
    ChunkAbort,
    ExperimentBatch,
    ExperimentOutcome,
    key_extra_for,
    run_batch,
    summaries_by_policy,
)
from repro.exec.cache import (
    DiskDesignCache,
    ResultCache,
    available_cache_backends,
    cache_stats,
    canonical_config,
    canonical_json,
    config_from_canonical,
    config_key,
    derive_seed,
    iter_json_cache_entries,
    open_caches,
    register_cache_backend,
    spec_from_canonical,
)
from repro.exec.designs import (
    DesignBatch,
    DesignOutcome,
    derive_design_seed,
    run_design_batch,
)
from repro.exec.shard import (
    ShardSpec,
    parse_shard,
    partition,
    shard_cache_dir,
    shard_counts,
    shard_of,
)

__all__ = [
    "ExperimentBatch",
    "ExperimentOutcome",
    "ChunkAbort",
    "run_batch",
    "summaries_by_policy",
    "key_extra_for",
    "DesignBatch",
    "DesignOutcome",
    "derive_design_seed",
    "run_design_batch",
    "ResultCache",
    "DiskDesignCache",
    "available_cache_backends",
    "cache_stats",
    "iter_json_cache_entries",
    "open_caches",
    "register_cache_backend",
    "canonical_config",
    "canonical_json",
    "config_from_canonical",
    "spec_from_canonical",
    "config_key",
    "derive_seed",
    "ShardSpec",
    "parse_shard",
    "partition",
    "shard_cache_dir",
    "shard_counts",
    "shard_of",
    "StreamingAggregator",
    "ParetoFront",
    "ParetoPoint",
    "MergeReport",
    "MergeConflict",
    "merge_results",
]
