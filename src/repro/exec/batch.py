"""Parallel experiment batches with deterministic seeding and caching.

:class:`ExperimentBatch` is the execution backbone of the repository: it
takes a list of :class:`~repro.analysis.runner.ExperimentConfig`, fans the
uncached ones out over a :class:`concurrent.futures.ProcessPoolExecutor`
(or runs them inline when ``workers=1``) and returns one
:class:`ExperimentOutcome` per input configuration, in input order.

Determinism guarantee
    Every task runs the exact same code path regardless of worker count:
    resolve placement, build a fresh network, build the packet source from
    the config's seed, simulate.  All randomness flows from the config (its
    ``seed`` field, or a seed derived from the canonical config hash when a
    batch-level ``base_seed`` is given), so a batch produces *bit-identical*
    ``SimulationResult.summary()`` rows whether it runs serially, with N
    workers, or from a warm disk cache.

Caching
    Outcomes are stored in a :class:`~repro.exec.cache.ResultCache` keyed by
    the canonical config hash; warm entries skip simulation entirely
    (``from_cache=True``).  AdEle's expensive offline stage is resolved
    *once in the parent process* per unique (placement, subset-size) pair --
    through the injectable design cache -- and shipped to workers as plain
    per-router subsets, so worker processes never re-run AMOSA.
"""

from __future__ import annotations

import dataclasses
import importlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.runner import (
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    as_spec,
    build_network,
    config_from_spec,
    design_for_placement,
    resolve_placement,
    run_experiment,
)
from repro.energy.model import EnergyModel
from repro.exec.cache import ResultCache, canonical_config, config_key, derive_seed
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy
from repro.spec import (
    DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD,
    DEFAULT_ADELE_MAX_SUBSET_SIZE,
    ExperimentSpec,
)


def key_extra_for(energy_model: Optional[EnergyModel] = None) -> Dict[str, Any]:
    """The non-spec cache-key inputs of a batch run.

    A custom energy model changes the energy columns of every summary row,
    so its parameters are mixed into the key -- rows cached under one model
    are never served for a different one.  The *effective* model is hashed
    (``None`` means the simulator's default), so passing the default
    explicitly and passing ``None`` share cache entries.  The experiment
    service computes submit-time task keys with this same helper, so a job
    task and a direct batch run of the same spec share one cache row.
    """
    effective = energy_model if energy_model is not None else EnergyModel()
    return {"energy_model": dataclasses.asdict(effective)}


@dataclass(frozen=True)
class _Task:
    """One unit of work shipped to a worker (picklable, design pre-resolved).

    ``plugins`` are module names imported in the worker before the spec is
    resolved, so components registered at import time (``--plugin`` modules)
    exist by name even under the ``spawn``/``forkserver`` multiprocessing
    start methods, where workers do not inherit the parent's registries.
    """

    spec: ExperimentSpec
    key: str
    subsets: Optional[Dict[int, Tuple[int, ...]]] = None
    energy_model: Optional[EnergyModel] = None
    plugins: Tuple[str, ...] = ()


@dataclass
class ExperimentOutcome:
    """Result of one batched experiment.

    Attributes:
        spec: The effective typed spec (seed already derived).
        key: Canonical config hash (the cache key).
        summary: ``SimulationResult.summary()`` row of the run.
        from_cache: ``True`` when the row came from the result cache and no
            simulation was performed for this configuration.
    """

    spec: ExperimentSpec
    key: str
    summary: Dict[str, float]
    from_cache: bool

    @property
    def config(self) -> ExperimentConfig:
        """Deprecated flat view of :attr:`spec` (legacy callers)."""
        return config_from_spec(self.spec)


def _policy_from_subsets(
    spec: ExperimentSpec, placement, subsets: Dict[int, Tuple[int, ...]]
):
    """Construct the AdEle online policy from pre-resolved offline subsets.

    Mirrors :func:`repro.analysis.runner.build_policy` exactly (same kwargs,
    same seeding) so batched runs match unbatched ones bit for bit.
    """
    seed = spec.sim.seed
    if spec.policy.name.lower() == "adele":
        threshold = spec.policy.option(
            "low_traffic_threshold", DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD
        )
        kwargs: Dict[str, Any] = {"subsets": subsets, "seed": seed}
        if threshold is not None:
            kwargs["low_traffic_threshold"] = threshold
        return AdElePolicy(placement, **kwargs)
    return AdEleRoundRobinPolicy(placement, subsets=subsets, seed=seed)


def _execute_task(task: _Task) -> Tuple[str, Dict[str, float]]:
    """Run one experiment end to end (module-level so it pickles)."""
    for module in task.plugins:
        importlib.import_module(module)
    spec = task.spec
    placement = resolve_placement(spec)
    if task.subsets is not None:
        policy = _policy_from_subsets(spec, placement, task.subsets)
        network = build_network(spec, placement=placement, policy=policy)
    else:
        network = build_network(spec, placement=placement)
    result = run_experiment(spec, energy_model=task.energy_model, network=network)
    return task.key, result.summary()


class ExperimentBatch:
    """Run a list of experiments, in parallel and cached.

    Args:
        configs: Experiments to run -- typed :class:`ExperimentSpec` values
            or legacy :class:`ExperimentConfig` shims, freely mixed (any
            iterable; order is preserved in the returned outcomes).
        workers: Process count.  ``1`` (the default) runs every task inline
            with no subprocess involved -- the serial fallback.
        result_cache: Summary-row cache consulted before and populated after
            execution; defaults to a fresh memory-only cache (which still
            deduplicates identical configs within the batch).
        design_cache: AdEle offline-design cache used while preparing tasks;
            defaults to the process-wide cache of :mod:`repro.analysis.runner`.
        base_seed: When given, each spec's seed is replaced by
            :func:`~repro.exec.cache.derive_seed` (canonical-hash seeding);
            when ``None``, specs keep their own seeds.
        energy_model: Optional energy model forwarded to every simulation.
        plugins: Module names imported inside each worker process before
            resolving specs, so registry components registered at import
            time stay available under the ``spawn``/``forkserver`` start
            methods.  (Components registered by modules already imported in
            the parent are inherited automatically under ``fork``.)
    """

    def __init__(
        self,
        configs: Iterable[Union[ExperimentSpec, ExperimentConfig]],
        workers: int = 1,
        result_cache: Optional[ResultCache] = None,
        design_cache: Optional[DesignCache] = None,
        base_seed: Optional[int] = None,
        energy_model: Optional[EnergyModel] = None,
        plugins: Sequence[str] = (),
    ) -> None:
        self.specs: List[ExperimentSpec] = [as_spec(config) for config in configs]
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self.design_cache = design_cache
        self.base_seed = base_seed
        self.energy_model = energy_model
        self.plugins: Tuple[str, ...] = tuple(plugins)
        #: Number of simulations actually executed by the last ``run()``.
        self.last_executed = 0
        #: Number of outcomes served from cache by the last ``run()``.
        self.last_cached = 0

    # ------------------------------------------------------------------ #
    @property
    def configs(self) -> List[ExperimentConfig]:
        """Deprecated flat view of :attr:`specs` (legacy callers)."""
        return [config_from_spec(spec) for spec in self.specs]

    def _key_extra(self) -> Dict[str, Any]:
        """Non-spec inputs the cache key must capture (see :func:`key_extra_for`)."""
        return key_extra_for(self.energy_model)

    def effective_specs(self) -> List[ExperimentSpec]:
        """Specs with batch-level seed derivation applied."""
        if self.base_seed is None:
            return list(self.specs)
        return [
            spec.with_(seed=derive_seed(spec, self.base_seed)) for spec in self.specs
        ]

    def effective_configs(self) -> List[ExperimentConfig]:
        """Deprecated flat view of :meth:`effective_specs` (legacy callers)."""
        return [config_from_spec(spec) for spec in self.effective_specs()]

    def _make_task(self, spec: ExperimentSpec, key: str) -> _Task:
        subsets = None
        if spec.policy.needs_design:
            placement = resolve_placement(spec)
            if spec.design is not None:
                design = design_for_placement(
                    placement, spec.design, cache=self.design_cache
                )
            else:
                design = adele_design_for(
                    placement,
                    max_subset_size=spec.policy.option(
                        "max_subset_size", DEFAULT_ADELE_MAX_SUBSET_SIZE
                    ),
                    cache=self.design_cache,
                )
            subsets = design.selected_subsets()
        return _Task(
            spec=spec,
            key=key,
            subsets=subsets,
            energy_model=self.energy_model,
            plugins=self.plugins,
        )

    # ------------------------------------------------------------------ #
    def run(self) -> List[ExperimentOutcome]:
        """Execute the batch and return outcomes in input order."""
        specs = self.effective_specs()
        extra = self._key_extra()
        keys = [config_key(spec, extra=extra) for spec in specs]
        outcomes: List[Optional[ExperimentOutcome]] = [None] * len(specs)

        pending: Dict[str, _Task] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if key in pending:
                continue  # deduplicated: same canonical spec already queued
            cached = self.result_cache.get(key)
            if cached is not None:
                outcomes[index] = ExperimentOutcome(
                    spec=spec, key=key, summary=cached, from_cache=True
                )
            else:
                pending[key] = self._make_task(spec, key)

        executed: Dict[str, Dict[str, float]] = {}
        if pending:
            tasks = list(pending.values())
            if self.workers == 1 or len(tasks) == 1:
                finished = [_execute_task(task) for task in tasks]
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks))
                ) as pool:
                    finished = list(pool.map(_execute_task, tasks))
            for key, summary in finished:
                executed[key] = summary
                self.result_cache.put(
                    key, canonical_config(pending[key].spec), summary
                )

        self.last_executed = len(executed)
        self.last_cached = 0
        freshly_reported: set = set()
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if outcomes[index] is not None:
                self.last_cached += 1
                continue
            if key in executed and key not in freshly_reported:
                # The one occurrence a simulation actually ran for.
                freshly_reported.add(key)
                outcomes[index] = ExperimentOutcome(
                    spec=spec,
                    key=key,
                    summary=dict(executed[key]),
                    from_cache=False,
                )
            else:
                # Duplicate of an earlier spec: the first occurrence was
                # served from cache or executed; either way the row is in
                # the cache now and no simulation ran for *this* outcome.
                summary = self.result_cache.get(key)
                assert summary is not None
                outcomes[index] = ExperimentOutcome(
                    spec=spec, key=key, summary=summary, from_cache=True
                )
                self.last_cached += 1
        return [outcome for outcome in outcomes if outcome is not None]


def run_batch(
    configs: Iterable[Union[ExperimentSpec, ExperimentConfig]],
    workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    design_cache: Optional[DesignCache] = None,
    base_seed: Optional[int] = None,
    energy_model: Optional[EnergyModel] = None,
    plugins: Sequence[str] = (),
) -> List[ExperimentOutcome]:
    """Convenience wrapper: build an :class:`ExperimentBatch` and run it."""
    batch = ExperimentBatch(
        configs,
        workers=workers,
        result_cache=result_cache,
        design_cache=design_cache,
        base_seed=base_seed,
        energy_model=energy_model,
        plugins=plugins,
    )
    return batch.run()


def summaries_by_policy(
    outcomes: Sequence[ExperimentOutcome],
) -> Dict[str, Dict[str, float]]:
    """Index outcomes by policy name (for comparison tables).

    Raises:
        ValueError: If two outcomes share a policy name (ambiguous table).
    """
    table: Dict[str, Dict[str, float]] = {}
    for outcome in outcomes:
        policy = outcome.spec.policy.name
        if policy in table:
            raise ValueError(f"duplicate policy {policy!r} in outcome list")
        table[policy] = outcome.summary
    return table
