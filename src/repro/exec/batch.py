"""Parallel experiment batches with deterministic seeding and caching.

:class:`ExperimentBatch` is the execution backbone of the repository: it
takes a list of :class:`~repro.analysis.runner.ExperimentConfig`, fans the
uncached ones out over a :class:`concurrent.futures.ProcessPoolExecutor`
(or runs them inline when ``workers=1``) and returns one
:class:`ExperimentOutcome` per input configuration, in input order.

Determinism guarantee
    Every task runs the exact same code path regardless of worker count:
    resolve placement, build a fresh network, build the packet source from
    the config's seed, simulate.  All randomness flows from the config (its
    ``seed`` field, or a seed derived from the canonical config hash when a
    batch-level ``base_seed`` is given), so a batch produces *bit-identical*
    ``SimulationResult.summary()`` rows whether it runs serially, with N
    workers, or from a warm disk cache.

Caching
    Outcomes are stored in a :class:`~repro.exec.cache.ResultCache` keyed by
    the canonical config hash; warm entries skip simulation entirely
    (``from_cache=True``).  AdEle's expensive offline stage is resolved
    *once in the parent process* per unique (placement, subset-size) pair --
    through the injectable design cache -- and shipped to workers as plain
    per-router subsets, so worker processes never re-run AMOSA.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.runner import (
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    build_network,
    resolve_placement,
    run_experiment,
)
from repro.energy.model import EnergyModel
from repro.exec.cache import ResultCache, canonical_config, config_key, derive_seed
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy

#: Policy names whose construction needs AdEle's offline design.
_ADELE_POLICIES = ("adele", "adele_rr")


@dataclass(frozen=True)
class _Task:
    """One unit of work shipped to a worker (picklable, design pre-resolved)."""

    config: ExperimentConfig
    key: str
    subsets: Optional[Dict[int, Tuple[int, ...]]] = None
    energy_model: Optional[EnergyModel] = None


@dataclass
class ExperimentOutcome:
    """Result of one batched experiment.

    Attributes:
        config: The effective configuration (seed already derived).
        key: Canonical config hash (the cache key).
        summary: ``SimulationResult.summary()`` row of the run.
        from_cache: ``True`` when the row came from the result cache and no
            simulation was performed for this configuration.
    """

    config: ExperimentConfig
    key: str
    summary: Dict[str, float]
    from_cache: bool


def _policy_from_subsets(
    config: ExperimentConfig, placement, subsets: Dict[int, Tuple[int, ...]]
):
    """Construct the AdEle online policy from pre-resolved offline subsets.

    Mirrors :func:`repro.analysis.runner.build_policy` exactly (same kwargs,
    same seeding) so batched runs match unbatched ones bit for bit.
    """
    if config.policy.lower() == "adele":
        kwargs = {"subsets": subsets, "seed": config.seed}
        if config.adele_low_traffic_threshold is not None:
            kwargs["low_traffic_threshold"] = config.adele_low_traffic_threshold
        return AdElePolicy(placement, **kwargs)
    return AdEleRoundRobinPolicy(placement, subsets=subsets, seed=config.seed)


def _execute_task(task: _Task) -> Tuple[str, Dict[str, float]]:
    """Run one experiment end to end (module-level so it pickles)."""
    config = task.config
    placement = resolve_placement(config)
    if task.subsets is not None:
        policy = _policy_from_subsets(config, placement, task.subsets)
        network = build_network(config, placement=placement, policy=policy)
    else:
        network = build_network(config, placement=placement)
    result = run_experiment(
        config, energy_model=task.energy_model, network=network
    )
    return task.key, result.summary()


class ExperimentBatch:
    """Run a list of experiment configurations, in parallel and cached.

    Args:
        configs: Configurations to run (any iterable; order is preserved in
            the returned outcomes).
        workers: Process count.  ``1`` (the default) runs every task inline
            with no subprocess involved -- the serial fallback.
        result_cache: Summary-row cache consulted before and populated after
            execution; defaults to a fresh memory-only cache (which still
            deduplicates identical configs within the batch).
        design_cache: AdEle offline-design cache used while preparing tasks;
            defaults to the process-wide cache of :mod:`repro.analysis.runner`.
        base_seed: When given, each config's ``seed`` field is replaced by
            :func:`~repro.exec.cache.derive_seed` (canonical-hash seeding);
            when ``None``, configs keep their own seeds.
        energy_model: Optional energy model forwarded to every simulation.
    """

    def __init__(
        self,
        configs: Iterable[ExperimentConfig],
        workers: int = 1,
        result_cache: Optional[ResultCache] = None,
        design_cache: Optional[DesignCache] = None,
        base_seed: Optional[int] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.configs: List[ExperimentConfig] = list(configs)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self.design_cache = design_cache
        self.base_seed = base_seed
        self.energy_model = energy_model
        #: Number of simulations actually executed by the last ``run()``.
        self.last_executed = 0
        #: Number of outcomes served from cache by the last ``run()``.
        self.last_cached = 0

    # ------------------------------------------------------------------ #
    def _key_extra(self) -> Dict[str, Any]:
        """Non-config inputs the cache key must capture.

        A custom energy model changes the energy columns of every summary
        row, so its parameters are mixed into the key -- rows cached under
        one model are never served for a different one.  The *effective*
        model is hashed (``None`` means the simulator's default), so passing
        the default explicitly and passing ``None`` share cache entries.
        """
        effective = self.energy_model if self.energy_model is not None else EnergyModel()
        return {"energy_model": dataclasses.asdict(effective)}

    def effective_configs(self) -> List[ExperimentConfig]:
        """Configs with batch-level seed derivation applied."""
        if self.base_seed is None:
            return list(self.configs)
        return [
            config.with_(seed=derive_seed(config, self.base_seed))
            for config in self.configs
        ]

    def _make_task(self, config: ExperimentConfig, key: str) -> _Task:
        subsets = None
        if config.policy.lower() in _ADELE_POLICIES:
            placement = resolve_placement(config)
            design = adele_design_for(
                placement,
                max_subset_size=config.adele_max_subset_size,
                cache=self.design_cache,
            )
            subsets = design.selected_subsets()
        return _Task(
            config=config, key=key, subsets=subsets, energy_model=self.energy_model
        )

    # ------------------------------------------------------------------ #
    def run(self) -> List[ExperimentOutcome]:
        """Execute the batch and return outcomes in input order."""
        configs = self.effective_configs()
        extra = self._key_extra()
        keys = [config_key(config, extra=extra) for config in configs]
        outcomes: List[Optional[ExperimentOutcome]] = [None] * len(configs)

        pending: Dict[str, _Task] = {}
        for index, (config, key) in enumerate(zip(configs, keys)):
            if key in pending:
                continue  # deduplicated: same canonical config already queued
            cached = self.result_cache.get(key)
            if cached is not None:
                outcomes[index] = ExperimentOutcome(
                    config=config, key=key, summary=cached, from_cache=True
                )
            else:
                pending[key] = self._make_task(config, key)

        executed: Dict[str, Dict[str, float]] = {}
        if pending:
            tasks = list(pending.values())
            if self.workers == 1 or len(tasks) == 1:
                finished = [_execute_task(task) for task in tasks]
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks))
                ) as pool:
                    finished = list(pool.map(_execute_task, tasks))
            for key, summary in finished:
                executed[key] = summary
                self.result_cache.put(
                    key, canonical_config(pending[key].config), summary
                )

        self.last_executed = len(executed)
        self.last_cached = 0
        for index, (config, key) in enumerate(zip(configs, keys)):
            if outcomes[index] is not None:
                self.last_cached += 1
                continue
            if key in executed:
                outcomes[index] = ExperimentOutcome(
                    config=config,
                    key=key,
                    summary=dict(executed[key]),
                    from_cache=False,
                )
            else:
                # Duplicate of an earlier config: first occurrence was served
                # from cache or executed; either way the row is cached now.
                summary = self.result_cache.get(key)
                assert summary is not None
                outcomes[index] = ExperimentOutcome(
                    config=config, key=key, summary=summary, from_cache=True
                )
                self.last_cached += 1
        return [outcome for outcome in outcomes if outcome is not None]


def run_batch(
    configs: Iterable[ExperimentConfig],
    workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    design_cache: Optional[DesignCache] = None,
    base_seed: Optional[int] = None,
    energy_model: Optional[EnergyModel] = None,
) -> List[ExperimentOutcome]:
    """Convenience wrapper: build an :class:`ExperimentBatch` and run it."""
    batch = ExperimentBatch(
        configs,
        workers=workers,
        result_cache=result_cache,
        design_cache=design_cache,
        base_seed=base_seed,
        energy_model=energy_model,
    )
    return batch.run()


def summaries_by_policy(
    outcomes: Sequence[ExperimentOutcome],
) -> Dict[str, Dict[str, float]]:
    """Index outcomes by policy name (for comparison tables).

    Raises:
        ValueError: If two outcomes share a policy name (ambiguous table).
    """
    table: Dict[str, Dict[str, float]] = {}
    for outcome in outcomes:
        policy = outcome.config.policy
        if policy in table:
            raise ValueError(f"duplicate policy {policy!r} in outcome list")
        table[policy] = outcome.summary
    return table
