"""Parallel experiment batches with deterministic seeding and caching.

:class:`ExperimentBatch` is the execution backbone of the repository: it
takes a list of :class:`~repro.analysis.runner.ExperimentConfig`, fans the
uncached ones out over a :class:`concurrent.futures.ProcessPoolExecutor`
(or runs them inline when ``workers=1``) and returns one
:class:`ExperimentOutcome` per input configuration, in input order.

Determinism guarantee
    Every task runs the exact same code path regardless of worker count:
    resolve placement, build a fresh network, build the packet source from
    the config's seed, simulate.  All randomness flows from the config (its
    ``seed`` field, or a seed derived from the canonical config hash when a
    batch-level ``base_seed`` is given), so a batch produces *bit-identical*
    ``SimulationResult.summary()`` rows whether it runs serially, with N
    workers, or from a warm disk cache.

Caching
    Outcomes are stored in a :class:`~repro.exec.cache.ResultCache` keyed by
    the canonical config hash; warm entries skip simulation entirely
    (``from_cache=True``).  AdEle's expensive offline stage is resolved
    *once in the parent process* per unique (placement, subset-size) pair --
    through the injectable design cache -- and shipped to workers as plain
    per-router subsets, so worker processes never re-run AMOSA.

Replica batching
    With ``replica_batch=N``, tasks that share a *structural key*
    (:func:`~repro.exec.cache.structural_key`: canonical spec minus seed)
    and run on the flat-array kernel family (``vectorized`` / ``batched``
    backends) are coalesced -- up to N seed-replicas execute through one
    replica-batched kernel pass
    (:func:`repro.sim.backends.batched.run_replica_group`) instead of N
    solo runs.  Grouping changes *only* wall-clock: each replica keeps its
    own ``config_key``, summary row and cache entry, and the grouped cache
    is byte-identical to an ungrouped run of the same grid (pinned by
    tests and the ``BENCH_perf_replicas`` gate).  Groups never span chunk
    boundaries, so ``--shard`` partitioning, checkpoint manifests and
    ``run_streaming`` aggregation behave exactly as before.

Warm-worker memoization
    Workers keep small per-process LRUs of expensive setup objects:
    constructed :class:`~repro.sim.network.Network`\\ s (reused across
    seeds/rates via ``network.reset()`` -- checkout semantics, so
    concurrent threads never share one) and
    :class:`~repro.routing.base.RouteComputation` tables (shared freely;
    they are immutable and depend only on the mesh shape).  Per-task
    setup/kernel timings and memo hit/miss counts are reported back to the
    batch (``last_setup_s`` / ``last_kernel_s`` / ``last_memo_hits`` /
    ``last_memo_misses``) and surface in every CLI ``--json`` engine
    block.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.runner import (
    _DEFAULT_ENERGY_MODEL,
    DesignCache,
    ExperimentConfig,
    adele_design_for,
    as_spec,
    build_network,
    build_packet_source,
    config_from_spec,
    design_for_placement,
    resolve_placement,
    run_experiment,
)
from repro.energy.model import EnergyModel
from repro.exec.cache import (
    ResultCache,
    _write_json_atomic,
    canonical_config,
    config_key,
    derive_seed,
    structural_key,
)
from repro.exec.shard import ShardSpec
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.probes import ProbeSpec
from repro.obs.tracing import span
from repro.registry import UnknownComponentError
from repro.routing.adele import AdElePolicy, AdEleRoundRobinPolicy
from repro.routing.base import RouteComputation
from repro.sim.backends import BACKEND_REGISTRY
from repro.spec import (
    DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD,
    DEFAULT_ADELE_MAX_SUBSET_SIZE,
    ExperimentSpec,
)


#: Environment variable: abort a chunked run after this many completed
#: chunk flushes when work remains.  Deterministic kill injection -- the
#: resume tests and the CI shard-smoke job use it to kill a sweep mid-grid
#: at a reproducible point and then prove the rerun picks up exactly where
#: the checkpointed cache left off.
ABORT_AFTER_CHUNKS_ENV = "REPRO_EXEC_ABORT_AFTER_CHUNKS"


class ChunkAbort(RuntimeError):
    """Raised by a chunked run when the abort-injection env var fires."""


def key_extra_for(energy_model: Optional[EnergyModel] = None) -> Dict[str, Any]:
    """The non-spec cache-key inputs of a batch run.

    A custom energy model changes the energy columns of every summary row,
    so its parameters are mixed into the key -- rows cached under one model
    are never served for a different one.  The *effective* model is hashed
    (``None`` means the simulator's default), so passing the default
    explicitly and passing ``None`` share cache entries.  The experiment
    service computes submit-time task keys with this same helper, so a job
    task and a direct batch run of the same spec share one cache row.
    """
    effective = energy_model if energy_model is not None else EnergyModel()
    return {"energy_model": dataclasses.asdict(effective)}


@dataclass(frozen=True)
class _Task:
    """One unit of work shipped to a worker (picklable, design pre-resolved).

    ``plugins`` are module names imported in the worker before the spec is
    resolved, so components registered at import time (``--plugin`` modules)
    exist by name even under the ``spawn``/``forkserver`` multiprocessing
    start methods, where workers do not inherit the parent's registries.
    """

    spec: ExperimentSpec
    key: str
    subsets: Optional[Dict[int, Tuple[int, ...]]] = None
    energy_model: Optional[EnergyModel] = None
    plugins: Tuple[str, ...] = ()
    probe: Optional[ProbeSpec] = None


@dataclass(frozen=True)
class _TaskGroup:
    """A replica group: tasks sharing one structural key, run in one pass.

    All members simulate the same mesh/placement/policy/traffic/cycles and
    differ only in seed, so they execute through
    :func:`repro.sim.backends.batched.run_replica_group` as one kernel
    invocation while keeping per-task keys, summaries and cache entries.
    """

    tasks: Tuple[_Task, ...]


#: Simulation backends whose specs may be coalesced into replica groups.
#: Only the flat-array kernel family is eligible: it is the kernel that
#: has the replica axis, and routing other backends' specs through it
#: would violate cache byte-identity (fast mode is a tolerance contract,
#: not bit-identical to ``reference``/``optimized``).
_GROUPABLE_BACKENDS = frozenset({"vectorized", "batched"})


def _groupable_spec(spec: ExperimentSpec) -> bool:
    """Whether a spec may join a replica group (kernel-family check)."""
    try:
        canonical = BACKEND_REGISTRY.entry(spec.sim.backend).name
    except UnknownComponentError:
        # Leave the spec a solo task; execution will surface the error
        # with the registry's own message.
        return False
    return canonical in _GROUPABLE_BACKENDS


# ---------------------------------------------------------------------- #
# Warm-worker setup memoization (per-process LRUs)
# ---------------------------------------------------------------------- #
#: LRU capacities.  Networks hold per-router buffers (the dominant setup
#: cost); route tables are one immutable object per mesh shape.
_NETWORK_MEMO_CAPACITY = 16
_ROUTES_MEMO_CAPACITY = 8

_memo_lock = threading.Lock()
_memo_networks: "OrderedDict[str, Any]" = OrderedDict()
_memo_routes: "OrderedDict[Tuple[int, int, int], RouteComputation]" = OrderedDict()


def clear_setup_memo() -> None:
    """Drop all memoized setup objects (tests and long-lived daemons)."""
    with _memo_lock:
        _memo_networks.clear()
        _memo_routes.clear()


def _network_memo_key(
    spec: ExperimentSpec, subsets: Optional[Dict[int, Tuple[int, ...]]]
) -> str:
    """Content key of everything that flows into network construction.

    Traffic, cycles and scenario are excluded -- they do not shape the
    network -- so specs differing only in seed/rate/cycles share one
    entry.  The seed *is* included for design-backed policies (AdEle
    variants take it as a constructor argument); registered policies built
    via ``make_policy`` receive only their options, which are in the
    policy block.
    """
    payload = canonical_config(spec)
    fields: Dict[str, Any] = {
        "placement": payload.get("placement"),
        "policy": payload.get("policy"),
        "design": payload.get("design"),
        "buffer_depth": payload.get("sim", {}).get("buffer_depth"),
    }
    if subsets is not None:
        fields["subsets"] = {
            str(node): list(subset) for node, subset in sorted(subsets.items())
        }
    if spec.policy.needs_design:
        fields["seed"] = spec.sim.seed
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _memo_route_tables(mesh) -> Tuple[RouteComputation, bool]:
    """Route tables for a mesh shape, shared via the per-process LRU.

    The tables are immutable and a pure function of the mesh shape, so --
    unlike networks -- one object is handed to any number of concurrent
    users.  Returns ``(tables, was_hit)``.
    """
    key = mesh.shape
    with _memo_lock:
        routes = _memo_routes.get(key)
        if routes is not None:
            _memo_routes.move_to_end(key)
            return routes, True
    routes = RouteComputation(mesh)
    with _memo_lock:
        _memo_routes[key] = routes
        while len(_memo_routes) > _ROUTES_MEMO_CAPACITY:
            _memo_routes.popitem(last=False)
    return routes, False


def _memo_acquire_network(key: str):
    """Check a memoized network *out* of the LRU (or ``None`` on miss).

    Checkout semantics make the memo thread-safe under the service worker
    pool (threads in one process): an entry in use is not in the dict, so
    two concurrent tasks with the same key never share a network -- the
    second simply builds fresh.
    """
    with _memo_lock:
        return _memo_networks.pop(key, None)


def _memo_release_network(key: str, network) -> None:
    """Return a network to the LRU after its run completed."""
    with _memo_lock:
        _memo_networks[key] = network
        _memo_networks.move_to_end(key)
        while len(_memo_networks) > _NETWORK_MEMO_CAPACITY:
            _memo_networks.popitem(last=False)


@dataclass
class ExperimentOutcome:
    """Result of one batched experiment.

    Attributes:
        spec: The effective typed spec (seed already derived).
        key: Canonical config hash (the cache key).
        summary: ``SimulationResult.summary()`` row of the run.
        from_cache: ``True`` when the row came from the result cache and no
            simulation was performed for this configuration.
    """

    spec: ExperimentSpec
    key: str
    summary: Dict[str, float]
    from_cache: bool

    @property
    def config(self) -> ExperimentConfig:
        """Deprecated flat view of :attr:`spec` (legacy callers)."""
        return config_from_spec(self.spec)


def _policy_from_subsets(
    spec: ExperimentSpec, placement, subsets: Dict[int, Tuple[int, ...]]
):
    """Construct the AdEle online policy from pre-resolved offline subsets.

    Mirrors :func:`repro.analysis.runner.build_policy` exactly (same kwargs,
    same seeding) so batched runs match unbatched ones bit for bit.
    """
    seed = spec.sim.seed
    if spec.policy.name.lower() == "adele":
        threshold = spec.policy.option(
            "low_traffic_threshold", DEFAULT_ADELE_LOW_TRAFFIC_THRESHOLD
        )
        kwargs: Dict[str, Any] = {"subsets": subsets, "seed": seed}
        if threshold is not None:
            kwargs["low_traffic_threshold"] = threshold
        return AdElePolicy(placement, **kwargs)
    return AdEleRoundRobinPolicy(placement, subsets=subsets, seed=seed)


def _build_task_network(task: _Task) -> Tuple[Any, bool]:
    """Construct a task's network fresh (sharing memoized route tables).

    Returns ``(network, route_tables_were_memo_hit)``.
    """
    spec = task.spec
    placement = resolve_placement(spec)
    routes, routes_hit = _memo_route_tables(placement.mesh)
    if task.subsets is not None:
        policy = _policy_from_subsets(spec, placement, task.subsets)
        network = build_network(
            spec, placement=placement, policy=policy, route_computation=routes
        )
    else:
        network = build_network(
            spec, placement=placement, route_computation=routes
        )
    return network, routes_hit


def _execute_task(task: _Task) -> Tuple[str, Dict[str, float]]:
    """Run one experiment end to end (module-level so it pickles)."""
    key, summary, _meta = _execute_task_timed(task)
    return key, summary


def _execute_task_timed(
    task: _Task,
) -> Tuple[str, Dict[str, float], Dict[str, Any]]:
    """Run one experiment, reporting setup/kernel timings and memo traffic.

    The returned ``meta`` dictionary carries ``setup_s`` (placement /
    policy / network construction, memo traffic included), ``kernel_s``
    (the simulation itself) and the task's ``memo_hits`` /
    ``memo_misses``.  A probed run additionally carries its
    :class:`~repro.obs.probes.ProbeSeries` under ``"probe"`` -- meta rides
    *next to* the summary, so probing never touches cached bytes.
    """
    for module in task.plugins:
        importlib.import_module(module)
    spec = task.spec
    hits = 0
    misses = 0
    setup_start = time.perf_counter()
    with span("setup.network", key=task.key[:12]):
        memo_key = _network_memo_key(spec, task.subsets)
        network = _memo_acquire_network(memo_key)
        if network is not None:
            hits += 1
        else:
            misses += 1
            network, routes_hit = _build_task_network(task)
            if routes_hit:
                hits += 1
            else:
                misses += 1
    setup_s = time.perf_counter() - setup_start
    kernel_start = time.perf_counter()
    try:
        with span("kernel.run", backend=spec.sim.backend, key=task.key[:12]):
            result = run_experiment(
                spec,
                energy_model=task.energy_model,
                network=network,
                probe=task.probe,
            )
    finally:
        # Return the network even after a failed run: reset() restores it.
        _memo_release_network(memo_key, network)
    kernel_s = time.perf_counter() - kernel_start
    meta: Dict[str, Any] = {
        "setup_s": setup_s,
        "kernel_s": kernel_s,
        "memo_hits": hits,
        "memo_misses": misses,
    }
    if result.probe is not None:
        meta["probe"] = result.probe
    return task.key, result.summary(), meta


def _execute_group(
    group: _TaskGroup,
) -> List[Tuple[str, Dict[str, float], Dict[str, Any]]]:
    """Run one replica group through a single batched kernel pass.

    Every member gets its own freshly built network / packet source /
    placement (scenario fault events mutate placements, and replicas run
    interleaved, so nothing may be shared except the immutable route
    tables) -- construction order is group order, matching the solo path's
    per-task construction exactly.  Timings are attributed per task as an
    even split of the group's setup and kernel time.
    """
    from repro.sim.backends.batched import ReplicaRun, run_replica_group

    hits = 0
    misses = 0
    setup_start = time.perf_counter()
    with span("setup.network", replicas=len(group.tasks)):
        replicas = []
        for task in group.tasks:
            for module in task.plugins:
                importlib.import_module(module)
            spec = task.spec
            network, routes_hit = _build_task_network(task)
            if routes_hit:
                hits += 1
            else:
                misses += 1
            source = build_packet_source(spec, network.placement)
            replicas.append(
                ReplicaRun(
                    network=network,
                    packet_source=source,
                    scenario=spec.scenario,
                    scenario_seed=spec.sim.seed,
                    energy_model=(
                        task.energy_model
                        if task.energy_model is not None
                        else _DEFAULT_ENERGY_MODEL
                    ),
                )
            )
    setup_s = time.perf_counter() - setup_start
    sim = group.tasks[0].spec.sim
    kernel_start = time.perf_counter()
    with span("group.run", replicas=len(group.tasks)):
        results = run_replica_group(
            replicas,
            warmup_cycles=sim.warmup_cycles,
            measurement_cycles=sim.measurement_cycles,
            drain_cycles=sim.drain_cycles,
            bit_exact=sim.bit_exact,
            probe=group.tasks[0].probe,
        )
    kernel_s = time.perf_counter() - kernel_start
    share = len(group.tasks)
    rows = []
    for task, result in zip(group.tasks, results):
        meta: Dict[str, Any] = {
            "setup_s": setup_s / share,
            "kernel_s": kernel_s / share,
            "memo_hits": hits if task is group.tasks[0] else 0,
            "memo_misses": misses if task is group.tasks[0] else 0,
            "replicas": share,
        }
        if result.probe is not None:
            meta["probe"] = result.probe
        rows.append((task.key, result.summary(), meta))
    return rows


def _execute_unit(
    unit: Union[_Task, _TaskGroup],
) -> List[Tuple[str, Dict[str, float], Dict[str, Any]]]:
    """Run one work unit -- a solo task or a replica group (picklable)."""
    if isinstance(unit, _TaskGroup):
        return _execute_group(unit)
    return [_execute_task_timed(unit)]


class ExperimentBatch:
    """Run a list of experiments, in parallel and cached.

    Args:
        configs: Experiments to run -- typed :class:`ExperimentSpec` values
            or legacy :class:`ExperimentConfig` shims, freely mixed (any
            iterable; order is preserved in the returned outcomes).
        workers: Process count.  ``1`` (the default) runs every task inline
            with no subprocess involved -- the serial fallback.
        result_cache: Summary-row cache consulted before and populated after
            execution; defaults to a fresh memory-only cache (which still
            deduplicates identical configs within the batch).
        design_cache: AdEle offline-design cache used while preparing tasks;
            defaults to the process-wide cache of :mod:`repro.analysis.runner`.
        base_seed: When given, each spec's seed is replaced by
            :func:`~repro.exec.cache.derive_seed` (canonical-hash seeding);
            when ``None``, specs keep their own seeds.
        energy_model: Optional energy model forwarded to every simulation.
        plugins: Module names imported inside each worker process before
            resolving specs, so registry components registered at import
            time stay available under the ``spawn``/``forkserver`` start
            methods.  (Components registered by modules already imported in
            the parent are inherited automatically under ``fork``.)
        shard: Optional :class:`~repro.exec.shard.ShardSpec` restricting the
            batch to the specs whose canonical keys it owns; everything else
            is skipped entirely (no cache probe, no outcome).  N batches
            over the same grid with shards ``1/N .. N/N`` partition it
            exactly, and their merged caches are bit-identical to one
            unsharded run -- see :mod:`repro.exec.shard`.
        chunk_size: When given, execute pending tasks in chunks of this many
            and flush each chunk's rows to the result cache (plus a resume
            manifest) as it completes, so a killed mega-sweep loses at most
            one chunk instead of everything.  ``None`` keeps the historical
            single-flush behaviour.  Chunking never changes results -- only
            when they reach the cache.
        manifest_dir: Where to write the ``manifest-<grid>.json`` checkpoint
            during chunked runs; defaults to the result cache's directory
            (no manifest is written for memory-only caches).  The *cache*
            is the resume source of truth -- rerunning the same grid skips
            every flushed row; the manifest is the inspectable progress
            record.
        replica_batch: When >= 2, coalesce pending tasks that share a
            structural key (canonical spec minus seed) and run on the
            flat-array kernel family into replica groups of at most this
            many, each executed as one batched kernel pass (see the module
            docstring).  Results and cache bytes are unchanged; only
            wall-clock is.  ``None``/1 keeps solo execution.
        probe: Optional :class:`~repro.obs.probes.ProbeSpec` attached to
            every *executed* task (cache hits skip simulation, so they
            yield no series).  A run argument, never a spec field: it does
            not enter cache keys, derived seeds or summary rows, and the
            sampled series land in :attr:`last_probes` keyed by config
            key.  See :mod:`repro.obs` for the never-perturbs invariant.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry` the
            batch records into (task/chunk counters, setup/kernel latency
            histograms, memo traffic).  Defaults to a private registry;
            pass a shared one to aggregate across batches (the experiment
            service does, feeding ``GET /metrics``).  The per-run
            ``last_*`` attributes remain the per-``run()`` view; the
            registry is the cumulative one.
    """

    def __init__(
        self,
        configs: Iterable[Union[ExperimentSpec, ExperimentConfig]],
        workers: int = 1,
        result_cache: Optional[ResultCache] = None,
        design_cache: Optional[DesignCache] = None,
        base_seed: Optional[int] = None,
        energy_model: Optional[EnergyModel] = None,
        plugins: Sequence[str] = (),
        shard: Optional[ShardSpec] = None,
        chunk_size: Optional[int] = None,
        manifest_dir: Optional[str] = None,
        replica_batch: Optional[int] = None,
        probe: Optional[ProbeSpec] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.specs: List[ExperimentSpec] = [as_spec(config) for config in configs]
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if replica_batch is not None and replica_batch < 1:
            raise ValueError("replica_batch must be >= 1")
        self.workers = workers
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self.design_cache = design_cache
        self.base_seed = base_seed
        self.energy_model = energy_model
        self.plugins: Tuple[str, ...] = tuple(plugins)
        self.shard = shard
        self.chunk_size = chunk_size
        self.manifest_dir = manifest_dir
        self.replica_batch = replica_batch
        self.probe = probe
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Probe series sampled by the last ``run()``, keyed by config key
        #: (empty unless a ``probe`` was attached; cache hits never appear).
        self.last_probes: Dict[str, Any] = {}
        #: Number of simulations actually executed by the last ``run()``.
        self.last_executed = 0
        #: Number of outcomes served from cache by the last ``run()``.
        self.last_cached = 0
        #: Number of specs skipped by the last ``run()`` (owned by another
        #: shard).
        self.last_skipped = 0
        #: Number of chunk flushes performed by the last ``run()``.
        self.last_chunks = 0
        #: Largest number of freshly executed summary rows resident at once
        #: during the last ``run()``'s execution phase -- bounded by the
        #: chunk size, which is what lets :meth:`run_streaming` aggregate a
        #: mega-grid in O(chunk) memory.
        self.last_peak_rows = 0
        #: Number of replica groups coalesced by the last ``run()``.
        self.last_replica_groups = 0
        #: Seconds the last ``run()`` spent in per-task setup (placement /
        #: policy / network construction, memo traffic included), summed
        #: across tasks.
        self.last_setup_s = 0.0
        #: Seconds the last ``run()`` spent inside simulation kernels,
        #: summed across tasks.
        self.last_kernel_s = 0.0
        #: Warm-worker memo hits / misses observed by the last ``run()``.
        self.last_memo_hits = 0
        self.last_memo_misses = 0

    # ------------------------------------------------------------------ #
    @property
    def configs(self) -> List[ExperimentConfig]:
        """Deprecated flat view of :attr:`specs` (legacy callers)."""
        return [config_from_spec(spec) for spec in self.specs]

    def _key_extra(self) -> Dict[str, Any]:
        """Non-spec inputs the cache key must capture (see :func:`key_extra_for`)."""
        return key_extra_for(self.energy_model)

    def effective_specs(self) -> List[ExperimentSpec]:
        """Specs with batch-level seed derivation applied."""
        if self.base_seed is None:
            return list(self.specs)
        return [
            spec.with_(seed=derive_seed(spec, self.base_seed)) for spec in self.specs
        ]

    def effective_configs(self) -> List[ExperimentConfig]:
        """Deprecated flat view of :meth:`effective_specs` (legacy callers)."""
        return [config_from_spec(spec) for spec in self.effective_specs()]

    def _make_task(self, spec: ExperimentSpec, key: str) -> _Task:
        subsets = None
        if spec.policy.needs_design:
            placement = resolve_placement(spec)
            if spec.design is not None:
                design = design_for_placement(
                    placement, spec.design, cache=self.design_cache
                )
            else:
                design = adele_design_for(
                    placement,
                    max_subset_size=spec.policy.option(
                        "max_subset_size", DEFAULT_ADELE_MAX_SUBSET_SIZE
                    ),
                    cache=self.design_cache,
                )
            subsets = design.selected_subsets()
        return _Task(
            spec=spec,
            key=key,
            subsets=subsets,
            energy_model=self.energy_model,
            plugins=self.plugins,
            probe=self.probe,
        )

    # ------------------------------------------------------------------ #
    def _scan(self):
        """Classify every spec: cache hit, pending work, or other-shard skip.

        Returns ``(specs, keys, owned_keys, hits, pending)`` where ``hits``
        maps input indices to cached summaries, ``pending`` maps keys to
        tasks (insertion order = execution order, unchanged by chunking),
        and ``owned_keys`` is the ordered unique key set this batch is
        responsible for (the manifest's denominator).  Skipped indices
        appear nowhere; ``last_skipped`` counts them.
        """
        specs = self.effective_specs()
        extra = self._key_extra()
        keys = [config_key(spec, extra=extra) for spec in specs]
        self.last_skipped = 0
        self.last_peak_rows = 0
        owned_keys: List[str] = []
        seen: set = set()
        hits: Dict[int, Dict[str, float]] = {}
        pending: Dict[str, _Task] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if self.shard is not None and not self.shard.owns(key):
                self.last_skipped += 1
                continue
            if key not in seen:
                seen.add(key)
                owned_keys.append(key)
            if key in pending:
                continue  # deduplicated: same canonical spec already queued
            cached = self.result_cache.get(key)
            if cached is not None:
                hits[index] = cached
            else:
                pending[key] = self._make_task(spec, key)
        return specs, keys, owned_keys, hits, pending

    def _manifest_path(self, owned_keys: Sequence[str]) -> Optional[str]:
        """Checkpoint file path for this grid slice (``None`` = don't write).

        The file name hashes the *owned key set*, so reruns and resumes of
        the same grid/shard overwrite one manifest while different slices
        never collide.  Content is a deterministic function of progress --
        a completed run's manifest has identical bytes whether it ran
        straight through or resumed, which is why byte-identity checks only
        need to exclude ``manifest-*`` for *partial* shards.
        """
        directory = self.manifest_dir
        if directory is None:
            directory = self.result_cache.cache_dir if isinstance(
                self.result_cache, ResultCache
            ) else None
        if directory is None:
            return None
        grid_id = hashlib.sha256(
            "\n".join(sorted(owned_keys)).encode("utf-8")
        ).hexdigest()[:16]
        return os.path.join(directory, f"manifest-{grid_id}.json")

    def _plan_units(
        self, chunk_tasks: Sequence[_Task]
    ) -> List[Union[_Task, _TaskGroup]]:
        """Coalesce a chunk's tasks into work units (replica grouping).

        Tasks sharing a structural key -- and running on the flat-array
        kernel family -- merge into :class:`_TaskGroup` units of at most
        ``replica_batch`` members; everything else stays a solo task.  A
        group is emitted at its first member's position, so unit order
        follows task order and grouping never reorders cache flushes
        across chunks.  With ``replica_batch`` unset (or 1) the chunk
        passes through unchanged.
        """
        limit = self.replica_batch
        if limit is None or limit < 2:
            return list(chunk_tasks)
        extra = self._key_extra()
        buckets: Dict[str, List[_Task]] = {}
        bucket_of: Dict[int, Optional[str]] = {}
        for task in chunk_tasks:
            skey: Optional[str] = None
            if _groupable_spec(task.spec):
                skey = structural_key(task.spec, extra=extra)
                buckets.setdefault(skey, []).append(task)
            bucket_of[id(task)] = skey
        units: List[Union[_Task, _TaskGroup]] = []
        emitted: set = set()
        for task in chunk_tasks:
            skey = bucket_of[id(task)]
            if skey is None or len(buckets[skey]) < 2:
                units.append(task)
                continue
            if skey in emitted:
                continue
            emitted.add(skey)
            members = buckets[skey]
            for start in range(0, len(members), limit):
                sub = members[start:start + limit]
                if len(sub) == 1:
                    units.append(sub[0])
                else:
                    units.append(_TaskGroup(tasks=tuple(sub)))
                    self.last_replica_groups += 1
        return units

    def _execute_pending(
        self,
        pending: Dict[str, _Task],
        owned_keys: Sequence[str],
        on_result: Callable[[str, Dict[str, float]], None],
    ) -> None:
        """Run pending tasks (chunked when configured), flushing as we go.

        Every finished row reaches the result cache *before* ``on_result``
        sees it, and the manifest is rewritten after each chunk -- so a kill
        at any point loses at most the in-flight chunk, and a rerun of the
        same grid resumes from the flushed rows.  The abort-injection env
        var (:data:`ABORT_AFTER_CHUNKS_ENV`) raises :class:`ChunkAbort`
        after N chunk flushes while work remains, simulating that kill at a
        deterministic boundary.

        With ``replica_batch`` set, each chunk's tasks are first planned
        into work units (:meth:`_plan_units`); rows still flush to the
        cache in the chunk's original task order, so grouping changes
        nothing about what a resumed or streamed run observes.
        """
        self.last_chunks = 0
        self.last_replica_groups = 0
        self.last_setup_s = 0.0
        self.last_kernel_s = 0.0
        self.last_memo_hits = 0
        self.last_memo_misses = 0
        self.last_probes = {}
        if not pending:
            return
        setup_hist = self.metrics.histogram(
            "repro_task_setup_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="Per-task setup time (placement/policy/network build).",
        )
        kernel_hist = self.metrics.histogram(
            "repro_task_kernel_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="Per-task simulation kernel time.",
        )
        tasks = list(pending.values())
        chunk = self.chunk_size if self.chunk_size is not None else len(tasks)
        manifest_path = (
            self._manifest_path(owned_keys) if self.chunk_size is not None else None
        )
        abort_raw = os.environ.get(ABORT_AFTER_CHUNKS_ENV)
        abort_after = int(abort_raw) if abort_raw else None
        done_offset = len(owned_keys) - len(tasks)
        pool: Optional[ProcessPoolExecutor] = None
        try:
            if self.workers > 1 and len(tasks) > 1:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks))
                )
            completed = 0
            for start in range(0, len(tasks), chunk):
                chunk_tasks = tasks[start:start + chunk]
                units = self._plan_units(chunk_tasks)
                if pool is not None and len(units) > 1:
                    unit_rows = list(pool.map(_execute_unit, units))
                else:
                    unit_rows = [_execute_unit(unit) for unit in units]
                rows_by_key: Dict[str, Dict[str, float]] = {}
                for rows in unit_rows:
                    for key, summary, meta in rows:
                        rows_by_key[key] = summary
                        self.last_setup_s += meta["setup_s"]
                        self.last_kernel_s += meta["kernel_s"]
                        self.last_memo_hits += meta["memo_hits"]
                        self.last_memo_misses += meta["memo_misses"]
                        setup_hist.observe(meta["setup_s"])
                        kernel_hist.observe(meta["kernel_s"])
                        if "probe" in meta:
                            self.last_probes[key] = meta["probe"]
                # Emit in the chunk's original task order regardless of
                # grouping, so cache flush order -- and therefore stream
                # emission order -- is identical with and without it.
                finished = [
                    (task.key, rows_by_key[task.key]) for task in chunk_tasks
                ]
                self.last_peak_rows = max(self.last_peak_rows, len(finished))
                with span("chunk.flush", rows=len(finished)):
                    for key, summary in finished:
                        self.result_cache.put(
                            key, canonical_config(pending[key].spec), summary
                        )
                        on_result(key, summary)
                completed += len(finished)
                self.last_chunks += 1
                if manifest_path is not None:
                    _write_json_atomic(
                        manifest_path,
                        {
                            "chunk_size": chunk,
                            "done": done_offset + completed,
                            "shard": None if self.shard is None else str(self.shard),
                            "total": len(owned_keys),
                        },
                    )
                if (
                    abort_after is not None
                    and self.last_chunks >= abort_after
                    and completed < len(tasks)
                ):
                    raise ChunkAbort(
                        f"aborting after {self.last_chunks} chunk(s) "
                        f"({completed}/{len(tasks)} pending tasks flushed; "
                        f"{ABORT_AFTER_CHUNKS_ENV}={abort_raw})"
                    )
        finally:
            if pool is not None:
                pool.shutdown()

    def _record_run_metrics(self) -> None:
        """Fold the finished run's ``last_*`` view into :attr:`metrics`.

        The registry is the cumulative, mergeable store the observability
        layer scrapes (counters only ever go up); the ``last_*`` attributes
        remain the per-run snapshot the CLI ``--json`` engine block reads.
        One code path feeds both, so the numbers can never disagree.
        """
        metrics = self.metrics
        metrics.counter(
            "repro_tasks_executed_total",
            help="Simulations actually executed by batches.",
        ).inc(self.last_executed)
        metrics.counter(
            "repro_tasks_cached_total",
            help="Batch outcomes served from the result cache.",
        ).inc(self.last_cached)
        metrics.counter(
            "repro_tasks_skipped_total",
            help="Specs skipped because another shard owns them.",
        ).inc(self.last_skipped)
        metrics.counter(
            "repro_chunks_flushed_total",
            help="Chunk flushes performed by batches.",
        ).inc(self.last_chunks)
        metrics.counter(
            "repro_replica_groups_total",
            help="Replica groups coalesced by batches.",
        ).inc(self.last_replica_groups)
        metrics.counter(
            "repro_memo_hits_total",
            help="Warm-worker setup memo hits.",
        ).inc(self.last_memo_hits)
        metrics.counter(
            "repro_memo_misses_total",
            help="Warm-worker setup memo misses.",
        ).inc(self.last_memo_misses)

    def run(self) -> List[ExperimentOutcome]:
        """Execute the batch and return outcomes in input order.

        With a shard configured, outcomes cover only the owned specs (the
        skipped ones are counted in :attr:`last_skipped`); order among the
        survivors is still input order.
        """
        specs, keys, owned_keys, hits, pending = self._scan()
        outcomes: List[Optional[ExperimentOutcome]] = [None] * len(specs)
        for index, summary in hits.items():
            outcomes[index] = ExperimentOutcome(
                spec=specs[index], key=keys[index], summary=summary, from_cache=True
            )

        executed: Dict[str, Dict[str, float]] = {}

        def _collect(key: str, summary: Dict[str, float]) -> None:
            executed[key] = summary

        self._execute_pending(pending, owned_keys, _collect)

        self.last_executed = len(executed)
        self.last_cached = 0
        freshly_reported: set = set()
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if self.shard is not None and not self.shard.owns(key):
                continue
            if outcomes[index] is not None:
                self.last_cached += 1
                continue
            if key in executed and key not in freshly_reported:
                # The one occurrence a simulation actually ran for.
                freshly_reported.add(key)
                outcomes[index] = ExperimentOutcome(
                    spec=spec,
                    key=key,
                    summary=dict(executed[key]),
                    from_cache=False,
                )
            else:
                # Duplicate of an earlier spec: the first occurrence was
                # served from cache or executed; either way the row is in
                # the cache now and no simulation ran for *this* outcome.
                summary = self.result_cache.get(key)
                assert summary is not None
                outcomes[index] = ExperimentOutcome(
                    spec=spec, key=key, summary=summary, from_cache=True
                )
                self.last_cached += 1
        self._record_run_metrics()
        return [outcome for outcome in outcomes if outcome is not None]

    def run_streaming(
        self, consumer: Callable[[ExperimentOutcome], None]
    ) -> int:
        """Execute the batch, handing each outcome to ``consumer`` as it
        lands instead of materializing the result list.

        Cache hits are emitted during the initial scan; fresh rows are
        emitted chunk by chunk as they flush (duplicates of a fresh key
        follow it immediately, marked ``from_cache=True`` like :meth:`run`
        marks them).  Emission order is completion order, not input order --
        a consumer that needs input order should use :meth:`run` instead.
        Peak resident fresh rows are bounded by the chunk size
        (:attr:`last_peak_rows`), which is what makes
        :class:`~repro.exec.aggregate.StreamingAggregator` over a mega-grid
        O(chunk) instead of O(grid).

        Returns:
            Number of outcomes emitted.
        """
        specs, keys, owned_keys, hits, pending = self._scan()
        followers: Dict[str, List[ExperimentSpec]] = {key: [] for key in pending}
        emitted = 0
        cached_served = 0
        for index, (spec, key) in enumerate(zip(specs, keys)):
            if self.shard is not None and not self.shard.owns(key):
                continue
            if index in hits:
                cached_served += 1
                emitted += 1
                consumer(
                    ExperimentOutcome(
                        spec=spec, key=key, summary=hits[index], from_cache=True
                    )
                )
            elif key in followers:
                followers[key].append(spec)
        executed_count = 0
        # The first follower of each pending key is the spec the simulation
        # actually runs for; the rest are deduplicated repeats.
        def _emit(key: str, summary: Dict[str, float]) -> None:
            nonlocal emitted, executed_count, cached_served
            for position, spec in enumerate(followers[key]):
                fresh = position == 0
                if fresh:
                    executed_count += 1
                else:
                    cached_served += 1
                emitted += 1
                consumer(
                    ExperimentOutcome(
                        spec=spec,
                        key=key,
                        summary=dict(summary),
                        from_cache=not fresh,
                    )
                )

        self._execute_pending(pending, owned_keys, _emit)
        self.last_executed = executed_count
        self.last_cached = cached_served
        self._record_run_metrics()
        return emitted


def run_batch(
    configs: Iterable[Union[ExperimentSpec, ExperimentConfig]],
    workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    design_cache: Optional[DesignCache] = None,
    base_seed: Optional[int] = None,
    energy_model: Optional[EnergyModel] = None,
    plugins: Sequence[str] = (),
    shard: Optional[ShardSpec] = None,
    chunk_size: Optional[int] = None,
    replica_batch: Optional[int] = None,
    probe: Optional[ProbeSpec] = None,
) -> List[ExperimentOutcome]:
    """Convenience wrapper: build an :class:`ExperimentBatch` and run it."""
    batch = ExperimentBatch(
        configs,
        workers=workers,
        result_cache=result_cache,
        design_cache=design_cache,
        base_seed=base_seed,
        energy_model=energy_model,
        plugins=plugins,
        shard=shard,
        chunk_size=chunk_size,
        replica_batch=replica_batch,
        probe=probe,
    )
    return batch.run()


def summaries_by_policy(
    outcomes: Sequence[ExperimentOutcome],
) -> Dict[str, Dict[str, float]]:
    """Index outcomes by policy name (for comparison tables).

    Raises:
        ValueError: If two outcomes share a policy name (ambiguous table).
    """
    table: Dict[str, Dict[str, float]] = {}
    for outcome in outcomes:
        policy = outcome.spec.policy.name
        if policy in table:
            raise ValueError(f"duplicate policy {policy!r} in outcome list")
        table[policy] = outcome.summary
    return table
